// Online multi-object tracking over fused detections: a SORT-style greedy
// IoU tracker with constant-velocity prediction (cf. Bewley et al., "Simple
// online and realtime tracking", the paper's reference [7]). Video query
// systems use tracks as the temporal primitive ("a car that persists for k
// frames"); the query engine's TRACKS() aggregate is built on this module.

#ifndef VQE_TRACK_TRACKER_H_
#define VQE_TRACK_TRACKER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "detection/detection.h"
#include "snapshot/wire.h"

namespace vqe {

/// Tracker tuning.
struct TrackerOptions {
  /// Minimum IoU between a predicted track box and a detection to match.
  double iou_threshold = 0.3;
  /// Frames a track survives without a matching detection.
  int max_missed = 3;
  /// Consecutive-hit threshold before a track counts as confirmed.
  int min_hits = 3;
  /// Detections below this confidence neither start nor extend tracks.
  double min_confidence = 0.30;

  Status Validate() const;
};

/// One tracked object.
struct Track {
  int64_t track_id = 0;
  ClassId label = 0;
  /// Last associated (or predicted) box.
  BBox box;
  /// Confidence of the last associated detection.
  double confidence = 0.0;
  /// Total number of associated detections.
  int hits = 0;
  /// Consecutive frames without an associated detection.
  int missed = 0;
  /// Frame index of the first/last association.
  int64_t first_frame = 0;
  int64_t last_frame = 0;
  /// Constant-velocity estimate (pixels/frame).
  double vx = 0.0;
  double vy = 0.0;

  /// Age in frames since birth, inclusive.
  int64_t Age() const { return last_frame - first_frame + 1; }
  /// True once the track has accumulated min_hits associations.
  bool IsConfirmed(const TrackerOptions& options) const {
    return hits >= options.min_hits;
  }
  /// True when the track was associated on the most recent update.
  bool UpdatedThisFrame() const { return missed == 0; }
};

/// Association summary of the most recent Update() call. The temporal
/// skip gate reads these as its detection-churn signal: a frame whose
/// associations were mostly births/retirements is a bad frame to start
/// coasting from.
struct TrackerUpdateStats {
  /// Tracks created from unmatched detections this update.
  int births = 0;
  /// Tracks that claimed a detection this update.
  int matched = 0;
  /// Tracks retired (missed > max_missed) this update.
  int retired = 0;
  /// Live tracks left unmatched (now coasting on prediction).
  int unmatched = 0;
};

/// Greedy-IoU online tracker. Feed frames in order via Update().
class IouTracker {
 public:
  explicit IouTracker(TrackerOptions options = {});

  /// Advances one frame: predicts track positions, associates detections
  /// (greedy by confidence, same-class, best IoU), births new tracks and
  /// retires stale ones. Returns the live tracks after the update.
  const std::vector<Track>& Update(const DetectionList& detections,
                                   int64_t frame_index);

  /// Advances every live track by exactly one frame of constant-velocity
  /// motion without consuming detections: box += (vx, vy), nothing else
  /// changes. Unlike a missed frame in Update(), coasting does not age
  /// tracks — a skipped frame is answered *from* the prediction, it is
  /// not evidence the object vanished. Implemented as a single Euler
  /// step on purpose: k calls reproduce the k intermediate single-frame
  /// predictions bit-for-bit (box + v added k times, never box + k*v),
  /// which the skip-path regression test pins.
  void CoastOne();

  /// Live tracks (confirmed or tentative).
  const std::vector<Track>& tracks() const { return tracks_; }

  /// Confirmed tracks associated on the latest frame.
  std::vector<Track> ActiveConfirmed() const;

  /// Tracks ever retired (for offline analysis).
  const std::vector<Track>& finished_tracks() const {
    return finished_;
  }

  /// Association summary of the most recent Update().
  const TrackerUpdateStats& last_update_stats() const { return last_stats_; }

  const TrackerOptions& options() const { return options_; }

  /// Clears all state.
  void Reset();

  /// Serializes live + finished tracks and the id counter so a resumed
  /// query continues track identities and lifetimes exactly.
  Status SaveState(ByteWriter& writer) const;

  /// Restores a SaveState payload; DataLoss on malformed bytes.
  Status RestoreState(ByteReader& reader);

 private:
  TrackerOptions options_;
  std::vector<Track> tracks_;
  std::vector<Track> finished_;
  int64_t next_id_ = 1;
  // Not serialized: purely diagnostic, refreshed by the next Update().
  TrackerUpdateStats last_stats_;
};

}  // namespace vqe

#endif  // VQE_TRACK_TRACKER_H_
