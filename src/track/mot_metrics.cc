#include "track/mot_metrics.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace vqe {

MotMetrics EvaluateMot(const std::vector<TrackFrame>& tracks_per_frame,
                       const std::vector<GroundTruthList>& gt_per_frame,
                       double iou_gate) {
  assert(tracks_per_frame.size() == gt_per_frame.size());
  MotMetrics m;
  // Last track id matched to each GT object (for ID-switch counting).
  std::map<int64_t, int64_t> last_track_of_gt;

  for (size_t f = 0; f < gt_per_frame.size(); ++f) {
    const GroundTruthList& gts = gt_per_frame[f];
    const TrackFrame& tracks = tracks_per_frame[f];

    // Evaluable GT only (difficult objects are skipped entirely).
    std::vector<size_t> gt_idx;
    for (size_t g = 0; g < gts.size(); ++g) {
      if (!gts[g].difficult) gt_idx.push_back(g);
    }
    m.num_gt += gt_idx.size();

    // Greedy matching by descending IoU over all candidate pairs.
    struct Pair {
      double iou;
      size_t gt;
      size_t track;
    };
    std::vector<Pair> pairs;
    for (size_t gi = 0; gi < gt_idx.size(); ++gi) {
      const GroundTruthBox& gt = gts[gt_idx[gi]];
      for (size_t ti = 0; ti < tracks.size(); ++ti) {
        if (tracks[ti].label != gt.label) continue;
        const double iou = IoU(tracks[ti].box, gt.box);
        if (iou >= iou_gate) pairs.push_back({iou, gi, ti});
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.iou > b.iou; });

    std::vector<bool> gt_used(gt_idx.size(), false);
    std::vector<bool> track_used(tracks.size(), false);
    size_t frame_matches = 0;
    for (const Pair& p : pairs) {
      if (gt_used[p.gt] || track_used[p.track]) continue;
      gt_used[p.gt] = true;
      track_used[p.track] = true;
      ++frame_matches;
      m.iou_sum += p.iou;

      const int64_t object_id = gts[gt_idx[p.gt]].object_id;
      const int64_t track_id = tracks[p.track].track_id;
      auto it = last_track_of_gt.find(object_id);
      if (it != last_track_of_gt.end() && it->second != track_id) {
        ++m.id_switches;
      }
      last_track_of_gt[object_id] = track_id;
    }
    m.matches += frame_matches;
    m.misses += gt_idx.size() - frame_matches;
    m.false_positives += tracks.size() - frame_matches;
  }
  return m;
}

}  // namespace vqe
