#include "detection/frame_soa.h"

#include <algorithm>
#include <cstddef>

namespace vqe {

FrameSoA::FrameSoA(const std::vector<DetectionList>& per_model, int num_ids)
    : source_(&per_model) {
  if (num_ids <= 0) return;
  num_ids_ = num_ids;
  const size_t n = static_cast<size_t>(num_ids);
  x1_.assign(n, 0.0);
  y1_.assign(n, 0.0);
  x2_.assign(n, 0.0);
  y2_.assign(n, 0.0);
  score_.assign(n, 0.0);
  area_.assign(n, 0.0);
  label_.assign(n, 0);
  model_.assign(n, -1);
  filled_.assign(n, 0);

  // Scatter each detection into its id slot, later writers winning — the
  // same id→detection resolution the tile's historical by_id map applied.
  // `src_list`/`src_ptr` record the winning writer's source-list index and
  // address for the packed provenance arrays below.
  std::vector<int32_t> src_list(n, -1);
  std::vector<const Detection*> src_ptr(n, nullptr);
  for (size_t li = 0; li < per_model.size(); ++li) {
    for (const auto& d : per_model[li]) {
      if (d.frame_det_id < 0 || d.frame_det_id >= num_ids_) continue;
      const size_t i = static_cast<size_t>(d.frame_det_id);
      x1_[i] = d.box.x1;
      y1_[i] = d.box.y1;
      x2_[i] = d.box.x2;
      y2_[i] = d.box.y2;
      score_[i] = d.confidence;
      area_[i] = d.box.Area();
      label_[i] = d.label;
      model_[i] = d.model_index;
      filled_[i] = 1;
      src_list[i] = static_cast<int32_t>(li);
      src_ptr[i] = &d;
    }
  }

  // Pack the filled ids into ascending-(label, id) order and record each
  // class's run. Ids are unique keys, so plain sort is deterministic.
  packed_id_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (filled_[i] != 0) packed_id_.push_back(static_cast<int32_t>(i));
  }
  std::sort(packed_id_.begin(), packed_id_.end(),
            [this](int32_t a, int32_t b) {
              const int32_t la = label_[static_cast<size_t>(a)];
              const int32_t lb = label_[static_cast<size_t>(b)];
              if (la != lb) return la < lb;
              return a < b;
            });

  const size_t p = packed_id_.size();
  packed_x1_.resize(p);
  packed_y1_.resize(p);
  packed_x2_.resize(p);
  packed_y2_.resize(p);
  packed_area_.resize(p);
  packed_list_.resize(p);
  packed_src_.resize(p);
  for (size_t s = 0; s < p; ++s) {
    const size_t i = static_cast<size_t>(packed_id_[s]);
    packed_x1_[s] = x1_[i];
    packed_y1_[s] = y1_[i];
    packed_x2_[s] = x2_[i];
    packed_y2_[s] = y2_[i];
    packed_area_[s] = area_[i];
    packed_list_[s] = src_list[i];
    packed_src_[s] = src_ptr[i];
    const ClassId cls = label_[i];
    if (blocks_.empty() || blocks_.back().label != cls) {
      blocks_.push_back(LabelBlock{cls, s, s + 1});
    } else {
      blocks_.back().end = s + 1;
    }
  }

  // Per-block stable descending-score order, computed once per frame.
  // AssignFrameDetIds hands out ids monotonically in (list, position)
  // order, so packed (id-ascending) order within a block IS the
  // model-major flatten order fusion pools in — a stable sort over it
  // produces exactly the tie-breaks the per-mask SortGroupDesc produced,
  // and stays exact under any subset filter (stable-sort-then-filter ==
  // filter-then-stable-sort).
  sorted_slot_.resize(p);
  for (size_t s = 0; s < p; ++s) sorted_slot_[s] = static_cast<int32_t>(s);
  for (const LabelBlock& block : blocks_) {
    std::stable_sort(sorted_slot_.begin() + static_cast<std::ptrdiff_t>(block.begin),
                     sorted_slot_.begin() + static_cast<std::ptrdiff_t>(block.end),
                     [this](int32_t a, int32_t b) {
                       return score_[static_cast<size_t>(packed_id_[
                                  static_cast<size_t>(a)])] >
                              score_[static_cast<size_t>(packed_id_[
                                  static_cast<size_t>(b)])];
                     });
  }
}

}  // namespace vqe
