#include "detection/detection.h"

#include <algorithm>
#include <set>

namespace vqe {

void SortByConfidenceDesc(DetectionList* dets) {
  std::stable_sort(dets->begin(), dets->end(),
                   [](const Detection& a, const Detection& b) {
                     return a.confidence > b.confidence;
                   });
}

DetectionList FilterByClass(const DetectionList& dets, ClassId cls) {
  DetectionList out;
  out.reserve(dets.size());
  for (const auto& d : dets) {
    if (d.label == cls) out.push_back(d);
  }
  return out;
}

DetectionList FilterByConfidence(const DetectionList& dets, double threshold) {
  DetectionList out;
  out.reserve(dets.size());
  for (const auto& d : dets) {
    if (d.confidence >= threshold) out.push_back(d);
  }
  return out;
}

std::vector<ClassId> DistinctLabels(const DetectionList& dets) {
  std::set<ClassId> labels;
  for (const auto& d : dets) labels.insert(d.label);
  return {labels.begin(), labels.end()};
}

std::vector<ClassId> DistinctLabels(const GroundTruthList& gts) {
  std::set<ClassId> labels;
  for (const auto& g : gts) labels.insert(g.label);
  return {labels.begin(), labels.end()};
}

}  // namespace vqe
