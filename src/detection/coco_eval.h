// COCO-style evaluation: mAP averaged over IoU thresholds 0.50:0.05:0.95
// with 101-point interpolation, plus per-class AP@0.5 reporting. The paper
// evaluates with a single-threshold AP; this richer evaluator supports
// downstream users who want COCO-protocol numbers from the same pipeline.

#ifndef VQE_DETECTION_COCO_EVAL_H_
#define VQE_DETECTION_COCO_EVAL_H_

#include <map>
#include <vector>

#include "detection/ap.h"

namespace vqe {

/// Aggregate COCO-protocol metrics over a set of frames.
struct CocoMetrics {
  /// mAP averaged over IoU in {0.50, 0.55, ..., 0.95} (the headline COCO
  /// number).
  double map_50_95 = 0.0;
  /// mAP at IoU 0.50 (PASCAL-style).
  double map_50 = 0.0;
  /// mAP at IoU 0.75 (strict-localization).
  double map_75 = 0.0;
  /// Per-class AP at IoU 0.50, for classes present in the ground truth.
  std::map<ClassId, double> per_class_ap50;
};

/// Evaluates pooled detections against ground truth across frames with the
/// COCO protocol. Inputs must be index-aligned per frame.
CocoMetrics CocoEvaluate(
    const std::vector<DetectionList>& detections_per_frame,
    const std::vector<GroundTruthList>& gt_per_frame);

/// Dataset mAP at one IoU threshold restricted to a single class; 1.0 when
/// the class never appears in either input (vacuous), matching ap.h's
/// conventions.
double DatasetClassAp(const std::vector<DetectionList>& detections_per_frame,
                      const std::vector<GroundTruthList>& gt_per_frame,
                      ClassId cls, double iou_threshold);

}  // namespace vqe

#endif  // VQE_DETECTION_COCO_EVAL_H_
