// Average Precision (AP / mAP) evaluation, the accuracy measure a_{S|v} of
// the paper (§2.3): the area under the precision–recall curve of the
// detections against reference boxes, computed per class and averaged.
//
// Per-frame conventions (single frames routinely have zero objects):
//  * no GT boxes and no detections            -> AP = 1.0 (perfect agreement)
//  * no GT boxes but detections present       -> AP = 0.0 (pure false alarms)
//  * GT boxes present but no detections       -> AP = 0.0
//  * a class seen only in detections          -> contributes AP 0 to the mean
// These keep a_{S|v} in [0, 1] as the scoring mechanism (§2.2) requires.

#ifndef VQE_DETECTION_AP_H_
#define VQE_DETECTION_AP_H_

#include <vector>

#include "detection/detection.h"
#include "detection/matching.h"

namespace vqe {

/// Precision–recall integration rule.
enum class ApInterpolation {
  /// Area under the monotone-envelope PR curve (VOC 2010+ "all points").
  kContinuous,
  /// Mean of precision sampled at recalls {0, 0.01, ..., 1.00} (COCO).
  k101Point,
  /// Mean of precision sampled at recalls {0, 0.1, ..., 1.0} (VOC 2007).
  k11Point,
};

struct ApOptions {
  /// Minimum IoU for a detection to match a GT box.
  double iou_threshold = 0.5;
  ApInterpolation interpolation = ApInterpolation::kContinuous;
};

/// One point of a precision–recall curve.
struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
};

/// Builds the raw PR curve from confidence-ordered match outcomes.
/// `num_gt` is the recall denominator. Ignored matches are skipped.
std::vector<PrPoint> PrecisionRecallCurve(
    const std::vector<DetectionMatch>& matches, size_t num_gt);

/// Integrates a PR curve into a single AP value per `interpolation`.
/// An empty curve yields 0.
double IntegratePrCurve(const std::vector<PrPoint>& curve,
                        ApInterpolation interpolation);

/// AP for a single class on a single frame (inputs already class-filtered).
double SingleClassAp(const DetectionList& detections,
                     const GroundTruthList& ground_truth,
                     const ApOptions& options);

/// Class-partitioned view of one frame's ground truth: the per-class box
/// lists FrameMeanAp needs, built once and reused across many evaluations
/// of different detection lists against the same ground truth (matrix
/// construction evaluates 2^m − 1 fused outputs per frame).
struct GroundTruthIndex {
  struct ClassEntry {
    ClassId label = 0;
    /// All GT boxes of the class, difficult included, in original order.
    GroundTruthList boxes;
    /// True when the class has at least one non-difficult box (such
    /// classes always enter the per-frame class union).
    bool has_evaluable = false;
  };
  /// Entries in ascending label order.
  std::vector<ClassEntry> classes;

  /// Entry for `label`, or nullptr when the class has no GT boxes.
  const ClassEntry* Find(ClassId label) const;
};

/// Partitions `ground_truth` by class.
GroundTruthIndex BuildGroundTruthIndex(const GroundTruthList& ground_truth);

/// Mean AP over the union of classes present in detections or ground truth,
/// with the zero-object conventions documented at the top of this header.
double FrameMeanAp(const DetectionList& detections,
                   const GroundTruthList& ground_truth,
                   const ApOptions& options = {});

/// Identical to the list overload (bit-for-bit), but against a prebuilt
/// index — the fast path when one ground truth is evaluated many times.
double FrameMeanAp(const DetectionList& detections,
                   const GroundTruthIndex& ground_truth,
                   const ApOptions& options = {});

/// Reinterprets a detection list as ground truth, so a reference model's
/// output can stand in for GT when estimating AP online (paper Eq. (3)).
/// Detections below `min_confidence` are dropped.
GroundTruthList DetectionsAsGroundTruth(const DetectionList& reference,
                                        double min_confidence = 0.0);

/// Dataset-level mAP over many frames: detections are pooled per class
/// across frames before PR integration (VOC protocol).
double DatasetMeanAp(const std::vector<DetectionList>& detections_per_frame,
                     const std::vector<GroundTruthList>& gt_per_frame,
                     const ApOptions& options = {});

}  // namespace vqe

#endif  // VQE_DETECTION_AP_H_
