// Greedy confidence-ordered matching of detections to ground truth, the
// primitive under both AP computation and detection-quality diagnostics.

#ifndef VQE_DETECTION_MATCHING_H_
#define VQE_DETECTION_MATCHING_H_

#include <vector>

#include "common/arena.h"
#include "detection/detection.h"

namespace vqe {

/// Outcome of matching one detection against the ground truth of a frame.
struct DetectionMatch {
  /// Index into the (confidence-sorted) detection list.
  size_t detection_index = 0;
  /// True positive: matched an unclaimed GT box of the same class with
  /// IoU >= threshold.
  bool is_tp = false;
  /// Index of the matched GT box, or -1.
  int32_t gt_index = -1;
  /// IoU with the matched GT box (0 when unmatched).
  double iou = 0.0;
  /// Confidence of the detection (copied for PR-curve construction).
  double confidence = 0.0;
  /// True when the detection matched a GT box flagged `difficult`; such
  /// detections are ignored by AP (neither TP nor FP), per VOC.
  bool ignored = false;
};

/// Result of matching all detections of one class on one frame.
struct MatchResult {
  std::vector<DetectionMatch> matches;  // ordered by descending confidence
  /// Number of non-difficult GT boxes of the class (the recall denominator).
  size_t num_gt = 0;
};

/// Greedily matches same-class detections to GT boxes.
///
/// Detections are processed in descending confidence order; each claims the
/// highest-IoU unclaimed GT box of its class when that IoU >= iou_threshold
/// (VOC/COCO protocol). Each GT box is claimed at most once.
///
/// Both inputs may contain multiple classes; only pairs with equal labels
/// can match. `num_gt` counts all non-difficult GT boxes across classes.
MatchResult MatchDetections(const DetectionList& detections,
                            const GroundTruthList& ground_truth,
                            double iou_threshold);

namespace detail {

/// MatchDetections with every transient (sort order, claim flags, the
/// match records themselves) carved from `arena`. The per-frame scoring
/// hot path runs thousands of matchings per frame; this variant performs
/// zero heap allocations. The returned records live in `arena` and die
/// with the caller's ArenaScope. Bit-identical to MatchDetections (which
/// delegates here).
struct ArenaMatchResult {
  const DetectionMatch* matches = nullptr;  // descending confidence
  size_t size = 0;
  size_t num_gt = 0;
};
ArenaMatchResult MatchDetectionsArena(const Detection* detections, size_t n,
                                      const GroundTruthList& ground_truth,
                                      double iou_threshold, FrameArena& arena);

}  // namespace detail

}  // namespace vqe

#endif  // VQE_DETECTION_MATCHING_H_
