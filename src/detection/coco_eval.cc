#include "detection/coco_eval.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "detection/matching.h"

namespace vqe {

double DatasetClassAp(const std::vector<DetectionList>& detections_per_frame,
                      const std::vector<GroundTruthList>& gt_per_frame,
                      ClassId cls, double iou_threshold) {
  assert(detections_per_frame.size() == gt_per_frame.size());
  std::vector<DetectionMatch> pooled;
  size_t num_gt = 0;
  for (size_t f = 0; f < gt_per_frame.size(); ++f) {
    GroundTruthList cls_gt;
    for (const auto& g : gt_per_frame[f]) {
      if (g.label == cls) cls_gt.push_back(g);
    }
    const DetectionList cls_det = FilterByClass(detections_per_frame[f], cls);
    const MatchResult mr = MatchDetections(cls_det, cls_gt, iou_threshold);
    num_gt += mr.num_gt;
    pooled.insert(pooled.end(), mr.matches.begin(), mr.matches.end());
  }
  if (num_gt == 0) return pooled.empty() ? 1.0 : 0.0;
  std::stable_sort(pooled.begin(), pooled.end(),
                   [](const DetectionMatch& a, const DetectionMatch& b) {
                     return a.confidence > b.confidence;
                   });
  const auto curve = PrecisionRecallCurve(pooled, num_gt);
  return IntegratePrCurve(curve, ApInterpolation::k101Point);
}

CocoMetrics CocoEvaluate(
    const std::vector<DetectionList>& detections_per_frame,
    const std::vector<GroundTruthList>& gt_per_frame) {
  assert(detections_per_frame.size() == gt_per_frame.size());
  CocoMetrics metrics;

  // Evaluated classes: those with at least one evaluable GT instance
  // (classes without ground truth are excluded, per COCO).
  std::set<ClassId> classes;
  for (const auto& gts : gt_per_frame) {
    for (const auto& g : gts) {
      if (!g.difficult) classes.insert(g.label);
    }
  }
  if (classes.empty()) {
    metrics.map_50_95 = metrics.map_50 = metrics.map_75 = 1.0;
    return metrics;
  }

  double sum_50_95 = 0.0;
  double sum_50 = 0.0;
  double sum_75 = 0.0;
  for (ClassId cls : classes) {
    double class_sum = 0.0;
    int thresholds = 0;
    for (int i = 0; i <= 9; ++i) {
      const double iou = 0.50 + 0.05 * i;
      const double ap =
          DatasetClassAp(detections_per_frame, gt_per_frame, cls, iou);
      class_sum += ap;
      ++thresholds;
      if (i == 0) {
        metrics.per_class_ap50[cls] = ap;
        sum_50 += ap;
      }
      if (i == 5) sum_75 += ap;
    }
    sum_50_95 += class_sum / thresholds;
  }
  const double n = static_cast<double>(classes.size());
  metrics.map_50_95 = sum_50_95 / n;
  metrics.map_50 = sum_50 / n;
  metrics.map_75 = sum_75 / n;
  return metrics;
}

}  // namespace vqe
