// Axis-aligned bounding boxes in image coordinates and the IoU family of
// overlap measures used by matching and box fusion.

#ifndef VQE_DETECTION_BBOX_H_
#define VQE_DETECTION_BBOX_H_

#include <algorithm>
#include <cmath>

namespace vqe {

/// Axis-aligned bounding box, (x1, y1) top-left to (x2, y2) bottom-right,
/// in pixels. A box is valid when x1 <= x2 and y1 <= y2.
struct BBox {
  double x1 = 0.0;
  double y1 = 0.0;
  double x2 = 0.0;
  double y2 = 0.0;

  static BBox FromXYWH(double x, double y, double w, double h) {
    return BBox{x, y, x + w, y + h};
  }

  static BBox FromCenter(double cx, double cy, double w, double h) {
    return BBox{cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2};
  }

  double width() const { return x2 - x1; }
  double height() const { return y2 - y1; }
  double cx() const { return (x1 + x2) / 2; }
  double cy() const { return (y1 + y2) / 2; }

  /// Area; 0 for degenerate boxes.
  double Area() const {
    return std::max(0.0, width()) * std::max(0.0, height());
  }

  bool IsValid() const { return x2 >= x1 && y2 >= y1; }

  /// True for a zero-area box.
  bool IsEmpty() const { return Area() <= 0.0; }

  /// Clips this box to the [0,w]×[0,h] image rectangle.
  BBox ClippedTo(double w, double h) const {
    BBox b;
    b.x1 = std::clamp(x1, 0.0, w);
    b.y1 = std::clamp(y1, 0.0, h);
    b.x2 = std::clamp(x2, 0.0, w);
    b.y2 = std::clamp(y2, 0.0, h);
    if (b.x2 < b.x1) b.x2 = b.x1;
    if (b.y2 < b.y1) b.y2 = b.y1;
    return b;
  }

  bool Contains(double px, double py) const {
    return px >= x1 && px <= x2 && py >= y1 && py <= y2;
  }

  bool operator==(const BBox& o) const {
    return x1 == o.x1 && y1 == o.y1 && x2 == o.x2 && y2 == o.y2;
  }
};

/// Intersection area of two boxes (0 when disjoint).
inline double IntersectionArea(const BBox& a, const BBox& b) {
  const double iw = std::min(a.x2, b.x2) - std::max(a.x1, b.x1);
  const double ih = std::min(a.y2, b.y2) - std::max(a.y1, b.y1);
  if (iw <= 0.0 || ih <= 0.0) return 0.0;
  return iw * ih;
}

/// Intersection-over-Union in [0, 1]. Degenerate pairs yield 0.
inline double IoU(const BBox& a, const BBox& b) {
  const double inter = IntersectionArea(a, b);
  if (inter <= 0.0) return 0.0;
  const double uni = a.Area() + b.Area() - inter;
  return uni <= 0.0 ? 0.0 : inter / uni;
}

/// IoU with the operands' areas supplied by the caller. Bit-identical to
/// IoU(a, b) whenever area_a == a.Area() and area_b == b.Area(): the
/// intersection and union fold the same expressions in the same order, so
/// hot loops that compare one box against many can hoist the Area() calls
/// out of the pair sweep without perturbing a single result.
inline double IoUWithAreas(const BBox& a, double area_a, const BBox& b,
                           double area_b) {
  const double inter = IntersectionArea(a, b);
  if (inter <= 0.0) return 0.0;
  const double uni = area_a + area_b - inter;
  return uni <= 0.0 ? 0.0 : inter / uni;
}

/// Intersection-over-smaller-area ("overlap coefficient"), used by some
/// fusion variants to merge nested boxes aggressively.
inline double IoMin(const BBox& a, const BBox& b) {
  const double inter = IntersectionArea(a, b);
  if (inter <= 0.0) return 0.0;
  const double smaller = std::min(a.Area(), b.Area());
  return smaller <= 0.0 ? 0.0 : inter / smaller;
}

/// Generalized IoU (Rezatofighi et al.): IoU − (hull − union) / hull,
/// in (−1, 1]. Unlike IoU it is informative for disjoint boxes.
inline double GIoU(const BBox& a, const BBox& b) {
  const double inter = IntersectionArea(a, b);
  const double uni = a.Area() + b.Area() - inter;
  const BBox hull{std::min(a.x1, b.x1), std::min(a.y1, b.y1),
                  std::max(a.x2, b.x2), std::max(a.y2, b.y2)};
  const double hull_area = hull.Area();
  if (hull_area <= 0.0) return 0.0;
  const double iou = uni <= 0.0 ? 0.0 : inter / uni;
  return iou - (hull_area - uni) / hull_area;
}

}  // namespace vqe

#endif  // VQE_DETECTION_BBOX_H_
