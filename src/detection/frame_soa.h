// Structure-of-arrays mirror of a frame's cached per-model detections.
// The per-frame fusion hot path evaluates up to 2^m − 1 masks over the
// same m detection lists; kernels that sweep many box pairs (the pairwise
// IoU tile, vectorized overlap scans) pay for Detection's AoS layout twice
// — 64-byte strides for 8-byte coordinate reads, plus a pointer chase per
// box. FrameSoA is built once per frame, right after AssignFrameDetIds,
// and exposes the coordinates as contiguous parallel arrays indexed by
// frame_det_id so those kernels stream over dense lanes instead.
//
// Two views are maintained:
//   * id-indexed arrays (x1/y1/x2/y2/score/area/label/model): slot i is
//     the detection whose frame_det_id == i, matching the ids a prior
//     AssignFrameDetIds assigned. Slots no detection claims are zeroed
//     and excluded from the label blocks.
//   * label-sorted packed blocks: ids grouped by ascending class label
//     (ids ascending within a block), with the block's coordinates packed
//     contiguously. Fusion only compares boxes within a class, so a
//     kernel that walks one block touches exactly the pairs it needs,
//     over unit-stride lanes the compiler can vectorize.
//
// The SoA arrays are plain copies — coordinate and area values are the
// exact doubles the source Detections carry (area via BBox::Area(), the
// same expression scalar IoU evaluates) — so SoA kernels can promise
// bit-identical results to their pointer-chasing predecessors.

#ifndef VQE_DETECTION_FRAME_SOA_H_
#define VQE_DETECTION_FRAME_SOA_H_

#include <cstdint>
#include <vector>

#include "detection/detection.h"

namespace vqe {

class FrameSoA {
 public:
  /// One class's contiguous run in the packed arrays: slots
  /// [begin, end) of packed_*() all carry `label`.
  struct LabelBlock {
    ClassId label = 0;
    size_t begin = 0;
    size_t end = 0;
  };

  /// An empty store (num_ids() == 0).
  FrameSoA() = default;

  /// Builds the store over `per_model`, whose detections must carry the
  /// ids a prior AssignFrameDetIds(per_model) assigned; `num_ids` is its
  /// return value. Detections with out-of-range ids are skipped; when two
  /// detections claim one id the later one wins (matching the historical
  /// id→detection map used by the IoU tile). The source vector must
  /// outlive the store for per_model_view() to remain valid; the SoA
  /// arrays themselves are self-contained copies.
  FrameSoA(const std::vector<DetectionList>& per_model, int num_ids);

  int num_ids() const { return num_ids_; }
  bool empty() const { return num_ids_ == 0; }

  /// Id-indexed parallel arrays (size num_ids()).
  const double* x1() const { return x1_.data(); }
  const double* y1() const { return y1_.data(); }
  const double* x2() const { return x2_.data(); }
  const double* y2() const { return y2_.data(); }
  const double* score() const { return score_.data(); }
  /// BBox::Area() of each box, precomputed with the exact expression
  /// scalar IoU uses.
  const double* area() const { return area_.data(); }
  const int32_t* label() const { return label_.data(); }
  /// Producing model's pool index (Detection::model_index).
  const int32_t* model() const { return model_.data(); }
  /// True when slot i was claimed by a detection.
  bool id_filled(int i) const {
    return filled_[static_cast<size_t>(i)] != 0;
  }

  /// Label-sorted packed view: blocks() partitions the packed arrays by
  /// ascending class; packed_id()[s] maps packed slot s back to the
  /// frame_det_id whose coordinates packed_x1()[s] … hold.
  const std::vector<LabelBlock>& blocks() const { return blocks_; }
  const int32_t* packed_id() const { return packed_id_.data(); }
  const double* packed_x1() const { return packed_x1_.data(); }
  const double* packed_y1() const { return packed_y1_.data(); }
  const double* packed_x2() const { return packed_x2_.data(); }
  const double* packed_y2() const { return packed_y2_.data(); }
  const double* packed_area() const { return packed_area_.data(); }
  size_t packed_size() const { return packed_id_.size(); }

  /// Per packed slot: the index within the *source vector* of the list the
  /// slot's detection came from (not Detection::model_index, which
  /// producers may leave unset). Fusion's grouped flatten uses this to
  /// filter the packed blocks down to a mask's member lists.
  const int32_t* packed_list() const { return packed_list_.data(); }
  /// Per packed slot: pointer to the source Detection (valid while the
  /// source lists are unmodified). Lets fusion copy full records —
  /// box_variance and all — straight from the block walk.
  const Detection* const* packed_src() const { return packed_src_.data(); }
  /// Per-block stable descending-score permutation: for s in
  /// [block.begin, block.end), sorted_slot()[s] visits the block's packed
  /// slots from highest to lowest score, ties in packed (id-ascending =
  /// model-major input) order. Because a stable sort of a sequence,
  /// filtered to any subset, equals the stable sort of that filtered
  /// subset, fusion reuses this one per-frame permutation for every mask's
  /// descending-confidence pool instead of re-sorting per mask.
  const int32_t* sorted_slot() const { return sorted_slot_.data(); }

  /// The source per-model vector the store was built over (nullptr for an
  /// empty store). Fusion's fast path uses address identity against this
  /// vector to map a mask's input lists back to packed_list() indices.
  const std::vector<DetectionList>* source() const { return source_; }

  /// Non-owning view of the source per-model lists, so call sites that
  /// still speak EnsembleMethod::Fuse(DetectionListSpan) can be handed a
  /// FrameSoA without re-plumbing. Valid while the source vector lives.
  DetectionListSpan per_model_view() const {
    return source_ != nullptr ? DetectionListSpan(*source_)
                              : DetectionListSpan();
  }

 private:
  int num_ids_ = 0;
  std::vector<double> x1_, y1_, x2_, y2_, score_, area_;
  std::vector<int32_t> label_, model_;
  std::vector<uint8_t> filled_;
  std::vector<LabelBlock> blocks_;
  std::vector<int32_t> packed_id_;
  std::vector<double> packed_x1_, packed_y1_, packed_x2_, packed_y2_,
      packed_area_;
  std::vector<int32_t> packed_list_;
  std::vector<const Detection*> packed_src_;
  std::vector<int32_t> sorted_slot_;
  const std::vector<DetectionList>* source_ = nullptr;
};

}  // namespace vqe

#endif  // VQE_DETECTION_FRAME_SOA_H_
