// Detection records: the ⟨BBox, Conf, Label⟩ triplets of the paper (§2.1),
// with the per-model variance channel consumed by Softer-NMS.

#ifndef VQE_DETECTION_DETECTION_H_
#define VQE_DETECTION_DETECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "detection/bbox.h"

namespace vqe {

/// Integer object-class label (e.g. car = 0); the class vocabulary lives in
/// the dataset configuration.
using ClassId = int32_t;

/// One detected object instance: the paper's ⟨BBox, Conf, Label⟩ triplet.
struct Detection {
  BBox box;
  /// Detector confidence in [0, 1].
  double confidence = 0.0;
  ClassId label = 0;
  /// Index of the producing model within the pool (−1 when fused or GT).
  int32_t model_index = -1;
  /// Predicted localization variance (pixels²) used by Softer-NMS variance
  /// voting; 0 when the producer does not estimate it.
  double box_variance = 0.0;
  /// Frame-local identity for the pairwise-IoU tile cache
  /// (fusion/iou_cache.h), assigned by AssignFrameDetIds over the frame's
  /// cached per-model outputs; −1 when unassigned. Fusion outputs always
  /// reset it to −1: a fused box is a new object whose coordinates no
  /// longer match any cached tile row.
  int32_t frame_det_id = -1;
};

/// All detections on one frame, in no particular order.
using DetectionList = std::vector<Detection>;

/// Non-owning view of per-model detection lists (the inputs of
/// EnsembleMethod::Fuse): either a contiguous array of lists or an array
/// of list pointers. Lets callers assemble an ensemble's inputs from
/// cached per-model outputs without deep-copying a single detection (the
/// hot path of matrix construction fuses the same m lists under 2^m − 1
/// masks). The referenced lists must outlive the span.
class DetectionListSpan {
 public:
  DetectionListSpan() = default;
  /// View over an owning vector of lists.
  DetectionListSpan(const std::vector<DetectionList>& lists)
      : contiguous_(lists.data()), size_(lists.size()) {}
  /// View over a vector of non-null list pointers.
  DetectionListSpan(const std::vector<const DetectionList*>& ptrs)
      : indirect_(ptrs.data()), size_(ptrs.size()) {}
  /// View over `n` contiguous lists starting at `data`, which must outlive
  /// the span.
  DetectionListSpan(const DetectionList* data, size_t n)
      : contiguous_(data), size_(n) {}
  // There is deliberately no initializer_list constructor: one would store
  // lists.begin() and dangle the moment a braced list is bound to a named
  // span. Braced calls like Fuse({a, b}) instead go through the non-virtual
  // EnsembleMethod::Fuse(initializer_list) overload, whose backing array is
  // guaranteed to outlive the nested virtual call.

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const DetectionList& operator[](size_t i) const {
    return contiguous_ != nullptr ? contiguous_[i] : *indirect_[i];
  }

 private:
  const DetectionList* contiguous_ = nullptr;
  const DetectionList* const* indirect_ = nullptr;
  size_t size_ = 0;
};

/// A ground-truth object instance on a frame.
struct GroundTruthBox {
  BBox box;
  ClassId label = 0;
  /// Stable object identity across frames (for tracking-style queries).
  int64_t object_id = -1;
  /// Marked true for instances that are too occluded/small to be reasonably
  /// detectable; they are excluded from AP like VOC "difficult" objects.
  bool difficult = false;
  /// Intrinsic detection difficulty in [0, 1] (occlusion, truncation,
  /// distance). Shared across detectors, so their misses are correlated the
  /// way real models' misses are.
  double hardness = 0.0;
};

using GroundTruthList = std::vector<GroundTruthBox>;

/// Sorts detections by descending confidence (stable, so equal-confidence
/// detections keep their input order — important for deterministic AP).
void SortByConfidenceDesc(DetectionList* dets);

/// Returns only the detections whose label equals cls.
DetectionList FilterByClass(const DetectionList& dets, ClassId cls);

/// Returns only the detections with confidence >= threshold.
DetectionList FilterByConfidence(const DetectionList& dets, double threshold);

/// Distinct labels present in `dets`, ascending.
std::vector<ClassId> DistinctLabels(const DetectionList& dets);

/// Distinct labels present in `gts`, ascending.
std::vector<ClassId> DistinctLabels(const GroundTruthList& gts);

}  // namespace vqe

#endif  // VQE_DETECTION_DETECTION_H_
