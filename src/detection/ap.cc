#include "detection/ap.h"

#include <algorithm>
#include <cassert>
#include <new>
#include <set>

#include "common/arena.h"

namespace vqe {

std::vector<PrPoint> PrecisionRecallCurve(
    const std::vector<DetectionMatch>& matches, size_t num_gt) {
  std::vector<PrPoint> curve;
  if (num_gt == 0) return curve;
  size_t tp = 0;
  size_t fp = 0;
  curve.reserve(matches.size());
  for (const auto& m : matches) {
    if (m.ignored) continue;
    if (m.is_tp) {
      ++tp;
    } else {
      ++fp;
    }
    PrPoint p;
    p.recall = static_cast<double>(tp) / static_cast<double>(num_gt);
    p.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    curve.push_back(p);
  }
  return curve;
}

namespace {

// Precision envelope: for each curve point, the max precision at any
// recall >= that point's recall (standard monotone interpolation).
std::vector<PrPoint> MonotoneEnvelope(std::vector<PrPoint> curve) {
  for (size_t i = curve.size(); i-- > 1;) {
    curve[i - 1].precision = std::max(curve[i - 1].precision,
                                      curve[i].precision);
  }
  return curve;
}

// Max envelope precision at recall >= r; 0 beyond the curve's max recall.
double EnvelopePrecisionAt(const std::vector<PrPoint>& envelope, double r) {
  for (const auto& p : envelope) {
    if (p.recall >= r - 1e-12) return p.precision;
  }
  return 0.0;
}

// --- Arena twins of the PR pipeline -----------------------------------
//
// The scoring hot path (FrameMeanAp against a prebuilt index, thousands of
// calls per frame) runs the same arithmetic as the public vector-based
// functions but carves every transient from the calling thread's
// FrameArena. Each stage mirrors its vector twin statement by statement,
// so the results are bit-identical by construction.

// PrecisionRecallCurve over arena match records, into an arena curve.
struct ArenaCurve {
  PrPoint* points = nullptr;
  size_t size = 0;
};

ArenaCurve PrecisionRecallCurveArena(const DetectionMatch* matches,
                                     size_t num_matches, size_t num_gt,
                                     FrameArena& arena) {
  ArenaCurve curve;
  if (num_gt == 0) return curve;
  curve.points = arena.AllocateArray<PrPoint>(num_matches);
  size_t tp = 0;
  size_t fp = 0;
  for (size_t i = 0; i < num_matches; ++i) {
    const DetectionMatch& m = matches[i];
    if (m.ignored) continue;
    if (m.is_tp) {
      ++tp;
    } else {
      ++fp;
    }
    PrPoint* p = new (curve.points + curve.size++) PrPoint();
    p->recall = static_cast<double>(tp) / static_cast<double>(num_gt);
    p->precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  }
  return curve;
}

// IntegratePrCurve, with the monotone envelope applied in place (the
// vector twin's copy carries exactly these values).
double IntegratePrCurveArena(const ArenaCurve& curve,
                             ApInterpolation interpolation) {
  if (curve.size == 0) return 0.0;
  PrPoint* env = curve.points;
  const size_t n = curve.size;
  for (size_t i = n; i-- > 1;) {
    env[i - 1].precision = std::max(env[i - 1].precision, env[i].precision);
  }
  const auto envelope_at = [env, n](double r) {
    for (size_t i = 0; i < n; ++i) {
      if (env[i].recall >= r - 1e-12) return env[i].precision;
    }
    return 0.0;
  };

  switch (interpolation) {
    case ApInterpolation::kContinuous: {
      double ap = 0.0;
      double prev_recall = 0.0;
      for (size_t i = 0; i < n; ++i) {
        ap += (env[i].recall - prev_recall) * env[i].precision;
        prev_recall = env[i].recall;
      }
      return ap;
    }
    case ApInterpolation::k101Point: {
      double sum = 0.0;
      for (int i = 0; i <= 100; ++i) {
        sum += envelope_at(i / 100.0);
      }
      return sum / 101.0;
    }
    case ApInterpolation::k11Point: {
      double sum = 0.0;
      for (int i = 0; i <= 10; ++i) {
        sum += envelope_at(i / 10.0);
      }
      return sum / 11.0;
    }
  }
  return 0.0;
}

// SingleClassAp over a class-filtered arena run of detections.
double SingleClassApArena(const Detection* detections, size_t n,
                          const GroundTruthList& ground_truth,
                          const ApOptions& options, FrameArena& arena) {
  size_t num_gt = 0;
  for (const auto& g : ground_truth) {
    if (!g.difficult) ++num_gt;
  }
  if (num_gt == 0) {
    // No evaluable objects of this class: perfect iff every detection is
    // ignorable (matched a difficult box) or absent.
    if (n == 0) return 1.0;
    ArenaScope scope(arena);
    const detail::ArenaMatchResult mr = detail::MatchDetectionsArena(
        detections, n, ground_truth, options.iou_threshold, arena);
    for (size_t i = 0; i < mr.size; ++i) {
      if (!mr.matches[i].ignored) return 0.0;
    }
    return 1.0;
  }
  if (n == 0) return 0.0;
  ArenaScope scope(arena);
  const detail::ArenaMatchResult mr = detail::MatchDetectionsArena(
      detections, n, ground_truth, options.iou_threshold, arena);
  const ArenaCurve curve =
      PrecisionRecallCurveArena(mr.matches, mr.size, mr.num_gt, arena);
  return IntegratePrCurveArena(curve, options.interpolation);
}

}  // namespace

double IntegratePrCurve(const std::vector<PrPoint>& curve,
                        ApInterpolation interpolation) {
  if (curve.empty()) return 0.0;
  const std::vector<PrPoint> env = MonotoneEnvelope(curve);

  switch (interpolation) {
    case ApInterpolation::kContinuous: {
      double ap = 0.0;
      double prev_recall = 0.0;
      for (const auto& p : env) {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
      }
      return ap;
    }
    case ApInterpolation::k101Point: {
      double sum = 0.0;
      for (int i = 0; i <= 100; ++i) {
        sum += EnvelopePrecisionAt(env, i / 100.0);
      }
      return sum / 101.0;
    }
    case ApInterpolation::k11Point: {
      double sum = 0.0;
      for (int i = 0; i <= 10; ++i) {
        sum += EnvelopePrecisionAt(env, i / 10.0);
      }
      return sum / 11.0;
    }
  }
  return 0.0;
}

double SingleClassAp(const DetectionList& detections,
                     const GroundTruthList& ground_truth,
                     const ApOptions& options) {
  size_t num_gt = 0;
  for (const auto& g : ground_truth) {
    if (!g.difficult) ++num_gt;
  }
  if (num_gt == 0) {
    // No evaluable objects of this class: perfect iff every detection is
    // ignorable (matched a difficult box) or absent.
    if (detections.empty()) return 1.0;
    const MatchResult mr =
        MatchDetections(detections, ground_truth, options.iou_threshold);
    for (const auto& m : mr.matches) {
      if (!m.ignored) return 0.0;
    }
    return 1.0;
  }
  if (detections.empty()) return 0.0;
  const MatchResult mr =
      MatchDetections(detections, ground_truth, options.iou_threshold);
  const auto curve = PrecisionRecallCurve(mr.matches, mr.num_gt);
  return IntegratePrCurve(curve, options.interpolation);
}

const GroundTruthIndex::ClassEntry* GroundTruthIndex::Find(
    ClassId label) const {
  const auto it = std::lower_bound(
      classes.begin(), classes.end(), label,
      [](const ClassEntry& e, ClassId l) { return e.label < l; });
  if (it == classes.end() || it->label != label) return nullptr;
  return &*it;
}

GroundTruthIndex BuildGroundTruthIndex(const GroundTruthList& ground_truth) {
  GroundTruthIndex index;
  for (const auto& g : ground_truth) {
    auto it = std::lower_bound(
        index.classes.begin(), index.classes.end(), g.label,
        [](const GroundTruthIndex::ClassEntry& e, ClassId l) {
          return e.label < l;
        });
    if (it == index.classes.end() || it->label != g.label) {
      it = index.classes.insert(it, GroundTruthIndex::ClassEntry{});
      it->label = g.label;
    }
    it->boxes.push_back(g);
    if (!g.difficult) it->has_evaluable = true;
  }
  return index;
}

double FrameMeanAp(const DetectionList& detections,
                   const GroundTruthList& ground_truth,
                   const ApOptions& options) {
  return FrameMeanAp(detections, BuildGroundTruthIndex(ground_truth),
                     options);
}

double FrameMeanAp(const DetectionList& detections,
                   const GroundTruthIndex& ground_truth,
                   const ApOptions& options) {
  FrameArena& arena = FrameArena::ThreadLocal();
  ArenaScope scope(arena);

  // Union of evaluable-GT classes and detected classes, ascending — the
  // iteration order the historical std::set produced, as a sorted-unique
  // arena array.
  const size_t cap = ground_truth.classes.size() + detections.size();
  if (cap == 0) return 1.0;  // nothing to detect, nothing predicted
  ClassId* labels = arena.AllocateArray<ClassId>(cap);
  size_t k = 0;
  for (const auto& e : ground_truth.classes) {
    if (e.has_evaluable) labels[k++] = e.label;
  }
  for (const auto& d : detections) labels[k++] = d.label;
  std::sort(labels, labels + k);
  const size_t num_classes =
      static_cast<size_t>(std::unique(labels, labels + k) - labels);
  if (num_classes == 0) return 1.0;

  // Class-filter scratch, refilled per class in input order (the order
  // FilterByClass preserved).
  Detection* cls_dets = arena.AllocateArray<Detection>(detections.size());
  static const GroundTruthList kNoGt;
  double sum = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    const ClassId cls = labels[c];
    size_t n = 0;
    for (const auto& d : detections) {
      if (d.label == cls) new (cls_dets + n++) Detection(d);
    }
    const auto* entry = ground_truth.Find(cls);
    const GroundTruthList& cls_gt = entry != nullptr ? entry->boxes : kNoGt;
    sum += SingleClassApArena(cls_dets, n, cls_gt, options, arena);
  }
  return sum / static_cast<double>(num_classes);
}

GroundTruthList DetectionsAsGroundTruth(const DetectionList& reference,
                                        double min_confidence) {
  GroundTruthList out;
  out.reserve(reference.size());
  for (const auto& d : reference) {
    if (d.confidence < min_confidence) continue;
    GroundTruthBox g;
    g.box = d.box;
    g.label = d.label;
    out.push_back(g);
  }
  return out;
}

double DatasetMeanAp(const std::vector<DetectionList>& detections_per_frame,
                     const std::vector<GroundTruthList>& gt_per_frame,
                     const ApOptions& options) {
  assert(detections_per_frame.size() == gt_per_frame.size());

  std::set<ClassId> classes;
  for (const auto& gts : gt_per_frame) {
    for (const auto& g : gts) {
      if (!g.difficult) classes.insert(g.label);
    }
  }
  if (classes.empty()) return 1.0;

  double sum = 0.0;
  for (ClassId cls : classes) {
    // Pool per-frame matches: match within each frame, then merge the match
    // records (sorted globally by confidence) to build one PR curve.
    std::vector<DetectionMatch> pooled;
    size_t num_gt = 0;
    for (size_t f = 0; f < gt_per_frame.size(); ++f) {
      GroundTruthList cls_gt;
      for (const auto& g : gt_per_frame[f]) {
        if (g.label == cls) cls_gt.push_back(g);
      }
      const DetectionList cls_det =
          FilterByClass(detections_per_frame[f], cls);
      const MatchResult mr =
          MatchDetections(cls_det, cls_gt, options.iou_threshold);
      num_gt += mr.num_gt;
      pooled.insert(pooled.end(), mr.matches.begin(), mr.matches.end());
    }
    std::stable_sort(pooled.begin(), pooled.end(),
                     [](const DetectionMatch& a, const DetectionMatch& b) {
                       return a.confidence > b.confidence;
                     });
    if (num_gt == 0) {
      sum += pooled.empty() ? 1.0 : 0.0;
      continue;
    }
    const auto curve = PrecisionRecallCurve(pooled, num_gt);
    sum += IntegratePrCurve(curve, options.interpolation);
  }
  return sum / static_cast<double>(classes.size());
}

}  // namespace vqe
