#include "detection/matching.h"

#include <new>

namespace vqe {

namespace detail {

ArenaMatchResult MatchDetectionsArena(const Detection* detections, size_t n,
                                      const GroundTruthList& ground_truth,
                                      double iou_threshold,
                                      FrameArena& arena) {
  ArenaMatchResult result;
  for (const auto& gt : ground_truth) {
    if (!gt.difficult) ++result.num_gt;
  }

  // Confidence-descending processing order (stable for determinism — the
  // arena merge sort realizes the same unique stable permutation the
  // historical std::stable_sort did).
  uint32_t* order = arena.AllocateArray<uint32_t>(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  ArenaStableSort(order, n, arena, [detections](uint32_t a, uint32_t b) {
    return detections[a].confidence > detections[b].confidence;
  });

  const size_t num_gt_boxes = ground_truth.size();
  uint8_t* gt_claimed = arena.AllocateArray<uint8_t>(num_gt_boxes);
  for (size_t g = 0; g < num_gt_boxes; ++g) gt_claimed[g] = 0;
  // Ground-truth areas, hoisted out of the det × gt sweep (each IoU query
  // re-derived both; IoUWithAreas keeps the arithmetic bit-identical).
  double* gt_area = arena.AllocateArray<double>(num_gt_boxes);
  for (size_t g = 0; g < num_gt_boxes; ++g) {
    gt_area[g] = ground_truth[g].box.Area();
  }

  DetectionMatch* matches = arena.AllocateArray<DetectionMatch>(n);
  for (size_t k = 0; k < n; ++k) {
    const size_t det_idx = order[k];
    const Detection& det = detections[det_idx];
    DetectionMatch* m = new (matches + k) DetectionMatch();
    m->detection_index = det_idx;
    m->confidence = det.confidence;

    double best_iou = 0.0;
    int32_t best_gt = -1;
    const double det_area = det.box.Area();
    for (size_t g = 0; g < num_gt_boxes; ++g) {
      if (gt_claimed[g]) continue;
      if (ground_truth[g].label != det.label) continue;
      const double iou =
          IoUWithAreas(det.box, det_area, ground_truth[g].box, gt_area[g]);
      if (iou >= iou_threshold && iou > best_iou) {
        best_iou = iou;
        best_gt = static_cast<int32_t>(g);
      }
    }

    if (best_gt >= 0) {
      gt_claimed[static_cast<size_t>(best_gt)] = 1;
      m->gt_index = best_gt;
      m->iou = best_iou;
      if (ground_truth[static_cast<size_t>(best_gt)].difficult) {
        m->ignored = true;  // matched a difficult box: neither TP nor FP
      } else {
        m->is_tp = true;
      }
    }
  }
  result.matches = matches;
  result.size = n;
  return result;
}

}  // namespace detail

MatchResult MatchDetections(const DetectionList& detections,
                            const GroundTruthList& ground_truth,
                            double iou_threshold) {
  FrameArena& arena = FrameArena::ThreadLocal();
  ArenaScope scope(arena);
  const detail::ArenaMatchResult r = detail::MatchDetectionsArena(
      detections.data(), detections.size(), ground_truth, iou_threshold,
      arena);
  MatchResult result;
  result.num_gt = r.num_gt;
  result.matches.assign(r.matches, r.matches + r.size);
  return result;
}

}  // namespace vqe
