#include "detection/matching.h"

#include <algorithm>
#include <numeric>

namespace vqe {

MatchResult MatchDetections(const DetectionList& detections,
                            const GroundTruthList& ground_truth,
                            double iou_threshold) {
  MatchResult result;
  for (const auto& gt : ground_truth) {
    if (!gt.difficult) ++result.num_gt;
  }

  // Confidence-descending processing order (stable for determinism).
  std::vector<size_t> order(detections.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return detections[a].confidence > detections[b].confidence;
  });

  std::vector<bool> gt_claimed(ground_truth.size(), false);
  result.matches.reserve(detections.size());

  for (size_t det_idx : order) {
    const Detection& det = detections[det_idx];
    DetectionMatch m;
    m.detection_index = det_idx;
    m.confidence = det.confidence;

    double best_iou = 0.0;
    int32_t best_gt = -1;
    for (size_t g = 0; g < ground_truth.size(); ++g) {
      if (gt_claimed[g]) continue;
      if (ground_truth[g].label != det.label) continue;
      const double iou = IoU(det.box, ground_truth[g].box);
      if (iou >= iou_threshold && iou > best_iou) {
        best_iou = iou;
        best_gt = static_cast<int32_t>(g);
      }
    }

    if (best_gt >= 0) {
      gt_claimed[static_cast<size_t>(best_gt)] = true;
      m.gt_index = best_gt;
      m.iou = best_iou;
      if (ground_truth[static_cast<size_t>(best_gt)].difficult) {
        m.ignored = true;  // matched a difficult box: neither TP nor FP
      } else {
        m.is_tp = true;
      }
    }
    result.matches.push_back(m);
  }
  return result;
}

}  // namespace vqe
