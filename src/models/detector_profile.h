// Detector profiles: the parameters of the simulated detection channel.
// A profile encodes what "a YOLOv7-tiny trained on nuScenes-night" means in
// this simulation — architecture-level accuracy/cost (Table 3) crossed with
// a training-context affinity matrix that makes detectors specialists.

#ifndef VQE_MODELS_DETECTOR_PROFILE_H_
#define VQE_MODELS_DETECTOR_PROFILE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sim/scene_context.h"

namespace vqe {

/// Network architecture families used in the paper's evaluation (Table 3).
enum class DetectorStructure {
  kYoloV7,
  kYoloV7Tiny,
  kYoloV7Micro,
  kFasterRcnn,
};

/// Architecture-level characteristics. Accuracy ordering and inference
/// times follow Table 3: YOLOv7 > tiny > micro > Faster R-CNN in accuracy;
/// 49.5 / 10.0 / 7.7 / 212 ms in cost.
struct StructureSpec {
  DetectorStructure structure = DetectorStructure::kYoloV7Tiny;
  std::string name;
  uint64_t param_count = 0;
  /// Mean simulated inference time per frame, ms.
  double cost_ms_mean = 10.0;
  /// Relative stddev of the per-frame cost jitter.
  double cost_jitter = 0.03;
  /// In-domain recall on easy objects.
  double recall_base = 0.85;
  /// Localization noise scale, pixels.
  double loc_sigma_px = 4.0;
  /// Mean false positives per frame (in-domain).
  double fp_rate = 0.4;
  /// Mean confidence boost of true positives (higher = better calibrated).
  double conf_quality = 0.8;
  /// In-domain label-confusion probability.
  double confusion_rate = 0.02;
};

/// Table-3 spec for an architecture family.
const StructureSpec& GetStructureSpec(DetectorStructure s);

/// Affinity of a detector trained on `trained` when applied to `actual`,
/// in (0, 1]. 1.0 in-domain; off-diagonal values encode how much transfer
/// degrades (clear→night is worst, mirroring the paper's motivation).
double ContextAffinity(SceneContext trained, SceneContext actual);

/// A concrete detector: an architecture trained on one scene context.
struct DetectorProfile {
  std::string name;
  DetectorStructure structure = DetectorStructure::kYoloV7Tiny;
  SceneContext trained_on = SceneContext::kClear;
  /// Multiplier on recall/quality (models differing training recipes).
  double skill = 1.0;

  Status Validate() const;
};

}  // namespace vqe

#endif  // VQE_MODELS_DETECTOR_PROFILE_H_
