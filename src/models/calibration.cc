#include "models/calibration.h"

#include "detection/ap.h"

namespace vqe {

double MeasureInDomainAp(const DetectorProfile& profile,
                         const CalibrationOptions& options) {
  SimulatedDetector detector(profile);
  double sum = 0.0;
  for (int s = 0; s < options.eval_frames; ++s) {
    const Video v = GenerateScene(options.scene, profile.trained_on, s, 1,
                                  options.seed);
    const VideoFrame& frame = v.frames[0];
    sum += FrameMeanAp(detector.Detect(frame, options.seed + s),
                       frame.objects, {});
  }
  return sum / options.eval_frames;
}

Result<CalibrationResult> CalibrateSkillToAp(
    DetectorProfile profile, double target_ap,
    const CalibrationOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  if (target_ap <= 0.0 || target_ap >= 1.0) {
    return Status::InvalidArgument("target_ap must be in (0, 1)");
  }

  constexpr double kSkillLo = 0.05;
  constexpr double kSkillHi = 1.5;

  auto ap_at = [&](double skill) {
    DetectorProfile p = profile;
    p.skill = skill;
    return MeasureInDomainAp(p, options);
  };

  // AP is monotone non-decreasing in skill: bracket check first.
  const double ap_hi = ap_at(kSkillHi);
  if (ap_hi < target_ap) {
    return Status::OutOfRange(
        "target AP exceeds this architecture's ceiling (" +
        std::to_string(ap_hi) + ")");
  }
  const double ap_lo = ap_at(kSkillLo);
  if (ap_lo > target_ap) {
    return Status::OutOfRange(
        "target AP below this architecture's floor (" +
        std::to_string(ap_lo) + ")");
  }

  double lo = kSkillLo;
  double hi = kSkillHi;
  for (int i = 0; i < options.iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (ap_at(mid) < target_ap) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  CalibrationResult result;
  result.profile = profile;
  result.profile.skill = 0.5 * (lo + hi);
  result.achieved_ap = MeasureInDomainAp(result.profile, options);
  return result;
}

}  // namespace vqe
