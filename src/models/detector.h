// The black-box object-detector abstraction of the paper (§2.1): MES makes
// no assumption about a detector beyond "give me detections and charge me
// inference time". Production deployments would implement this interface
// over libtorch/ONNX sessions; this repo provides simulated implementations
// (see simulated_detector.h) with calibrated accuracy/cost profiles.

#ifndef VQE_MODELS_DETECTOR_H_
#define VQE_MODELS_DETECTOR_H_

#include <cstdint>
#include <string>

#include "detection/detection.h"
#include "sim/video.h"

namespace vqe {

/// A camera-based object detector, treated as a black box.
class ObjectDetector {
 public:
  virtual ~ObjectDetector() = default;

  /// Stable human-readable name, e.g. "yolov7-tiny@night".
  virtual const std::string& name() const = 0;

  /// Runs detection on one frame.
  ///
  /// `trial_seed` scopes the stochastic channel: the same (detector, frame,
  /// trial_seed) triple always returns the same detections, and different
  /// trials draw independent noise — the simulation counterpart of
  /// re-capturing the video.
  virtual DetectionList Detect(const VideoFrame& frame,
                               uint64_t trial_seed) const = 0;

  /// Simulated inference time c_{M|v} in milliseconds for this frame.
  virtual double InferenceCostMs(const VideoFrame& frame,
                                 uint64_t trial_seed) const = 0;

  /// Number of model parameters (reporting only, cf. Table 3).
  virtual uint64_t param_count() const = 0;

  /// Architecture family name for reporting, e.g. "YOLOv7-tiny".
  virtual const std::string& structure_name() const = 0;
};

}  // namespace vqe

#endif  // VQE_MODELS_DETECTOR_H_
