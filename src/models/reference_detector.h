// Simulated LiDAR reference model (REF of the paper, §2.3): the MEGVII
// point-cloud detector the authors use to estimate AP online in place of
// ground truth.
//
// The simulation reproduces its three load-bearing properties:
//  1. robustness — LiDAR is barely affected by lighting/weather, so recall
//     is flat across scene contexts;
//  2. coarseness — 3D boxes projected to the image plane are noisier than
//     camera boxes, and classification is weaker;
//  3. speed — c_REF ≪ c_M for every camera model (paper cites [63]).

#ifndef VQE_MODELS_REFERENCE_DETECTOR_H_
#define VQE_MODELS_REFERENCE_DETECTOR_H_

#include <memory>

#include "models/detector.h"

namespace vqe {

/// Tuning of the reference channel. Defaults model a MEGVII-class LiDAR
/// detector.
struct ReferenceProfile {
  std::string name = "megvii-lidar";
  /// Recall on easy objects, identical in every context.
  double recall = 0.78;
  /// Projection noise of the 3D→2D boxes, pixels.
  double loc_sigma_px = 12.0;
  /// Mean false positives per frame (ghost points, multipath).
  double fp_rate = 0.45;
  /// Label-confusion probability (LiDAR classifies coarsely).
  double confusion_rate = 0.08;
  /// Inference time, ms (must be ≪ camera models; paper assumption).
  double cost_ms_mean = 2.5;
  double cost_jitter = 0.05;
};

/// Simulated LiDAR reference detector.
class ReferenceDetector : public ObjectDetector {
 public:
  explicit ReferenceDetector(ReferenceProfile profile = {});

  const std::string& name() const override { return profile_.name; }
  DetectionList Detect(const VideoFrame& frame,
                       uint64_t trial_seed) const override;
  double InferenceCostMs(const VideoFrame& frame,
                         uint64_t trial_seed) const override;
  uint64_t param_count() const override { return 5'400'000; }
  const std::string& structure_name() const override;

  const ReferenceProfile& profile() const { return profile_; }

 private:
  ReferenceProfile profile_;
  uint64_t uid_;
};

}  // namespace vqe

#endif  // VQE_MODELS_REFERENCE_DETECTOR_H_
