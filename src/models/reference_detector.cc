#include "models/reference_detector.h"

#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"
#include "sim/object_classes.h"

namespace vqe {

namespace {

uint64_t NameHash(const std::string& name) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

ReferenceDetector::ReferenceDetector(ReferenceProfile profile)
    : profile_(std::move(profile)), uid_(NameHash(profile_.name)) {}

const std::string& ReferenceDetector::structure_name() const {
  static const std::string kName = "LiDAR-3D";
  return kName;
}

DetectionList ReferenceDetector::Detect(const VideoFrame& frame,
                                        uint64_t trial_seed) const {
  const uint64_t frame_key =
      HashCombine(static_cast<uint64_t>(frame.scene_id),
                  static_cast<uint64_t>(frame.frame_index));
  Rng rng = MakeStreamRng(trial_seed, uid_, frame_key, 0x11DA2);

  DetectionList out;
  out.reserve(frame.objects.size());
  for (const auto& obj : frame.objects) {
    // LiDAR misses are driven by point-cloud sparsity: hardness (distance,
    // occlusion) matters, scene context does not.
    const double p_detect =
        Clamp(profile_.recall * (1.0 - 0.55 * obj.hardness), 0.0, 0.98);
    if (!rng.Bernoulli(p_detect)) continue;

    Detection d;
    const double sigma =
        profile_.loc_sigma_px * (0.5 + obj.box.width() / 500.0);
    const double cx = obj.box.cx() + rng.Gaussian(0.0, sigma);
    const double cy = obj.box.cy() + rng.Gaussian(0.0, sigma);
    const double wscale = Clamp(rng.Gaussian(1.0, 0.08), 0.7, 1.3);
    const double hscale = Clamp(rng.Gaussian(1.0, 0.08), 0.7, 1.3);
    d.box = BBox::FromCenter(cx, cy, obj.box.width() * wscale,
                             obj.box.height() * hscale)
                .ClippedTo(frame.image_width, frame.image_height);
    if (d.box.IsEmpty()) continue;

    d.confidence = Clamp(rng.Gaussian(0.80, 0.08), 0.2, 0.99);
    d.label = obj.label;
    if (rng.Bernoulli(profile_.confusion_rate)) {
      const auto& classes = DrivingClasses();
      ClassId other = classes[rng.UniformInt(classes.size())].id;
      if (other == obj.label) {
        other = classes[(static_cast<size_t>(other) + 1) % classes.size()].id;
      }
      d.label = other;
    }
    d.box_variance = sigma * sigma;
    out.push_back(d);
  }

  const int num_fp = rng.Poisson(profile_.fp_rate);
  const auto& classes = DrivingClasses();
  for (int i = 0; i < num_fp; ++i) {
    const auto& cls = classes[rng.UniformInt(classes.size())];
    Detection d;
    d.label = cls.id;
    const double w = Clamp(rng.Gaussian(cls.width_mean, cls.width_stddev),
                           cls.width_mean * 0.3, cls.width_mean * 2.0);
    d.box = BBox::FromCenter(rng.Uniform(0.0, frame.image_width),
                             rng.Uniform(frame.image_height * 0.3,
                                         frame.image_height),
                             w, w * cls.aspect_mean)
                .ClippedTo(frame.image_width, frame.image_height);
    d.confidence = Clamp(rng.Gaussian(0.45, 0.12), 0.1, 0.9);
    out.push_back(d);
  }
  return out;
}

double ReferenceDetector::InferenceCostMs(const VideoFrame& frame,
                                          uint64_t trial_seed) const {
  const uint64_t frame_key =
      HashCombine(static_cast<uint64_t>(frame.scene_id),
                  static_cast<uint64_t>(frame.frame_index));
  Rng rng = MakeStreamRng(trial_seed, uid_, frame_key, 0x11C057);
  const double cost =
      profile_.cost_ms_mean * (1.0 + profile_.cost_jitter * rng.NextGaussian());
  return std::max(cost, 0.2 * profile_.cost_ms_mean);
}

}  // namespace vqe
