// Simulated camera detector: a stochastic detection channel applied to the
// ground-truth objects of a frame, parameterized by a DetectorProfile.
//
// Substitution rationale (see DESIGN.md §2): MES treats detectors as black
// boxes, so only the joint distribution of (detections, cost) across scene
// contexts matters. The channel reproduces the phenomena the paper's
// evaluation depends on: specialists beat generalists in-domain, small and
// hard objects are missed (with misses correlated across models through a
// shared per-object hardness), boxes are localization-noisy, confidences
// are imperfectly calibrated, and false positives appear at a
// context-dependent rate.

#ifndef VQE_MODELS_SIMULATED_DETECTOR_H_
#define VQE_MODELS_SIMULATED_DETECTOR_H_

#include <memory>

#include "models/detector.h"
#include "models/detector_profile.h"

namespace vqe {

/// Profile-driven simulated detector.
class SimulatedDetector : public ObjectDetector {
 public:
  explicit SimulatedDetector(DetectorProfile profile);

  const std::string& name() const override { return profile_.name; }
  DetectionList Detect(const VideoFrame& frame,
                       uint64_t trial_seed) const override;
  double InferenceCostMs(const VideoFrame& frame,
                         uint64_t trial_seed) const override;
  uint64_t param_count() const override;
  const std::string& structure_name() const override;

  const DetectorProfile& profile() const { return profile_; }

  /// Effective quality q ∈ (0, 1] of this detector in a context:
  /// skill × ContextAffinity(trained_on, ctx).
  double QualityIn(SceneContext ctx) const;

 private:
  DetectorProfile profile_;
  const StructureSpec* spec_;  // borrowed from the static table
  uint64_t uid_;               // stable hash of the name, keys RNG streams
};

/// Convenience factory returning a ready detector or a validation error.
Result<std::unique_ptr<SimulatedDetector>> MakeSimulatedDetector(
    DetectorProfile profile);

}  // namespace vqe

#endif  // VQE_MODELS_SIMULATED_DETECTOR_H_
