#include "models/simulated_detector.h"

#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"
#include "sim/object_classes.h"

namespace vqe {

namespace {

uint64_t NameHash(const std::string& name) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t FrameKey(const VideoFrame& frame) {
  return HashCombine(static_cast<uint64_t>(frame.scene_id),
                     static_cast<uint64_t>(frame.frame_index));
}

// Spawns one false-positive detection at a random location. Out-of-domain
// detectors (low q) hallucinate *overconfidently* — the classic domain-
// shift failure — which is what makes fusing a wrong-context model into an
// ensemble actively harmful rather than merely wasteful.
Detection MakeFalsePositive(const ImageGeometry& geom, double q, Rng& rng) {
  const auto& classes = DrivingClasses();
  const auto& cls = classes[rng.UniformInt(classes.size())];
  Detection d;
  d.label = cls.id;
  const double w =
      Clamp(rng.Gaussian(cls.width_mean, cls.width_stddev),
            cls.width_mean * 0.3, cls.width_mean * 2.0);
  const double h = w * cls.aspect_mean;
  const double cx = rng.Uniform(0.0, geom.width);
  const double cy = rng.Uniform(geom.height * 0.3, geom.height);
  d.box = BBox::FromCenter(cx, cy, w, h).ClippedTo(geom.width, geom.height);
  const double conf_mean = 0.30 + 0.30 * (1.0 - q);
  d.confidence = Clamp(rng.Gaussian(conf_mean, 0.10), 0.05, 0.90);
  d.box_variance = 25.0;
  return d;
}

}  // namespace

SimulatedDetector::SimulatedDetector(DetectorProfile profile)
    : profile_(std::move(profile)),
      spec_(&GetStructureSpec(profile_.structure)),
      uid_(NameHash(profile_.name)) {}

uint64_t SimulatedDetector::param_count() const { return spec_->param_count; }

const std::string& SimulatedDetector::structure_name() const {
  return spec_->name;
}

double SimulatedDetector::QualityIn(SceneContext ctx) const {
  return Clamp(
      profile_.skill * ContextAffinity(profile_.trained_on, ctx), 0.0, 1.0);
}

DetectionList SimulatedDetector::Detect(const VideoFrame& frame,
                                        uint64_t trial_seed) const {
  Rng rng = MakeStreamRng(trial_seed, uid_, FrameKey(frame), 0xDE7EC7);
  const double q = QualityIn(frame.context);

  DetectionList out;
  out.reserve(frame.objects.size() + 2);

  const ImageGeometry geom{frame.image_width, frame.image_height};

  for (const auto& obj : frame.objects) {
    // Miss probability grows with intrinsic hardness; hardness is shared
    // across detectors (stored on the object), correlating their misses.
    const double p_detect =
        Clamp(spec_->recall_base * q *
                  (1.0 - 0.72 * std::pow(obj.hardness, 1.5)),
              0.0, 0.99);
    if (!rng.Bernoulli(p_detect)) continue;

    Detection d;
    // Localization noise: worse out-of-domain and for larger boxes.
    const double sigma = spec_->loc_sigma_px * (2.0 - q) *
                         (0.5 + obj.box.width() / 400.0);
    BBox noisy;
    const double cx = obj.box.cx() + rng.Gaussian(0.0, sigma);
    const double cy = obj.box.cy() + rng.Gaussian(0.0, sigma);
    const double wscale =
        Clamp(rng.Gaussian(1.0, 0.04 * (2.0 - q)), 0.7, 1.3);
    const double hscale =
        Clamp(rng.Gaussian(1.0, 0.04 * (2.0 - q)), 0.7, 1.3);
    noisy = BBox::FromCenter(cx, cy, obj.box.width() * wscale,
                             obj.box.height() * hscale);
    d.box = noisy.ClippedTo(geom.width, geom.height);
    if (d.box.IsEmpty()) continue;

    const double conf_mean =
        0.35 + 0.60 * spec_->conf_quality * q - 0.30 * obj.hardness;
    d.confidence = Clamp(rng.Gaussian(conf_mean, 0.12), 0.05, 0.995);

    d.label = obj.label;
    const double confusion = Clamp(spec_->confusion_rate * (2.0 - q), 0.0, 0.5);
    if (rng.Bernoulli(confusion)) {
      const auto& classes = DrivingClasses();
      ClassId other = classes[rng.UniformInt(classes.size())].id;
      if (other == obj.label) {
        other = classes[(static_cast<size_t>(other) + 1) % classes.size()].id;
      }
      d.label = other;
    }
    d.box_variance = sigma * sigma;
    out.push_back(d);
  }

  // Hallucinations: the false-positive rate grows sharply out of domain.
  const double fp_lambda =
      spec_->fp_rate * (1.0 + 4.0 * (1.0 - q) * (1.0 - q));
  const int num_fp = rng.Poisson(fp_lambda);
  for (int i = 0; i < num_fp; ++i) {
    out.push_back(MakeFalsePositive(geom, q, rng));
  }
  return out;
}

double SimulatedDetector::InferenceCostMs(const VideoFrame& frame,
                                          uint64_t trial_seed) const {
  Rng rng = MakeStreamRng(trial_seed, uid_, FrameKey(frame), 0xC057);
  const double cost =
      spec_->cost_ms_mean * (1.0 + spec_->cost_jitter * rng.NextGaussian());
  return std::max(cost, 0.2 * spec_->cost_ms_mean);
}

Result<std::unique_ptr<SimulatedDetector>> MakeSimulatedDetector(
    DetectorProfile profile) {
  VQE_RETURN_NOT_OK(profile.Validate());
  return std::make_unique<SimulatedDetector>(std::move(profile));
}

}  // namespace vqe
