#include "models/detector_profile.h"

namespace vqe {

const StructureSpec& GetStructureSpec(DetectorStructure s) {
  // Parameter counts and mean inference times from Table 3 of the paper.
  static const StructureSpec kYoloV7{
      DetectorStructure::kYoloV7, "YOLOv7", 37'200'000, 49.5, 0.03,
      /*recall_base=*/0.93, /*loc_sigma_px=*/3.0, /*fp_rate=*/0.25,
      /*conf_quality=*/0.92, /*confusion_rate=*/0.012};
  static const StructureSpec kTiny{
      DetectorStructure::kYoloV7Tiny, "YOLOv7-tiny", 6'030'000, 10.0, 0.03,
      /*recall_base=*/0.84, /*loc_sigma_px=*/5.0, /*fp_rate=*/0.45,
      /*conf_quality=*/0.82, /*confusion_rate=*/0.025};
  static const StructureSpec kMicro{
      DetectorStructure::kYoloV7Micro, "YOLOv7-micro", 2'680'000, 7.7, 0.03,
      /*recall_base=*/0.73, /*loc_sigma_px=*/8.0, /*fp_rate=*/0.80,
      /*conf_quality=*/0.70, /*confusion_rate=*/0.05};
  static const StructureSpec kFrcnn{
      DetectorStructure::kFasterRcnn, "Faster R-CNN", 42'100'000, 212.0, 0.03,
      /*recall_base=*/0.68, /*loc_sigma_px=*/6.0, /*fp_rate=*/0.90,
      /*conf_quality=*/0.65, /*confusion_rate=*/0.04};
  switch (s) {
    case DetectorStructure::kYoloV7:
      return kYoloV7;
    case DetectorStructure::kYoloV7Tiny:
      return kTiny;
    case DetectorStructure::kYoloV7Micro:
      return kMicro;
    case DetectorStructure::kFasterRcnn:
      return kFrcnn;
  }
  return kTiny;
}

double ContextAffinity(SceneContext trained, SceneContext actual) {
  // Rows: trained-on; columns: applied-to (clear, night, rainy, snow).
  // Off-diagonal entries reflect how much domain shift degrades detection —
  // day-trained models lose most at night, night-trained models transfer
  // moderately to day, rain/snow transfer reasonably to each other.
  static const double kAffinity[kNumSceneContexts][kNumSceneContexts] = {
      /* clear */ {1.00, 0.25, 0.55, 0.45},
      /* night */ {0.45, 1.00, 0.35, 0.30},
      /* rainy */ {0.60, 0.30, 1.00, 0.55},
      /* snow  */ {0.55, 0.28, 0.55, 1.00},
  };
  return kAffinity[static_cast<int>(trained)][static_cast<int>(actual)];
}

Status DetectorProfile::Validate() const {
  if (name.empty()) return Status::InvalidArgument("detector name empty");
  if (skill <= 0.0 || skill > 1.5) {
    return Status::InvalidArgument("detector skill must be in (0, 1.5]");
  }
  return Status::OK();
}

}  // namespace vqe
