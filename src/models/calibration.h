// Profile calibration: fit a simulated detector's `skill` so that its
// measured in-domain AP matches a target value. This is the bridge between
// the simulation substrate and real deployments — measure a real model's AP
// and mean latency, calibrate a profile to those numbers, and the whole MES
// pipeline (scoring, selection, budgets) operates on faithful statistics.

#ifndef VQE_MODELS_CALIBRATION_H_
#define VQE_MODELS_CALIBRATION_H_

#include "common/status.h"
#include "models/simulated_detector.h"
#include "sim/scene_generator.h"

namespace vqe {

/// Calibration settings.
struct CalibrationOptions {
  /// Frames used to estimate a candidate profile's AP per evaluation.
  int eval_frames = 250;
  /// Bisection iterations over skill (each halves the bracket [0.05, 1.5]).
  int iterations = 12;
  /// Scene generator for the evaluation frames.
  SceneGeneratorOptions scene;
  /// RNG seed for the evaluation.
  uint64_t seed = 17;

  Status Validate() const {
    if (eval_frames < 10) {
      return Status::InvalidArgument("eval_frames must be >= 10");
    }
    if (iterations < 1) {
      return Status::InvalidArgument("iterations must be >= 1");
    }
    return scene.Validate();
  }
};

/// Measures a profile's mean per-frame AP in its training context.
double MeasureInDomainAp(const DetectorProfile& profile,
                         const CalibrationOptions& options = {});

/// Result of a calibration run.
struct CalibrationResult {
  DetectorProfile profile;
  /// AP of the returned profile, measured with the calibration settings.
  double achieved_ap = 0.0;
};

/// Fits `profile.skill` by bisection so the simulated in-domain AP matches
/// `target_ap`. Returns OutOfRange when the target is unreachable within
/// the skill bracket (AP is monotone in skill; targets beyond the
/// architecture's ceiling cannot be met).
Result<CalibrationResult> CalibrateSkillToAp(
    DetectorProfile profile, double target_ap,
    const CalibrationOptions& options = {});

}  // namespace vqe

#endif  // VQE_MODELS_CALIBRATION_H_
