// Pre-built detector pools M mirroring §5.2 of the paper: for each dataset
// a "proper set of relevant pre-trained object detectors" with mixed
// architectures and training contexts.

#ifndef VQE_MODELS_MODEL_ZOO_H_
#define VQE_MODELS_MODEL_ZOO_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "models/reference_detector.h"
#include "models/simulated_detector.h"

namespace vqe {

/// An owning detector pool plus its reference model.
struct DetectorPool {
  std::vector<std::unique_ptr<ObjectDetector>> detectors;
  std::unique_ptr<ReferenceDetector> reference;

  size_t size() const { return detectors.size(); }
};

/// The nuScenes pool used by most experiments (m = 5):
///   YOLOv7@clear, YOLOv7-tiny@clear, YOLOv7-tiny@night,
///   YOLOv7-tiny@rainy, YOLOv7-micro@clear.
/// `m` may be 2, 3 or 5, reproducing the Figure 11 pool reductions; m=3 is
/// exactly the Yolo-{R,C,N} trio of Figure 2.
Result<DetectorPool> BuildNuscenesPool(int m = 5);

/// The BDD pool (m = 5): YOLOv7@clear, YOLOv7-tiny@rainy,
/// YOLOv7-tiny@snow, YOLOv7-micro@clear, Faster R-CNN@clear.
Result<DetectorPool> BuildBddPool(int m = 5);

/// Builds a pool from explicit profiles (reference uses defaults).
Result<DetectorPool> BuildPool(const std::vector<DetectorProfile>& profiles);

/// Selects the pool appropriate for a catalog dataset name ("nusc*", drift
/// compositions -> nuScenes pool; "bdd*" -> BDD pool).
Result<DetectorPool> BuildPoolForDataset(const std::string& dataset_name,
                                         int m = 5);

/// Parses a detector name of the form "structure@context" — e.g.
/// "yolov7-tiny@night" — into a profile. Structures: yolov7, yolov7-tiny,
/// yolov7-micro, faster-rcnn; contexts: clear, night, rainy, snow.
Result<DetectorProfile> ParseDetectorName(const std::string& name);

}  // namespace vqe

#endif  // VQE_MODELS_MODEL_ZOO_H_
