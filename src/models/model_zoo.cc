#include "models/model_zoo.h"

#include "common/strings.h"
#include "sim/scene_context.h"

namespace vqe {

Result<DetectorProfile> ParseDetectorName(const std::string& name) {
  const auto parts = Split(name, '@');
  if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
    return Status::InvalidArgument(
        "detector name must have the form structure@context, got '" + name +
        "'");
  }
  DetectorProfile profile;
  profile.name = ToLower(name);
  const std::string structure = ToLower(parts[0]);
  if (structure == "yolov7") {
    profile.structure = DetectorStructure::kYoloV7;
  } else if (structure == "yolov7-tiny") {
    profile.structure = DetectorStructure::kYoloV7Tiny;
  } else if (structure == "yolov7-micro") {
    profile.structure = DetectorStructure::kYoloV7Micro;
  } else if (structure == "faster-rcnn") {
    profile.structure = DetectorStructure::kFasterRcnn;
  } else {
    return Status::NotFound("unknown detector structure: " + parts[0]);
  }
  VQE_ASSIGN_OR_RETURN(profile.trained_on, SceneContextFromString(parts[1]));
  return profile;
}

Result<DetectorPool> BuildPool(const std::vector<DetectorProfile>& profiles) {
  if (profiles.empty()) {
    return Status::InvalidArgument("detector pool must not be empty");
  }
  if (profiles.size() > 20) {
    return Status::InvalidArgument(
        "detector pool too large (ensemble space is 2^m - 1; m <= 20)");
  }
  DetectorPool pool;
  for (const auto& p : profiles) {
    VQE_ASSIGN_OR_RETURN(auto det, MakeSimulatedDetector(p));
    pool.detectors.push_back(std::move(det));
  }
  pool.reference = std::make_unique<ReferenceDetector>();
  return pool;
}

Result<DetectorPool> BuildNuscenesPool(int m) {
  using S = DetectorStructure;
  using C = SceneContext;
  // Ordered so that prefixes reproduce the Figure 11 reductions:
  //   m=2 -> {tiny@clear, tiny@night}
  //   m=3 -> + tiny@rainy (the Yolo-R&C&N trio of Figure 2)
  //   m=5 -> + yolov7@clear, micro@clear
  const std::vector<DetectorProfile> all = {
      {"yolov7-tiny@clear", S::kYoloV7Tiny, C::kClear, 1.0},
      {"yolov7-tiny@night", S::kYoloV7Tiny, C::kNight, 1.0},
      {"yolov7-tiny@rainy", S::kYoloV7Tiny, C::kRainy, 1.0},
      {"yolov7@clear", S::kYoloV7, C::kClear, 1.0},
      {"yolov7-micro@clear", S::kYoloV7Micro, C::kClear, 1.0},
  };
  if (m != 2 && m != 3 && m != 5) {
    return Status::InvalidArgument(
        "BuildNuscenesPool supports m in {2, 3, 5}");
  }
  return BuildPool({all.begin(), all.begin() + m});
}

Result<DetectorPool> BuildBddPool(int m) {
  using S = DetectorStructure;
  using C = SceneContext;
  const std::vector<DetectorProfile> all = {
      {"yolov7-tiny@rainy", S::kYoloV7Tiny, C::kRainy, 1.0},
      {"yolov7-tiny@snow", S::kYoloV7Tiny, C::kSnow, 1.0},
      {"yolov7@clear", S::kYoloV7, C::kClear, 1.0},
      {"yolov7-micro@clear", S::kYoloV7Micro, C::kClear, 1.0},
      {"faster-rcnn@clear", S::kFasterRcnn, C::kClear, 1.0},
  };
  if (m < 2 || m > static_cast<int>(all.size())) {
    return Status::InvalidArgument("BuildBddPool supports m in [2, 5]");
  }
  return BuildPool({all.begin(), all.begin() + m});
}

Result<DetectorPool> BuildPoolForDataset(const std::string& dataset_name,
                                         int m) {
  if (StartsWith(dataset_name, "bdd")) return BuildBddPool(m);
  // nuScenes datasets and the drift compositions built from them.
  return BuildNuscenesPool(m);
}

}  // namespace vqe
