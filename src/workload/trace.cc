#include "workload/trace.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace vqe {
namespace {

constexpr uint64_t kMaxRounds = 100000;
constexpr int kMaxModels = 16;
constexpr int kMaxFrames = 100000;
constexpr size_t kMaxStorms = 64;
constexpr size_t kMaxClasses = kNumPriorityClasses;

Status ParseError(int line, const std::string& what) {
  return Status::ParseError("workload trace line " + std::to_string(line) +
                            ": " + what);
}

/// Whitespace tokenizer; '#' starts a comment.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

/// Full-token strtod with finiteness check.
Status ParseFinite(const std::string& tok, int line, const char* field,
                   double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    return ParseError(line, std::string(field) + " is not a finite number: '" +
                                tok + "'");
  }
  *out = v;
  return Status::OK();
}

/// Full-token non-negative integer parse.
Status ParseU64(const std::string& tok, int line, const char* field,
                uint64_t* out) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') {
    return ParseError(line, std::string(field) +
                                " is not a non-negative integer: '" + tok +
                                "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
    return ParseError(line, std::string(field) +
                                " is not a non-negative integer: '" + tok +
                                "'");
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

Status ExpectTokens(const std::vector<std::string>& tokens, size_t n,
                    int line) {
  if (tokens.size() != n) {
    return ParseError(line, "'" + tokens[0] + "' expects " +
                                std::to_string(n - 1) + " fields, got " +
                                std::to_string(tokens.size() - 1));
  }
  return Status::OK();
}

Result<PriorityClass> ParsePriority(const std::string& tok, int line) {
  if (tok == "interactive") return PriorityClass::kInteractive;
  if (tok == "standard") return PriorityClass::kStandard;
  if (tok == "batch") return PriorityClass::kBatch;
  return ParseError(line, "unknown priority class '" + tok + "'");
}

Result<SkipMode> ParseSkipModeTok(const std::string& tok, int line) {
  if (tok == "off") return SkipMode::kOff;
  if (tok == "fixed") return SkipMode::kFixedInterval;
  if (tok == "gated") return SkipMode::kDifficultyGated;
  if (tok == "bandit") return SkipMode::kBandit;
  return ParseError(line, "unknown skip mode '" + tok + "'");
}

Result<FaultKind> ParseFaultKindTok(const std::string& tok, int line) {
  if (tok == "error") return FaultKind::kError;
  if (tok == "spike") return FaultKind::kLatencySpike;
  if (tok == "empty") return FaultKind::kEmptyOutput;
  if (tok == "garbage") return FaultKind::kGarbageOutput;
  return ParseError(line, "unknown fault kind '" + tok + "'");
}

const char* SkipModeTok(SkipMode m) {
  switch (m) {
    case SkipMode::kOff:
      return "off";
    case SkipMode::kFixedInterval:
      return "fixed";
    case SkipMode::kDifficultyGated:
      return "gated";
    case SkipMode::kBandit:
      return "bandit";
  }
  return "off";
}

const char* FaultKindTok(FaultKind k) {
  switch (k) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kLatencySpike:
      return "spike";
    case FaultKind::kEmptyOutput:
      return "empty";
    case FaultKind::kGarbageOutput:
      return "garbage";
    case FaultKind::kNone:
      break;
  }
  return "error";
}

const char* PriorityTok(PriorityClass p) {
  switch (p) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kStandard:
      return "standard";
    case PriorityClass::kBatch:
      return "batch";
  }
  return "standard";
}

}  // namespace

Status WorkloadTrace::Validate() const {
  if (rounds < 1 || rounds > kMaxRounds) {
    return Status::InvalidArgument("workload rounds out of range");
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("workload dataset is empty");
  }
  if (!std::isfinite(scene_scale) || scene_scale <= 0.0 ||
      scene_scale > 16.0) {
    return Status::InvalidArgument("workload scale out of range");
  }
  if (models < 1 || models > kMaxModels) {
    return Status::InvalidArgument("workload models out of range");
  }
  if (!std::isfinite(arrival_rate) || arrival_rate < 0.0 ||
      arrival_rate > 64.0) {
    return Status::InvalidArgument("workload arrival rate out of range");
  }
  if (!std::isfinite(pareto_alpha) || pareto_alpha < 0.1 ||
      pareto_alpha > 64.0) {
    return Status::InvalidArgument("workload pareto alpha out of range");
  }
  if (!std::isfinite(pareto_cap) || pareto_cap < 1.0 || pareto_cap > 1e3) {
    return Status::InvalidArgument("workload pareto cap out of range");
  }
  if (!std::isfinite(diurnal_period) || diurnal_period <= 0.0) {
    return Status::InvalidArgument("workload diurnal period must be > 0");
  }
  if (!std::isfinite(diurnal_amplitude) || diurnal_amplitude < 0.0 ||
      diurnal_amplitude >= 1.0) {
    return Status::InvalidArgument(
        "workload diurnal amplitude must be in [0, 1)");
  }
  for (double l : {drift_lambda0, drift_lambda1}) {
    if (!std::isfinite(l) || l < 0.0 || l > 1.0) {
      return Status::InvalidArgument(
          "workload drift lambda must be in [0, 1]");
    }
  }
  if (mix.empty()) {
    return Status::InvalidArgument("workload declares no classes");
  }
  double share_sum = 0.0;
  for (const WorkloadClassMix& m : mix) {
    if (!std::isfinite(m.share) || m.share <= 0.0) {
      return Status::InvalidArgument("workload class share must be > 0");
    }
    share_sum += m.share;
    if (m.frames < 1 || m.frames > kMaxFrames) {
      return Status::InvalidArgument("workload class frames out of range");
    }
    if (m.skip_budget < 0 || m.skip_budget > 1024) {
      return Status::InvalidArgument(
          "workload class skip budget out of range");
    }
    if (m.skip_mode != SkipMode::kOff && m.skip_budget == 0) {
      return Status::InvalidArgument(
          "workload class skip mode needs a budget > 0");
    }
  }
  if (!std::isfinite(share_sum) || share_sum <= 0.0) {
    return Status::InvalidArgument("workload class shares sum to zero");
  }
  if (storms.size() > kMaxStorms) {
    return Status::InvalidArgument("workload storm count over cap");
  }
  const EnsembleId full =
      models >= 32 ? ~EnsembleId{0} : ((EnsembleId{1} << models) - 1);
  for (const WorkloadStorm& s : storms) {
    if (s.begin_round >= s.end_round || s.end_round > kMaxRounds) {
      return Status::InvalidArgument("workload storm window inverted");
    }
    if (s.models == 0 || (s.models & ~full) != 0) {
      return Status::InvalidArgument(
          "workload storm model mask outside the pool");
    }
    if (s.kind == FaultKind::kNone) {
      return Status::InvalidArgument("workload storm kind is none");
    }
    if (!std::isfinite(s.rate) || s.rate < 0.0 || s.rate > 1e3) {
      return Status::InvalidArgument("workload storm rate out of range");
    }
  }
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    if (!std::isfinite(slo[c].p99_ms) || slo[c].p99_ms < 0.0) {
      return Status::InvalidArgument("workload SLO p99 out of range");
    }
    if (!std::isfinite(slo[c].shed_budget) || slo[c].shed_budget < 0.0 ||
        slo[c].shed_budget > 1.0) {
      return Status::InvalidArgument("workload SLO shed budget out of range");
    }
  }
  return Status::OK();
}

Result<WorkloadTrace> ParseWorkloadTrace(const std::string& text) {
  WorkloadTrace trace;
  trace.mix.clear();

  bool saw_magic = false;
  bool saw_end = false;
  bool seen[8] = {};  // seed rounds dataset scale models arrivals diurnal drift
  enum { kSeed, kRounds, kDataset, kScale, kModels, kArrivals, kDiurnal,
         kDrift };
  bool seen_class[kNumPriorityClasses] = {};
  bool seen_slo[kNumPriorityClasses] = {};

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> t = Tokenize(line);
    if (t.empty()) continue;
    if (saw_end) {
      return ParseError(lineno, "content after 'end'");
    }
    if (!saw_magic) {
      if (t.size() != 2 || t[0] != "VQEWORK" || t[1] != "1") {
        return ParseError(lineno, "expected magic 'VQEWORK 1'");
      }
      saw_magic = true;
      continue;
    }
    const std::string& key = t[0];
    auto singleton = [&](int idx) -> Status {
      if (seen[idx]) {
        return ParseError(lineno, "duplicate '" + key + "'");
      }
      seen[idx] = true;
      return Status::OK();
    };
    if (key == "end") {
      VQE_RETURN_NOT_OK(ExpectTokens(t, 1, lineno));
      saw_end = true;
    } else if (key == "seed") {
      VQE_RETURN_NOT_OK(singleton(kSeed));
      VQE_RETURN_NOT_OK(ExpectTokens(t, 2, lineno));
      VQE_RETURN_NOT_OK(ParseU64(t[1], lineno, "seed", &trace.seed));
    } else if (key == "rounds") {
      VQE_RETURN_NOT_OK(singleton(kRounds));
      VQE_RETURN_NOT_OK(ExpectTokens(t, 2, lineno));
      VQE_RETURN_NOT_OK(ParseU64(t[1], lineno, "rounds", &trace.rounds));
    } else if (key == "dataset") {
      VQE_RETURN_NOT_OK(singleton(kDataset));
      VQE_RETURN_NOT_OK(ExpectTokens(t, 2, lineno));
      trace.dataset = t[1];
    } else if (key == "scale") {
      VQE_RETURN_NOT_OK(singleton(kScale));
      VQE_RETURN_NOT_OK(ExpectTokens(t, 2, lineno));
      VQE_RETURN_NOT_OK(ParseFinite(t[1], lineno, "scale",
                                    &trace.scene_scale));
    } else if (key == "models") {
      VQE_RETURN_NOT_OK(singleton(kModels));
      VQE_RETURN_NOT_OK(ExpectTokens(t, 2, lineno));
      uint64_t m = 0;
      VQE_RETURN_NOT_OK(ParseU64(t[1], lineno, "models", &m));
      if (m > kMaxModels) return ParseError(lineno, "models over cap");
      trace.models = static_cast<int>(m);
    } else if (key == "arrivals") {
      VQE_RETURN_NOT_OK(singleton(kArrivals));
      VQE_RETURN_NOT_OK(ExpectTokens(t, 7, lineno));
      if (t[1] != "rate" || t[3] != "alpha" || t[5] != "cap") {
        return ParseError(lineno,
                          "expected 'arrivals rate R alpha A cap C'");
      }
      VQE_RETURN_NOT_OK(ParseFinite(t[2], lineno, "arrival rate",
                                    &trace.arrival_rate));
      VQE_RETURN_NOT_OK(ParseFinite(t[4], lineno, "pareto alpha",
                                    &trace.pareto_alpha));
      VQE_RETURN_NOT_OK(ParseFinite(t[6], lineno, "pareto cap",
                                    &trace.pareto_cap));
    } else if (key == "diurnal") {
      VQE_RETURN_NOT_OK(singleton(kDiurnal));
      VQE_RETURN_NOT_OK(ExpectTokens(t, 5, lineno));
      if (t[1] != "period" || t[3] != "amplitude") {
        return ParseError(lineno,
                          "expected 'diurnal period P amplitude A'");
      }
      VQE_RETURN_NOT_OK(ParseFinite(t[2], lineno, "diurnal period",
                                    &trace.diurnal_period));
      VQE_RETURN_NOT_OK(ParseFinite(t[4], lineno, "diurnal amplitude",
                                    &trace.diurnal_amplitude));
    } else if (key == "drift") {
      VQE_RETURN_NOT_OK(singleton(kDrift));
      VQE_RETURN_NOT_OK(ExpectTokens(t, 5, lineno));
      if (t[1] != "lambda0" || t[3] != "lambda1") {
        return ParseError(lineno,
                          "expected 'drift lambda0 A lambda1 B'");
      }
      VQE_RETURN_NOT_OK(ParseFinite(t[2], lineno, "drift lambda0",
                                    &trace.drift_lambda0));
      VQE_RETURN_NOT_OK(ParseFinite(t[4], lineno, "drift lambda1",
                                    &trace.drift_lambda1));
    } else if (key == "class") {
      VQE_RETURN_NOT_OK(ExpectTokens(t, 9, lineno));
      if (t[2] != "share" || t[4] != "frames" || t[6] != "skip") {
        return ParseError(
            lineno, "expected 'class P share S frames F skip MODE BUDGET'");
      }
      WorkloadClassMix m;
      VQE_ASSIGN_OR_RETURN(m.priority, ParsePriority(t[1], lineno));
      const int ci = PriorityClassIndex(m.priority);
      if (seen_class[ci]) {
        return ParseError(lineno, "duplicate class '" + t[1] + "'");
      }
      seen_class[ci] = true;
      VQE_RETURN_NOT_OK(ParseFinite(t[3], lineno, "class share", &m.share));
      uint64_t frames = 0;
      VQE_RETURN_NOT_OK(ParseU64(t[5], lineno, "class frames", &frames));
      if (frames > kMaxFrames) return ParseError(lineno, "frames over cap");
      m.frames = static_cast<int>(frames);
      VQE_ASSIGN_OR_RETURN(m.skip_mode, ParseSkipModeTok(t[7], lineno));
      uint64_t budget = 0;
      VQE_RETURN_NOT_OK(ParseU64(t[8], lineno, "skip budget", &budget));
      if (budget > 1024) return ParseError(lineno, "skip budget over cap");
      m.skip_budget = static_cast<int>(budget);
      if (trace.mix.size() >= kMaxClasses) {
        return ParseError(lineno, "too many class lines");
      }
      trace.mix.push_back(m);
    } else if (key == "slo") {
      VQE_RETURN_NOT_OK(ExpectTokens(t, 6, lineno));
      if (t[2] != "p99" || t[4] != "shed") {
        return ParseError(lineno, "expected 'slo P p99 MS shed FRAC'");
      }
      VQE_ASSIGN_OR_RETURN(const PriorityClass p, ParsePriority(t[1], lineno));
      const int ci = PriorityClassIndex(p);
      if (seen_slo[ci]) {
        return ParseError(lineno, "duplicate slo '" + t[1] + "'");
      }
      seen_slo[ci] = true;
      VQE_RETURN_NOT_OK(ParseFinite(t[3], lineno, "slo p99",
                                    &trace.slo[ci].p99_ms));
      VQE_RETURN_NOT_OK(ParseFinite(t[5], lineno, "slo shed",
                                    &trace.slo[ci].shed_budget));
      trace.has_slo[ci] = true;
    } else if (key == "storm") {
      VQE_RETURN_NOT_OK(ExpectTokens(t, 10, lineno));
      if (t[1] != "rounds" || t[4] != "models" || t[6] != "kind" ||
          t[8] != "rate") {
        return ParseError(
            lineno, "expected 'storm rounds B E models MASK kind K rate R'");
      }
      WorkloadStorm s;
      VQE_RETURN_NOT_OK(ParseU64(t[2], lineno, "storm begin",
                                 &s.begin_round));
      VQE_RETURN_NOT_OK(ParseU64(t[3], lineno, "storm end", &s.end_round));
      uint64_t mask = 0;
      VQE_RETURN_NOT_OK(ParseU64(t[5], lineno, "storm mask", &mask));
      if (mask > ~EnsembleId{0}) {
        return ParseError(lineno, "storm mask over cap");
      }
      s.models = static_cast<EnsembleId>(mask);
      VQE_ASSIGN_OR_RETURN(s.kind, ParseFaultKindTok(t[7], lineno));
      VQE_RETURN_NOT_OK(ParseFinite(t[9], lineno, "storm rate", &s.rate));
      if (trace.storms.size() >= kMaxStorms) {
        return ParseError(lineno, "too many storm lines");
      }
      trace.storms.push_back(s);
    } else {
      return ParseError(lineno, "unknown key '" + key + "'");
    }
  }
  if (!saw_magic) {
    return Status::ParseError("workload trace: empty input (no magic)");
  }
  if (!saw_end) {
    return Status::ParseError(
        "workload trace: missing trailing 'end' (truncated input)");
  }
  VQE_RETURN_NOT_OK(trace.Validate());
  return trace;
}

std::string FormatWorkloadTrace(const WorkloadTrace& trace) {
  std::ostringstream out;
  out.precision(17);
  out << "VQEWORK 1\n";
  out << "seed " << trace.seed << "\n";
  out << "rounds " << trace.rounds << "\n";
  out << "dataset " << trace.dataset << "\n";
  out << "scale " << trace.scene_scale << "\n";
  out << "models " << trace.models << "\n";
  out << "arrivals rate " << trace.arrival_rate << " alpha "
      << trace.pareto_alpha << " cap " << trace.pareto_cap << "\n";
  out << "diurnal period " << trace.diurnal_period << " amplitude "
      << trace.diurnal_amplitude << "\n";
  out << "drift lambda0 " << trace.drift_lambda0 << " lambda1 "
      << trace.drift_lambda1 << "\n";
  for (const WorkloadClassMix& m : trace.mix) {
    out << "class " << PriorityTok(m.priority) << " share " << m.share
        << " frames " << m.frames << " skip " << SkipModeTok(m.skip_mode)
        << " " << m.skip_budget << "\n";
  }
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    if (!trace.has_slo[c]) continue;
    out << "slo " << PriorityTok(static_cast<PriorityClass>(c)) << " p99 "
        << trace.slo[c].p99_ms << " shed " << trace.slo[c].shed_budget
        << "\n";
  }
  for (const WorkloadStorm& s : trace.storms) {
    out << "storm rounds " << s.begin_round << " " << s.end_round
        << " models " << s.models << " kind " << FaultKindTok(s.kind)
        << " rate " << s.rate << "\n";
  }
  out << "end\n";
  return out.str();
}

}  // namespace vqe
