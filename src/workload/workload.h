// Deterministic, replayable workload engine: expands a parsed
// WorkloadTrace into a concrete per-session plan (arrivals, seeds, drift
// schedules, fault bursts) and drives the serving layer with it.
//
// Everything stochastic is drawn from ONE xoshiro stream seeded by
// trace.seed, in a fixed order (round by round, session by session, storm
// by storm), so the same trace always yields the same plan — and the same
// plan drives StreamScheduler and ShardedServer to the same deterministic
// schedules. Wall-clock never enters plan generation.
//
// Traffic model. Arrivals per round are heavy-tailed: a bounded-Pareto
// burst multiplier (shape alpha, capped) on top of the base rate, shaped
// by a diurnal sine curve; the fractional remainder arrives
// probabilistically. Each arrival draws its priority class from the mix
// shares; the class fixes session length and temporal-skip configuration.
//
// Concept drift. A session's video is rewritten at *scene-block*
// granularity: each contiguous scene_id run flips to a different context
// with probability lambda, interpolated across the session between the
// global drift intensity at arrival and at expected completion. Block
// granularity matters — per-frame flips would force a detect on almost
// every frame and neuter the skip ladder rung the overload controller
// relies on.
//
// Fault storms. A storm afflicts a model mask over a round window. Round
// windows are mapped into each session's own frame clock via
// kNominalFramesPerRound (a documented approximation: the scheduler's
// actual frames-per-round depends on quanta). rate >= 1 becomes one
// persistent FaultBurst over the intersection of the window with the
// session's lifetime; rate < 1 becomes per-frame one-shot bursts included
// with that probability — drawn at plan time, so the storm replays
// exactly.

#ifndef VQE_WORKLOAD_WORKLOAD_H_
#define VQE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "fleet/sharded_server.h"
#include "models/model_zoo.h"
#include "serve/scheduler.h"
#include "serve/stream_session.h"
#include "sim/video.h"
#include "workload/trace.h"

namespace vqe {

/// Nominal frames one session advances per scheduler round — the
/// round-clock/frame-clock exchange rate used to map storm windows onto
/// session lifetimes.
inline constexpr int kNominalFramesPerRound = 8;

/// Hard caps on plan expansion (hostile-trace containment).
inline constexpr int kMaxArrivalsPerRound = 16;
inline constexpr size_t kMaxPlannedSessions = 256;

/// One planned session: everything needed to build it, bit-reproducibly.
struct SessionPlan {
  /// Scheduler round at which the session is submitted (0 = before the
  /// first round).
  uint64_t arrival_round = 0;
  std::string name;
  PriorityClass priority = PriorityClass::kStandard;
  /// Session length in frames (the sampled video is truncated to this).
  int frames = 0;
  SkipMode skip_mode = SkipMode::kOff;
  int skip_budget = 0;
  uint64_t trial_seed = 0;
  uint64_t strategy_seed = 0;
  /// Seeds video sampling AND the drift rewrite stream.
  uint64_t video_seed = 0;
  /// Drift intensity at the session's first and last frame.
  double lambda0 = 0.0;
  double lambda1 = 0.0;
  /// Per-model fault scripts (size = trace.models) in the session's own
  /// frame coordinates; all-empty when no storm touches the session.
  std::vector<FaultScript> scripts;

  /// True when any script injects faults.
  bool stormy() const;
};

struct WorkloadPlan {
  WorkloadTrace trace;
  /// Sorted by (arrival_round, plan order).
  std::vector<SessionPlan> sessions;
  /// Arrivals the per-round / total caps dropped (reported, not silent).
  uint64_t capped_arrivals = 0;
};

/// Expands a validated trace into a session plan. Pure function of the
/// trace (same trace -> byte-identical plan).
WorkloadPlan BuildWorkloadPlan(const WorkloadTrace& trace);

/// Builds the session's ground-truth video: samples the trace dataset
/// with plan.video_seed, truncates to plan.frames, then applies the
/// scene-block drift rewrite.
Result<Video> BuildSessionVideo(const WorkloadPlan& plan,
                                const SessionPlan& session);

/// The scene-block drift rewrite, in place: each contiguous scene_id run
/// flips to a different context with probability lambda, interpolated
/// from `lambda0` at the first frame to `lambda1` at the last. The
/// rewrite stream is seeded by `video_seed` alone, so the same
/// (video, seed, lambdas) tuple always rewrites identically — this is
/// the function BuildSessionVideo applies, exported so experiment
/// harnesses can impose the same gradual drift on their trial videos.
void ApplyDriftRewrite(Video& video, uint64_t video_seed, double lambda0,
                       double lambda1);

/// Builds a ready-to-submit StreamSession for one plan entry over the
/// shared base pool (which must outlive the session; fault decoration is
/// owned by the session). Strategy is fixed per class — interactive MES,
/// standard SW-MES, batch D-MES — so replays agree.
Result<std::unique_ptr<StreamSession>> BuildWorkloadSession(
    const WorkloadPlan& plan, const SessionPlan& session,
    const DetectorPool& base_pool);

/// Solo baseline of one plan entry (RunStrategy over the same video,
/// pool decoration, strategy and engine options) — the bit-identity
/// reference for served runs with the overload controller disabled.
Result<RunResult> RunWorkloadSessionSolo(const WorkloadPlan& plan,
                                         const SessionPlan& session,
                                         const DetectorPool& base_pool);

/// ServeOptions derived from the trace's `slo` lines: overload control
/// enabled with the trace targets layered onto `base` (returned unchanged
/// when enable is false).
ServeOptions MakeServeOptions(const WorkloadTrace& trace, ServeOptions base,
                              bool enable_overload);

struct WorkloadRunReport {
  ServeReport serve;
  uint64_t planned = 0;
  uint64_t submitted = 0;
  /// Plan entries shed at submission (kResourceExhausted — expected under
  /// overload, not an error).
  uint64_t shed = 0;
};

/// Drives one StreamScheduler through the plan: submits each session at
/// its arrival round, runs DRR rounds until everything drains, and
/// returns the report. `serve` should come from MakeServeOptions (or any
/// valid ServeOptions).
Result<WorkloadRunReport> RunWorkloadOnScheduler(const WorkloadPlan& plan,
                                                 const DetectorPool& base_pool,
                                                 const ServeOptions& serve);

/// Drives a ShardedServer with the plan. The fleet API takes all streams
/// up front, so arrival timing collapses (documented deviation: this
/// driver exercises fleet-wide degradation propagation, not traffic
/// shaping). Chaos rides along verbatim.
Result<FleetReport> RunWorkloadOnFleet(const WorkloadPlan& plan,
                                       const DetectorPool& base_pool,
                                       FleetOptions options,
                                       ChaosScript chaos = {});

}  // namespace vqe

#endif  // VQE_WORKLOAD_WORKLOAD_H_
