// Workload trace: the small text format that scripts a serving run —
// traffic intensity, priority mix, concept drift, fault storms and SLO
// targets — so overload experiments are replayable from a dozen lines
// instead of a wall of C++.
//
// Format (line-based, '#' comments, tokens split on whitespace):
//
//   VQEWORK 1
//   seed 42
//   rounds 96
//   dataset nusc-night
//   scale 0.15
//   models 5
//   arrivals rate 0.8 alpha 1.6 cap 6
//   diurnal period 24 amplitude 0.5
//   drift lambda0 0.02 lambda1 0.25
//   class interactive share 0.5 frames 48 skip bandit 3
//   class standard share 0.3 frames 64 skip off 0
//   class batch share 0.2 frames 96 skip fixed 2
//   slo interactive p99 1.5 shed 0.0
//   slo batch p99 0 shed 1.0
//   storm rounds 20 40 models 3 kind error rate 1.0
//   storm rounds 55 70 models 1 kind spike rate 0.4
//   end
//
// `VQEWORK 1` must be the first non-comment line and `end` the last —
// a missing trailer means the trace was truncated in transit and the
// parser rejects it rather than silently running a partial workload.
// Singleton keys (seed, rounds, dataset, scale, models, arrivals,
// diurnal, drift) reject duplicates; `class`/`slo` reject a repeated
// priority; `storm` repeats freely up to a cap. Every numeric field is
// range- and finiteness-checked — the parser is the trust boundary for
// operator-supplied traces, so hostile input (forged counts, NaN rates,
// inverted windows) dies with kParseError, never a crash or a bogus run.

#ifndef VQE_WORKLOAD_TRACE_H_
#define VQE_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ensemble_id.h"
#include "runtime/fault_injection.h"
#include "serve/overload.h"
#include "serve/stream_session.h"
#include "temporal/skip_policy.h"

namespace vqe {

/// One priority class's slice of the traffic mix.
struct WorkloadClassMix {
  PriorityClass priority = PriorityClass::kStandard;
  /// Relative share of arrivals (normalized over the declared classes).
  double share = 1.0;
  /// Session length in frames (the sampled video is truncated to this).
  int frames = 64;
  SkipMode skip_mode = SkipMode::kOff;
  int skip_budget = 0;
};

/// A scripted fault storm over a round window, afflicting a model subset.
struct WorkloadStorm {
  /// [begin_round, end_round) on the scheduler round clock.
  uint64_t begin_round = 0;
  uint64_t end_round = 0;
  /// Bitmask of afflicted pool models (bit i = model i).
  EnsembleId models = 0;
  FaultKind kind = FaultKind::kError;
  /// rate >= 1: a persistent outage over the whole window. rate < 1: each
  /// in-window frame is independently afflicted with this probability
  /// (drawn once at plan time, so the storm is replayable).
  double rate = 1.0;
};

struct WorkloadTrace {
  uint64_t seed = 1;
  /// Plan horizon: arrivals are generated for rounds [0, rounds).
  uint64_t rounds = 64;
  std::string dataset = "nusc";
  /// Scene sampling scale (SampleOptions::scene_scale).
  double scene_scale = 0.25;
  /// Detector pool size m.
  int models = 3;
  /// Base arrival intensity, expected sessions per round.
  double arrival_rate = 0.5;
  /// Bounded-Pareto burstiness shape (smaller = heavier tail).
  double pareto_alpha = 1.5;
  /// Cap on the Pareto burst multiplier.
  double pareto_cap = 8.0;
  /// Diurnal load curve: 1 + amplitude * sin(2*pi*round/period).
  double diurnal_period = 32.0;
  double diurnal_amplitude = 0.0;
  /// Concept-drift intensity at round 0 and at the horizon; each session
  /// interpolates between its arrival-time and completion-time values.
  double drift_lambda0 = 0.0;
  double drift_lambda1 = 0.0;
  /// Declared classes (at least one; duplicates rejected at parse).
  std::vector<WorkloadClassMix> mix;
  std::vector<WorkloadStorm> storms;
  /// SLO targets from `slo` lines; classes without one keep the default
  /// (no latency SLO, unbounded shed budget).
  SloTarget slo[kNumPriorityClasses];
  bool has_slo[kNumPriorityClasses] = {false, false, false};

  Status Validate() const;
};

/// Parses the text format above. Any structural or range violation —
/// bad magic, truncation (missing `end`), duplicate singleton, wrong
/// token count, non-finite or out-of-range number, unknown key — is
/// kParseError with a line number.
Result<WorkloadTrace> ParseWorkloadTrace(const std::string& text);

/// Serializes a trace back into the text format (round-trips through
/// ParseWorkloadTrace).
std::string FormatWorkloadTrace(const WorkloadTrace& trace);

}  // namespace vqe

#endif  // VQE_WORKLOAD_TRACE_H_
