#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.h"
#include "core/baselines.h"
#include "core/ducb.h"
#include "core/experiment.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "sim/dataset.h"

namespace vqe {
namespace {

/// Bounded-Pareto burst multiplier in [1, cap].
double ParetoBurst(Rng& rng, double alpha, double cap) {
  const double u = rng.NextDouble();  // [0, 1)
  const double burst = std::pow(1.0 - u, -1.0 / alpha);
  return std::min(burst, cap);
}

double Lerp(double a, double b, double t) { return a + (b - a) * t; }

std::unique_ptr<SelectionStrategy> StrategyForClass(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive: {
      MesOptions o;
      o.gamma = 2;
      return std::make_unique<MesStrategy>(o);
    }
    case PriorityClass::kStandard: {
      SwMesOptions o;
      o.gamma = 2;
      o.window = 64;
      return std::make_unique<SwMesStrategy>(o);
    }
    case PriorityClass::kBatch: {
      DucbOptions o;
      o.gamma = 2;
      return std::make_unique<DucbMesStrategy>(o);
    }
  }
  return std::make_unique<MesStrategy>(MesOptions{});
}

EngineOptions EngineForSession(const SessionPlan& session) {
  EngineOptions e;
  e.strategy_seed = session.strategy_seed;
  e.compute_regret = false;
  e.skip.mode = session.skip_mode;
  e.skip.skip_budget = session.skip_budget;
  return e;
}

}  // namespace

bool SessionPlan::stormy() const {
  for (const FaultScript& s : scripts) {
    if (s.enabled()) return true;
  }
  return false;
}

WorkloadPlan BuildWorkloadPlan(const WorkloadTrace& trace) {
  WorkloadPlan plan;
  plan.trace = trace;
  Rng rng(trace.seed);

  double share_sum = 0.0;
  for (const WorkloadClassMix& m : trace.mix) share_sum += m.share;

  const double horizon =
      static_cast<double>(std::max<uint64_t>(1, trace.rounds));
  uint64_t session_index = 0;
  for (uint64_t r = 0; r < trace.rounds; ++r) {
    const double diurnal =
        1.0 + trace.diurnal_amplitude *
                  std::sin(2.0 * 3.14159265358979323846 *
                           static_cast<double>(r) / trace.diurnal_period);
    const double burst =
        ParetoBurst(rng, trace.pareto_alpha, trace.pareto_cap);
    const double expected = trace.arrival_rate * diurnal * burst;
    int n = static_cast<int>(std::floor(expected));
    if (rng.Bernoulli(expected - std::floor(expected))) ++n;
    if (n > kMaxArrivalsPerRound) {
      plan.capped_arrivals += static_cast<uint64_t>(n - kMaxArrivalsPerRound);
      n = kMaxArrivalsPerRound;
    }
    for (int k = 0; k < n; ++k) {
      if (plan.sessions.size() >= kMaxPlannedSessions) {
        ++plan.capped_arrivals;
        continue;
      }
      // Class draw by mix share.
      const double u = rng.NextDouble() * share_sum;
      double acc = 0.0;
      const WorkloadClassMix* mix = &trace.mix.back();
      for (const WorkloadClassMix& m : trace.mix) {
        acc += m.share;
        if (u < acc) {
          mix = &m;
          break;
        }
      }
      SessionPlan s;
      s.arrival_round = r;
      s.priority = mix->priority;
      s.frames = mix->frames;
      s.skip_mode = mix->skip_mode;
      s.skip_budget = mix->skip_budget;
      s.trial_seed = rng.Next();
      s.strategy_seed = rng.Next();
      s.video_seed = rng.Next();
      s.name = "w" + std::to_string(session_index++) + "-" +
               PriorityClassToString(mix->priority) + "-r" +
               std::to_string(r);
      // Drift intensity across the session's expected lifetime.
      const uint64_t duration_rounds = static_cast<uint64_t>(
          (s.frames + kNominalFramesPerRound - 1) / kNominalFramesPerRound);
      s.lambda0 = Lerp(trace.drift_lambda0, trace.drift_lambda1,
                       static_cast<double>(r) / horizon);
      s.lambda1 = Lerp(
          trace.drift_lambda0, trace.drift_lambda1,
          std::min(1.0, static_cast<double>(r + duration_rounds) / horizon));
      // Storm windows, mapped onto this session's frame clock.
      s.scripts.assign(static_cast<size_t>(trace.models), FaultScript{});
      for (const WorkloadStorm& storm : trace.storms) {
        const uint64_t session_end = r + duration_rounds;
        if (storm.end_round <= r || storm.begin_round >= session_end) {
          continue;
        }
        const int64_t begin_f =
            storm.begin_round > r
                ? static_cast<int64_t>(storm.begin_round - r) *
                      kNominalFramesPerRound
                : 0;
        const int64_t end_f = std::min<int64_t>(
            s.frames, static_cast<int64_t>(storm.end_round - r) *
                          kNominalFramesPerRound);
        if (end_f <= begin_f) continue;
        std::vector<FaultBurst> bursts;
        if (storm.rate >= 1.0) {
          FaultBurst b;
          b.begin_frame = begin_f;
          b.end_frame = end_f;
          b.kind = storm.kind;
          bursts.push_back(b);
        } else if (storm.rate > 0.0) {
          // One draw per in-window frame, shared by every afflicted model
          // (a storm front hits its models together).
          for (int64_t f = begin_f; f < end_f; ++f) {
            if (!rng.Bernoulli(storm.rate)) continue;
            FaultBurst b;
            b.begin_frame = f;
            b.end_frame = f + 1;
            b.kind = storm.kind;
            bursts.push_back(b);
          }
        }
        if (bursts.empty()) continue;
        for (int m = 0; m < trace.models; ++m) {
          if ((storm.models & (EnsembleId{1} << m)) == 0) continue;
          FaultScript& script = s.scripts[static_cast<size_t>(m)];
          script.bursts.insert(script.bursts.end(), bursts.begin(),
                               bursts.end());
        }
      }
      plan.sessions.push_back(std::move(s));
    }
  }
  return plan;
}

Result<Video> BuildSessionVideo(const WorkloadPlan& plan,
                                const SessionPlan& session) {
  VQE_ASSIGN_OR_RETURN(const DatasetSpec* spec,
                       DatasetCatalog::Default().Find(plan.trace.dataset));
  SampleOptions sample;
  sample.scene_scale = plan.trace.scene_scale;
  sample.seed = session.video_seed;
  VQE_ASSIGN_OR_RETURN(Video video, SampleVideo(*spec, sample));
  if (video.frames.size() > static_cast<size_t>(session.frames)) {
    video.frames.resize(static_cast<size_t>(session.frames));
  }
  if (video.empty()) {
    return Status::Internal("workload session video sampled empty");
  }
  ApplyDriftRewrite(video, session.video_seed, session.lambda0,
                    session.lambda1);
  return video;
}

void ApplyDriftRewrite(Video& video, uint64_t video_seed, double lambda0,
                       double lambda1) {
  // One flip decision per contiguous scene_id run, at the drift intensity
  // interpolated to the block's first frame. Block granularity keeps
  // rewritten context changes as rare, episode-scale events rather than
  // per-frame churn.
  Rng drift(HashCombine(video_seed, 0xD21F7u));
  const double denom =
      static_cast<double>(std::max<size_t>(1, video.frames.size() - 1));
  size_t i = 0;
  while (i < video.frames.size()) {
    size_t j = i;
    while (j < video.frames.size() &&
           video.frames[j].scene_id == video.frames[i].scene_id) {
      ++j;
    }
    const double lambda =
        Lerp(lambda0, lambda1, static_cast<double>(i) / denom);
    if (drift.Bernoulli(lambda)) {
      const int from = static_cast<int>(video.frames[i].context);
      const int to =
          (from + 1 +
           static_cast<int>(drift.UniformInt(
               static_cast<uint64_t>(kNumSceneContexts - 1)))) %
          kNumSceneContexts;
      for (size_t k = i; k < j; ++k) {
        video.frames[k].context = static_cast<SceneContext>(to);
      }
    }
    i = j;
  }
}

Result<std::unique_ptr<StreamSession>> BuildWorkloadSession(
    const WorkloadPlan& plan, const SessionPlan& session,
    const DetectorPool& base_pool) {
  if (base_pool.detectors.size() != session.scripts.size()) {
    return Status::InvalidArgument(
        "workload pool size does not match the trace's models count");
  }
  VQE_ASSIGN_OR_RETURN(Video video, BuildSessionVideo(plan, session));

  std::vector<std::unique_ptr<DetectorPool>> owned;
  const DetectorPool* pool = &base_pool;
  if (session.stormy()) {
    VQE_ASSIGN_OR_RETURN(DetectorPool faulty,
                         ApplyFaultScripts(base_pool, session.scripts));
    owned.push_back(std::make_unique<DetectorPool>(std::move(faulty)));
    pool = owned.back().get();
  }
  VQE_ASSIGN_OR_RETURN(
      auto source, LazyFrameEvaluator::Create(std::move(video), *pool,
                                              session.trial_seed, {}));
  StreamSessionConfig cfg;
  cfg.name = session.name;
  cfg.priority = session.priority;
  cfg.engine = EngineForSession(session);
  for (const auto& det : pool->detectors) {
    cfg.model_names.push_back(det->name());
  }
  return StreamSession::Create(std::move(cfg), std::move(source),
                               StrategyForClass(session.priority),
                               std::move(owned));
}

Result<RunResult> RunWorkloadSessionSolo(const WorkloadPlan& plan,
                                         const SessionPlan& session,
                                         const DetectorPool& base_pool) {
  if (base_pool.detectors.size() != session.scripts.size()) {
    return Status::InvalidArgument(
        "workload pool size does not match the trace's models count");
  }
  VQE_ASSIGN_OR_RETURN(Video video, BuildSessionVideo(plan, session));
  std::vector<std::unique_ptr<DetectorPool>> owned;
  const DetectorPool* pool = &base_pool;
  if (session.stormy()) {
    VQE_ASSIGN_OR_RETURN(DetectorPool faulty,
                         ApplyFaultScripts(base_pool, session.scripts));
    owned.push_back(std::make_unique<DetectorPool>(std::move(faulty)));
    pool = owned.back().get();
  }
  VQE_ASSIGN_OR_RETURN(
      auto source, LazyFrameEvaluator::Create(std::move(video), *pool,
                                              session.trial_seed, {}));
  auto strategy = StrategyForClass(session.priority);
  return RunStrategy(*source, strategy.get(), EngineForSession(session));
}

ServeOptions MakeServeOptions(const WorkloadTrace& trace, ServeOptions base,
                              bool enable_overload) {
  if (!enable_overload) return base;
  base.overload.enabled = true;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    if (trace.has_slo[c]) base.overload.slo[c] = trace.slo[c];
  }
  return base;
}

Result<WorkloadRunReport> RunWorkloadOnScheduler(
    const WorkloadPlan& plan, const DetectorPool& base_pool,
    const ServeOptions& serve) {
  VQE_RETURN_NOT_OK(serve.Validate());
  StreamScheduler scheduler(serve);
  VQE_RETURN_NOT_OK(scheduler.BeginServing());

  WorkloadRunReport report;
  report.planned = plan.sessions.size();
  size_t next = 0;
  uint64_t wround = 0;
  while (true) {
    while (next < plan.sessions.size() &&
           plan.sessions[next].arrival_round <= wround) {
      VQE_ASSIGN_OR_RETURN(
          auto session,
          BuildWorkloadSession(plan, plan.sessions[next], base_pool));
      Result<uint64_t> id = scheduler.Submit(std::move(session));
      if (id.ok()) {
        ++report.submitted;
      } else if (id.status().code() == StatusCode::kResourceExhausted) {
        // Load shedding is the system working as designed under overload;
        // the shed count is the result, not a failure.
        ++report.shed;
      } else {
        return id.status();
      }
      ++next;
    }
    VQE_ASSIGN_OR_RETURN(const bool more, scheduler.RunRound());
    ++wround;
    if (!more && next >= plan.sessions.size()) break;
  }
  VQE_ASSIGN_OR_RETURN(report.serve, scheduler.FinishServing());
  return report;
}

Result<FleetReport> RunWorkloadOnFleet(const WorkloadPlan& plan,
                                       const DetectorPool& base_pool,
                                       FleetOptions options,
                                       ChaosScript chaos) {
  std::vector<FleetStreamSpec> specs;
  specs.reserve(plan.sessions.size());
  for (const SessionPlan& session : plan.sessions) {
    specs.push_back(FleetStreamSpec{
        session.name, [&plan, &session, &base_pool] {
          return BuildWorkloadSession(plan, session, base_pool);
        }});
  }
  ShardedServer server(options);
  return server.Run(std::move(specs), std::move(chaos));
}

}  // namespace vqe
