#include "sim/scene_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "sim/object_classes.h"

namespace vqe {

Status SceneGeneratorOptions::Validate() const {
  if (geometry.width <= 0 || geometry.height <= 0) {
    return Status::InvalidArgument("image geometry must be positive");
  }
  if (initial_objects_mean < 0) {
    return Status::InvalidArgument("initial_objects_mean must be >= 0");
  }
  if (spawn_probability < 0 || spawn_probability > 1) {
    return Status::InvalidArgument("spawn_probability must be in [0, 1]");
  }
  if (difficult_fraction < 0 || difficult_fraction > 1) {
    return Status::InvalidArgument("difficult_fraction must be in [0, 1]");
  }
  if (motion_scale < 0) {
    return Status::InvalidArgument("motion_scale must be >= 0");
  }
  return Status::OK();
}

namespace {

// A live object being simulated through a scene.
struct LiveObject {
  int64_t object_id;
  ClassId label;
  double cx, cy;        // center, pixels
  double w, h;          // size, pixels
  double vx, vy;        // velocity, pixels/frame
  double hardness;      // intrinsic difficulty in [0, 1]
  bool difficult;
};

const ObjectClassSpec& SampleClass(SceneContext ctx, Rng& rng) {
  // Class mix depends on the scene context (fewer pedestrians/cyclists at
  // night and in bad weather).
  const auto& classes = DrivingClasses();
  double total = 0.0;
  for (const auto& c : classes) {
    total += c.frequency * ContextFrequencyScale(static_cast<int>(ctx), c.id);
  }
  double r = rng.Uniform(0.0, total);
  for (const auto& c : classes) {
    r -= c.frequency * ContextFrequencyScale(static_cast<int>(ctx), c.id);
    if (r <= 0.0) return c;
  }
  return classes.back();
}

LiveObject SpawnObject(const SceneGeneratorOptions& opt, SceneContext ctx,
                       Rng& rng, int64_t object_id, bool at_edge) {
  const ObjectClassSpec& cls = SampleClass(ctx, rng);
  LiveObject o;
  o.object_id = object_id;
  o.label = cls.id;
  o.w = Clamp(rng.Gaussian(cls.width_mean, cls.width_stddev),
              cls.width_mean * 0.25, cls.width_mean * 2.5);
  const double aspect = Clamp(rng.Gaussian(cls.aspect_mean, cls.aspect_stddev),
                              cls.aspect_mean * 0.5, cls.aspect_mean * 2.0);
  o.h = o.w * aspect;

  const double W = opt.geometry.width;
  const double H = opt.geometry.height;
  if (at_edge) {
    // Enter from the left or right edge, moving inward.
    const bool from_left = rng.Bernoulli(0.5);
    o.cx = from_left ? -o.w / 2 + 1 : W + o.w / 2 - 1;
    o.cy = rng.Uniform(H * 0.35, H * 0.95);
    const double speed =
        std::max(0.5, rng.Gaussian(cls.speed_mean, cls.speed_mean * 0.3));
    o.vx = (from_left ? 1.0 : -1.0) * speed * opt.motion_scale;
    o.vy = rng.Gaussian(0.0, 0.5) * opt.motion_scale;
  } else {
    o.cx = rng.Uniform(0.0, W);
    o.cy = rng.Uniform(H * 0.35, H * 0.95);
    const double speed = rng.Gaussian(0.0, cls.speed_mean * 0.5);
    const double angle = rng.Uniform(0.0, 2.0 * 3.14159265358979);
    o.vx = speed * std::cos(angle) * opt.motion_scale;
    o.vy = 0.2 * speed * std::sin(angle) * opt.motion_scale;
  }

  o.hardness = rng.NextDouble();
  // Small objects are intrinsically harder: mix size into hardness.
  const double size_term =
      Clamp(1.0 - (o.w * o.h) / (200.0 * 140.0), 0.0, 1.0);
  o.hardness = Clamp(0.7 * o.hardness + 0.3 * size_term, 0.0, 1.0);
  o.difficult = o.hardness > (1.0 - opt.difficult_fraction);
  return o;
}

bool OutOfScene(const LiveObject& o, const ImageGeometry& g) {
  return o.cx + o.w / 2 < -5.0 || o.cx - o.w / 2 > g.width + 5.0 ||
         o.cy + o.h / 2 < -5.0 || o.cy - o.h / 2 > g.height + 5.0;
}

}  // namespace

Video GenerateScene(const SceneGeneratorOptions& options, SceneContext ctx,
                    int32_t scene_id, int num_frames, uint64_t seed) {
  Video video;
  video.geometry = options.geometry;
  if (num_frames <= 0) return video;

  Rng rng = MakeStreamRng(seed, 0x5CE4E, static_cast<uint64_t>(scene_id),
                          static_cast<uint64_t>(ctx));

  std::vector<LiveObject> live;
  int64_t next_id =
      (static_cast<int64_t>(scene_id) << 20);  // ids unique across scenes
  const int initial = rng.Poisson(options.initial_objects_mean);
  live.reserve(static_cast<size_t>(initial) + 8);
  for (int i = 0; i < initial; ++i) {
    live.push_back(
        SpawnObject(options, ctx, rng, next_id++, /*at_edge=*/false));
  }

  video.frames.reserve(static_cast<size_t>(num_frames));
  for (int t = 0; t < num_frames; ++t) {
    if (t > 0) {
      // Advance the world one frame.
      for (auto& o : live) {
        o.cx += o.vx;
        o.cy += o.vy;
      }
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](const LiveObject& o) {
                                  return OutOfScene(o, options.geometry);
                                }),
                 live.end());
      if (rng.Bernoulli(options.spawn_probability)) {
        live.push_back(
            SpawnObject(options, ctx, rng, next_id++, /*at_edge=*/true));
      }
    }

    VideoFrame frame;
    frame.frame_index = t;
    frame.scene_id = scene_id;
    frame.context = ctx;
    frame.image_width = options.geometry.width;
    frame.image_height = options.geometry.height;
    frame.objects.reserve(live.size());
    for (const auto& o : live) {
      GroundTruthBox g;
      g.box = BBox::FromCenter(o.cx, o.cy, o.w, o.h)
                  .ClippedTo(options.geometry.width, options.geometry.height);
      if (g.box.IsEmpty()) continue;
      g.label = o.label;
      g.object_id = o.object_id;
      g.hardness = o.hardness;
      g.difficult = o.difficult;
      frame.objects.push_back(g);
    }
    video.frames.push_back(std::move(frame));
  }
  return video;
}

}  // namespace vqe
