#include "sim/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace vqe {

int DatasetSpec::TotalScenes() const {
  int n = 0;
  for (const auto& g : groups) n += g.num_scenes;
  return n;
}

int DatasetSpec::TotalFrames() const {
  int n = 0;
  for (const auto& g : groups) n += g.TotalFrames();
  return n;
}

double DatasetSpec::DurationMinutes() const {
  if (frames_per_second <= 0) return 0.0;
  return static_cast<double>(TotalFrames()) / frames_per_second / 60.0;
}

Status DatasetSpec::Validate() const {
  if (name.empty()) return Status::InvalidArgument("dataset name empty");
  if (groups.empty()) {
    return Status::InvalidArgument("dataset has no scene groups");
  }
  for (const auto& g : groups) {
    if (g.num_scenes <= 0 || g.frames_per_scene <= 0) {
      return Status::InvalidArgument("group '" + g.name +
                                     "' has non-positive size");
    }
  }
  if (shuffle_segments < 0) {
    return Status::InvalidArgument("shuffle_segments must be >= 0");
  }
  return generator.Validate();
}

namespace {

// Fisher–Yates shuffle with our deterministic Rng.
template <typename T>
void Shuffle(std::vector<T>* v, Rng& rng) {
  for (size_t i = v->size(); i > 1; --i) {
    const size_t j = rng.UniformInt(i);
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

// Generates all scenes of one group at the requested scale.
std::vector<Video> GenerateGroupScenes(const DatasetSpec& spec,
                                       const SceneGroupSpec& group,
                                       size_t group_index,
                                       const SampleOptions& opts,
                                       int32_t* next_scene_id) {
  const int scaled = std::max(
      1, static_cast<int>(std::lround(group.num_scenes * opts.scene_scale)));
  std::vector<Video> scenes;
  scenes.reserve(static_cast<size_t>(scaled));
  for (int s = 0; s < scaled; ++s) {
    const uint64_t scene_seed =
        HashCombine(HashCombine(opts.seed, group_index), s);
    scenes.push_back(GenerateScene(spec.generator, group.context,
                                   (*next_scene_id)++, group.frames_per_scene,
                                   scene_seed));
  }
  return scenes;
}

// Appends src's frames to dst, re-indexing frames consecutively.
void AppendFrames(Video* dst, const Video& src) {
  for (VideoFrame f : src.frames) {
    f.frame_index = static_cast<int64_t>(dst->frames.size());
    dst->frames.push_back(std::move(f));
  }
}

// Splits a video into `parts` contiguous segments (sizes differ by <= 1).
std::vector<Video> SplitSegments(const Video& video, int parts) {
  std::vector<Video> out;
  const size_t n = video.frames.size();
  if (n == 0 || parts <= 0) return out;
  const size_t per = (n + static_cast<size_t>(parts) - 1) /
                     static_cast<size_t>(parts);
  for (size_t start = 0; start < n; start += per) {
    Video seg;
    seg.geometry = video.geometry;
    const size_t end = std::min(n, start + per);
    seg.frames.assign(video.frames.begin() + static_cast<ptrdiff_t>(start),
                      video.frames.begin() + static_cast<ptrdiff_t>(end));
    out.push_back(std::move(seg));
  }
  return out;
}

}  // namespace

Result<Video> SampleVideo(const DatasetSpec& spec, const SampleOptions& opts) {
  VQE_RETURN_NOT_OK(spec.Validate());
  if (opts.scene_scale <= 0.0 || opts.scene_scale > 1.0) {
    return Status::InvalidArgument("scene_scale must be in (0, 1]");
  }

  Rng order_rng = MakeStreamRng(opts.seed, 0xDA7A5E7);
  int32_t next_scene_id = 0;

  Video out;
  out.geometry = spec.generator.geometry;

  if (spec.shuffle_segments > 0) {
    // Concept-drift composition: per group, build a contiguous video, split
    // it into segments, then shuffle all segments together (paper §5.1).
    std::vector<Video> segments;
    for (size_t gi = 0; gi < spec.groups.size(); ++gi) {
      Video group_video;
      group_video.geometry = spec.generator.geometry;
      auto scenes =
          GenerateGroupScenes(spec, spec.groups[gi], gi, opts, &next_scene_id);
      for (const auto& sc : scenes) AppendFrames(&group_video, sc);
      auto segs = SplitSegments(group_video, spec.shuffle_segments);
      for (auto& s : segs) segments.push_back(std::move(s));
    }
    Shuffle(&segments, order_rng);
    for (const auto& seg : segments) AppendFrames(&out, seg);
    return out;
  }

  // Plain composition: shuffle whole scenes.
  std::vector<Video> scenes;
  for (size_t gi = 0; gi < spec.groups.size(); ++gi) {
    auto group_scenes =
        GenerateGroupScenes(spec, spec.groups[gi], gi, opts, &next_scene_id);
    for (auto& sc : group_scenes) scenes.push_back(std::move(sc));
  }
  Shuffle(&scenes, order_rng);
  for (const auto& sc : scenes) AppendFrames(&out, sc);
  return out;
}

namespace {

DatasetSpec MakeNusc() {
  // Table 1: 850 scenes, 42,500 samples (50 keyframes/scene at 2 Hz).
  // The named groups (clear/night/rainy) sum to 537 scenes; the remaining
  // 313 are other daytime conditions, modeled as clear.
  DatasetSpec d;
  d.name = "nusc";
  d.frames_per_second = 2.0;
  d.groups = {
      {"clear", SceneContext::kClear, 274, 50},
      {"night", SceneContext::kNight, 79, 50},
      {"rainy", SceneContext::kRainy, 184, 50},
      {"other", SceneContext::kClear, 313, 50},
  };
  return d;
}

DatasetSpec MakeNuscGroup(const std::string& suffix, SceneContext ctx,
                          int scenes) {
  DatasetSpec d;
  d.name = "nusc-" + suffix;
  d.frames_per_second = 2.0;
  d.groups = {{suffix, ctx, scenes, 50}};
  return d;
}

DatasetSpec MakeNuscLowMotion() {
  // Temporal-coherence profile: the nuScenes clear-weather group with
  // near-static objects (parked traffic, queues at lights) and a slow
  // object process. The workload the skip gate is built for — consecutive
  // frames are nearly interchangeable, so tracker propagation stays
  // faithful over long coast streaks.
  DatasetSpec d;
  d.name = "nusc-lowmotion";
  d.frames_per_second = 2.0;
  d.generator.motion_scale = 0.1;
  d.generator.spawn_probability = 0.01;
  d.groups = {{"lowmotion", SceneContext::kClear, 274, 50}};
  return d;
}

DatasetSpec MakeBdd() {
  // Table 2: 300 sequences, 30,000 samples (100 frames/sequence).
  DatasetSpec d;
  d.name = "bdd";
  d.frames_per_second = 2.5;
  d.generator.geometry = ImageGeometry{1280.0, 720.0};
  d.groups = {
      {"daytime", SceneContext::kClear, 150, 100},
      {"rainy", SceneContext::kRainy, 75, 100},
      {"snow", SceneContext::kSnow, 75, 100},
  };
  return d;
}

DatasetSpec MakeBddGroup(const std::string& suffix, SceneContext ctx,
                         int sequences, int frames_per_seq) {
  DatasetSpec d;
  d.name = "bdd-" + suffix;
  d.frames_per_second = 2.5;
  d.generator.geometry = ImageGeometry{1280.0, 720.0};
  d.groups = {{suffix, ctx, sequences, frames_per_seq}};
  return d;
}

DatasetSpec MakeDrift(const std::string& name,
                      std::vector<SceneContext> contexts) {
  // Paper §5.1: each specialized dataset is split into 10 segments and the
  // segments are shuffled together. Scenes per context match the nuScenes
  // specialized group sizes.
  DatasetSpec d;
  d.name = name;
  d.frames_per_second = 2.0;
  d.shuffle_segments = 10;
  for (SceneContext ctx : contexts) {
    switch (ctx) {
      case SceneContext::kClear:
        d.groups.push_back({"clear", ctx, 274, 50});
        break;
      case SceneContext::kNight:
        d.groups.push_back({"night", ctx, 79, 50});
        break;
      case SceneContext::kRainy:
        d.groups.push_back({"rainy", ctx, 184, 50});
        break;
      case SceneContext::kSnow:
        d.groups.push_back({"snow", ctx, 132, 42});
        break;
    }
  }
  return d;
}

}  // namespace

DatasetCatalog::DatasetCatalog() {
  specs_ = {
      MakeNusc(),
      MakeNuscGroup("clear", SceneContext::kClear, 274),
      MakeNuscGroup("night", SceneContext::kNight, 79),
      MakeNuscGroup("rainy", SceneContext::kRainy, 184),
      MakeNuscLowMotion(),
      MakeBdd(),
      MakeBddGroup("rainy", SceneContext::kRainy, 120, 42),
      MakeBddGroup("snow", SceneContext::kSnow, 132, 42),
      MakeDrift("c&n", {SceneContext::kClear, SceneContext::kNight}),
      MakeDrift("n&r", {SceneContext::kNight, SceneContext::kRainy}),
      MakeDrift("c&n&r", {SceneContext::kClear, SceneContext::kNight,
                          SceneContext::kRainy}),
  };
}

const DatasetCatalog& DatasetCatalog::Default() {
  static const DatasetCatalog* kCatalog = new DatasetCatalog();
  return *kCatalog;
}

Result<const DatasetSpec*> DatasetCatalog::Find(const std::string& name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return &s;
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace vqe
