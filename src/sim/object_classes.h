// The object-class vocabulary of the simulated driving datasets, with the
// per-class geometry and frequency priors the scene generator draws from.

#ifndef VQE_SIM_OBJECT_CLASSES_H_
#define VQE_SIM_OBJECT_CLASSES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "detection/detection.h"

namespace vqe {

/// Geometry and frequency prior for one object class.
struct ObjectClassSpec {
  ClassId id = 0;
  std::string name;
  /// Relative spawn frequency (unnormalized).
  double frequency = 1.0;
  /// Mean / stddev of bounding-box width in pixels.
  double width_mean = 120.0;
  double width_stddev = 40.0;
  /// height = width * aspect (mean / stddev).
  double aspect_mean = 0.7;
  double aspect_stddev = 0.1;
  /// Mean speed magnitude in pixels per frame.
  double speed_mean = 6.0;
};

/// The driving-domain vocabulary used by both dataset simulators
/// (a condensed version of the nuScenes/BDD label sets).
const std::vector<ObjectClassSpec>& DrivingClasses();

/// Class name for an id in DrivingClasses(); "unknown" otherwise.
const std::string& ClassIdToName(ClassId id);

/// Id for a class name in DrivingClasses(); NotFound otherwise.
Result<ClassId> ClassIdFromName(const std::string& name);

/// Multiplier on a class's spawn frequency in a scene context, modeling
/// real traffic composition: fewer pedestrians/cyclists at night and in
/// bad weather, more static infrastructure (cones/barriers) everywhere.
double ContextFrequencyScale(int context, ClassId id);

}  // namespace vqe

#endif  // VQE_SIM_OBJECT_CLASSES_H_
