// Synthetic scene generation: persistent objects with spawn/despawn and
// linear motion, producing ground-truth frames. This substitutes for the
// nuScenes/BDD camera footage: MES only ever consumes detector outputs, so
// what matters is a realistic ground-truth object process for the simulated
// detectors (src/models) to observe.

#ifndef VQE_SIM_SCENE_GENERATOR_H_
#define VQE_SIM_SCENE_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "sim/video.h"

namespace vqe {

/// Parameters of the ground-truth object process.
struct SceneGeneratorOptions {
  ImageGeometry geometry;
  /// Mean number of objects present in the first frame (Poisson).
  double initial_objects_mean = 4.0;
  /// Per-frame probability that a new object enters the scene.
  double spawn_probability = 0.10;
  /// Fraction of objects marked `difficult` (excluded from AP), drawn from
  /// the top of the hardness distribution.
  double difficult_fraction = 0.03;
  /// Scale on per-class speed priors (0 freezes the scene).
  double motion_scale = 1.0;

  Status Validate() const;
};

/// Generates one scene of `num_frames` frames in context `ctx`.
///
/// Scenes are deterministic in (seed, scene_id): the same pair always
/// produces the same ground truth, independent of generation order. Frame
/// indices are filled with 0..num_frames-1; callers concatenating scenes
/// re-index afterwards.
Video GenerateScene(const SceneGeneratorOptions& options, SceneContext ctx,
                    int32_t scene_id, int num_frames, uint64_t seed);

}  // namespace vqe

#endif  // VQE_SIM_SCENE_GENERATOR_H_
