#include "sim/scene_context.h"

#include "common/strings.h"

namespace vqe {

const char* SceneContextToString(SceneContext ctx) {
  switch (ctx) {
    case SceneContext::kClear:
      return "clear";
    case SceneContext::kNight:
      return "night";
    case SceneContext::kRainy:
      return "rainy";
    case SceneContext::kSnow:
      return "snow";
  }
  return "unknown";
}

Result<SceneContext> SceneContextFromString(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "clear") return SceneContext::kClear;
  if (n == "night") return SceneContext::kNight;
  if (n == "rainy") return SceneContext::kRainy;
  if (n == "snow") return SceneContext::kSnow;
  return Status::NotFound("unknown scene context: " + name);
}

}  // namespace vqe
