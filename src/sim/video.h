// Ground-truth video representation: the sequence of frames V = {v_1, ...}
// of the paper (§2.1), each carrying its ground-truth objects and the scene
// context it was captured in.

#ifndef VQE_SIM_VIDEO_H_
#define VQE_SIM_VIDEO_H_

#include <cstdint>
#include <vector>

#include "detection/detection.h"
#include "sim/scene_context.h"

namespace vqe {

/// Image geometry shared by all frames of a video.
struct ImageGeometry {
  double width = 1600.0;   // nuScenes camera resolution
  double height = 900.0;
};

/// One ground-truth frame.
struct VideoFrame {
  /// Position in the video, 0-based.
  int64_t frame_index = 0;
  /// Scene this frame belongs to (stable across frames of one scene).
  int32_t scene_id = 0;
  SceneContext context = SceneContext::kClear;
  /// Image geometry (duplicated from the video for self-contained frames).
  double image_width = 1600.0;
  double image_height = 900.0;
  GroundTruthList objects;
};

/// A (finite) video: frames plus shared geometry.
struct Video {
  ImageGeometry geometry;
  std::vector<VideoFrame> frames;

  size_t size() const { return frames.size(); }
  bool empty() const { return frames.empty(); }
  const VideoFrame& operator[](size_t i) const { return frames[i]; }
};

/// Number of frames whose context equals `ctx`.
size_t CountFramesInContext(const Video& video, SceneContext ctx);

/// Indices t where frames[t].context != frames[t-1].context — the concept-
/// drift breakpoints ξ of the paper (§2.4).
std::vector<size_t> ContextBreakpoints(const Video& video);

}  // namespace vqe

#endif  // VQE_SIM_VIDEO_H_
