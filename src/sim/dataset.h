// Dataset catalogs mirroring Tables 1–2 of the paper (nuScenes and BDD
// group structure) and the segment-shuffled concept-drift compositions
// V_c&n, V_n&r, V_c&n&r of §5.1. Each experiment trial *re-samples* its
// video from the spec (paper §5.4), which `SampleVideo` implements.

#ifndef VQE_SIM_DATASET_H_
#define VQE_SIM_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/scene_generator.h"
#include "sim/video.h"

namespace vqe {

/// A homogeneous group of scenes (one environmental condition).
struct SceneGroupSpec {
  std::string name;
  SceneContext context = SceneContext::kClear;
  int num_scenes = 0;
  int frames_per_scene = 0;

  int TotalFrames() const { return num_scenes * frames_per_scene; }
};

/// A dataset: named groups of scenes plus the generator settings.
struct DatasetSpec {
  std::string name;
  std::vector<SceneGroupSpec> groups;
  SceneGeneratorOptions generator;
  /// Video sampling rate, used only to report durations (nuScenes keyframes
  /// are 2 Hz).
  double frames_per_second = 2.0;
  /// When > 0, the sampled video is composed by splitting each group's
  /// footage into this many contiguous segments and shuffling all segments
  /// together — the paper's construction of the concept-drift datasets.
  /// When 0, whole scenes are shuffled.
  int shuffle_segments = 0;

  int TotalScenes() const;
  int TotalFrames() const;
  double DurationMinutes() const;
  Status Validate() const;
};

/// Options controlling how a video is sampled from a spec.
struct SampleOptions {
  /// Fraction of each group's scenes to draw (>= one scene per group).
  /// Benchmarks run scaled-down replicas of the paper's datasets; 1.0
  /// reproduces the full Table 1/2 sizes.
  double scene_scale = 1.0;
  uint64_t seed = 1;
};

/// Samples a concrete ground-truth video from a dataset spec.
///
/// Scenes are generated deterministically from (seed, group, scene ordinal)
/// and shuffled; drift specs are segment-shuffled instead (see
/// DatasetSpec::shuffle_segments). Frame indices are rewritten to be
/// consecutive over the whole video.
Result<Video> SampleVideo(const DatasetSpec& spec, const SampleOptions& opts);

/// The built-in catalog of paper datasets, keyed by name:
///   "nusc", "nusc-clear", "nusc-night", "nusc-rainy",
///   "nusc-lowmotion" (near-static scenes for the temporal fast path),
///   "bdd", "bdd-rainy", "bdd-snow",
///   "c&n", "n&r", "c&n&r" (drift compositions).
class DatasetCatalog {
 public:
  /// The catalog with the paper's Table 1/2 sizes.
  static const DatasetCatalog& Default();

  Result<const DatasetSpec*> Find(const std::string& name) const;
  const std::vector<DatasetSpec>& specs() const { return specs_; }

 private:
  DatasetCatalog();
  std::vector<DatasetSpec> specs_;
};

}  // namespace vqe

#endif  // VQE_SIM_DATASET_H_
