// Dataset snapshots: write sampled ground-truth videos (and detection
// outputs) to a versioned line-oriented text format and read them back.
// Lets users pin an exact evaluation video across machines and library
// versions, instead of relying on generator determinism.

#ifndef VQE_SIM_SERIALIZATION_H_
#define VQE_SIM_SERIALIZATION_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "detection/detection.h"
#include "sim/video.h"

namespace vqe {

/// Writes a video to a stream in the VQEVIDEO v1 text format:
///
///   VQEVIDEO 1
///   geometry <width> <height>
///   frame <index> <scene_id> <context> <img_w> <img_h> <num_objects>
///   obj <label> <object_id> <difficult> <hardness> <x1> <y1> <x2> <y2>
///   ...
Status WriteVideo(const Video& video, std::ostream& os);

/// Convenience overload writing to a file path.
Status WriteVideoFile(const Video& video, const std::string& path);

/// Reads a video from a stream; rejects unknown versions and malformed
/// records with ParseError.
Result<Video> ReadVideo(std::istream& is);

/// Convenience overload reading from a file path.
Result<Video> ReadVideoFile(const std::string& path);

/// Writes per-frame detection lists in the VQEDET v1 text format:
///
///   VQEDET 1
///   frame <index> <num_detections>
///   det <label> <confidence> <box_variance> <x1> <y1> <x2> <y2>
Status WriteDetections(const std::vector<DetectionList>& detections,
                       std::ostream& os);

/// Reads per-frame detection lists written by WriteDetections.
Result<std::vector<DetectionList>> ReadDetections(std::istream& is);

}  // namespace vqe

#endif  // VQE_SIM_SERIALIZATION_H_
