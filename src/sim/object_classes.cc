#include "sim/object_classes.h"

#include "common/strings.h"

namespace vqe {

const std::vector<ObjectClassSpec>& DrivingClasses() {
  static const std::vector<ObjectClassSpec>* kClasses = [] {
    auto* v = new std::vector<ObjectClassSpec>{
        // id, name, freq, width_mean, width_sd, aspect_mean, aspect_sd, speed
        {0, "car", 10.0, 150.0, 50.0, 0.62, 0.08, 7.0},
        {1, "truck", 2.5, 220.0, 70.0, 0.75, 0.10, 5.0},
        {2, "bus", 1.0, 280.0, 80.0, 0.80, 0.10, 4.5},
        {3, "pedestrian", 6.0, 45.0, 15.0, 2.40, 0.30, 1.5},
        {4, "bicycle", 1.5, 70.0, 20.0, 1.10, 0.15, 3.0},
        {5, "motorcycle", 1.2, 80.0, 25.0, 1.00, 0.15, 6.0},
        {6, "traffic_cone", 2.0, 25.0, 8.0, 1.60, 0.20, 0.0},
        {7, "barrier", 1.8, 160.0, 50.0, 0.45, 0.08, 0.0},
    };
    return v;
  }();
  return *kClasses;
}

const std::string& ClassIdToName(ClassId id) {
  static const std::string kUnknown = "unknown";
  for (const auto& c : DrivingClasses()) {
    if (c.id == id) return c.name;
  }
  return kUnknown;
}

Result<ClassId> ClassIdFromName(const std::string& name) {
  const std::string n = ToLower(name);
  for (const auto& c : DrivingClasses()) {
    if (c.name == n) return c.id;
  }
  return Status::NotFound("unknown object class: " + name);
}

double ContextFrequencyScale(int context, ClassId id) {
  // Rows: context (clear, night, rainy, snow); columns: class id.
  // Vulnerable road users thin out at night and in bad weather; vehicles
  // and static objects are stable.
  static const double kScale[4][8] = {
      /* clear */ {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
      /* night */ {0.9, 0.8, 0.6, 0.40, 0.25, 0.5, 1.0, 1.0},
      /* rainy */ {1.0, 1.0, 0.9, 0.55, 0.35, 0.5, 1.0, 1.0},
      /* snow  */ {0.9, 0.9, 0.8, 0.45, 0.20, 0.3, 1.0, 1.0},
  };
  if (context < 0 || context >= 4 || id < 0 || id >= 8) return 1.0;
  return kScale[context][id];
}

}  // namespace vqe
