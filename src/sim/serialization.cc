#include "sim/serialization.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

namespace vqe {

namespace {

constexpr char kVideoMagic[] = "VQEVIDEO";
constexpr char kDetMagic[] = "VQEDET";
constexpr int kVersion = 1;

// Hostile-input limits: a declared per-frame record count above this is
// rejected outright (no real frame carries a million boxes), and reserve()
// is capped lower still so a lying header cannot commit memory that the
// actual line count never backs.
constexpr size_t kMaxRecordsPerFrame = size_t{1} << 20;
constexpr size_t kReserveCap = 4096;

Status MalformedLine(const std::string& what, size_t line_no) {
  return Status::ParseError("malformed " + what + " at line " +
                            std::to_string(line_no));
}

/// IsValid() catches NaN (comparisons fail) and misordered corners, but
/// accepts infinities; persisted geometry must be fully finite.
bool FiniteBox(const BBox& b) {
  return std::isfinite(b.x1) && std::isfinite(b.y1) && std::isfinite(b.x2) &&
         std::isfinite(b.y2) && b.IsValid();
}

bool FinitePositive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

Status WriteVideo(const Video& video, std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << kVideoMagic << ' ' << kVersion << '\n';
  os << "geometry " << video.geometry.width << ' ' << video.geometry.height
     << '\n';
  for (const VideoFrame& f : video.frames) {
    os << "frame " << f.frame_index << ' ' << f.scene_id << ' '
       << static_cast<int>(f.context) << ' ' << f.image_width << ' '
       << f.image_height << ' ' << f.objects.size() << '\n';
    for (const GroundTruthBox& o : f.objects) {
      os << "obj " << o.label << ' ' << o.object_id << ' '
         << (o.difficult ? 1 : 0) << ' ' << o.hardness << ' ' << o.box.x1
         << ' ' << o.box.y1 << ' ' << o.box.x2 << ' ' << o.box.y2 << '\n';
    }
  }
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status WriteVideoFile(const Video& video, const std::string& path) {
  std::ofstream os(path);
  if (!os.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  return WriteVideo(video, os);
}

Result<Video> ReadVideo(std::istream& is) {
  std::string line;
  size_t line_no = 0;

  if (!std::getline(is, line)) return Status::ParseError("empty input");
  ++line_no;
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kVideoMagic) {
      return Status::ParseError("not a VQEVIDEO file");
    }
    if (version != kVersion) {
      return Status::ParseError("unsupported VQEVIDEO version " +
                                std::to_string(version));
    }
  }

  Video video;
  if (!std::getline(is, line)) return MalformedLine("geometry", line_no + 1);
  ++line_no;
  {
    std::istringstream geo(line);
    std::string tag;
    geo >> tag >> video.geometry.width >> video.geometry.height;
    if (tag != "geometry" || geo.fail() ||
        !FinitePositive(video.geometry.width) ||
        !FinitePositive(video.geometry.height)) {
      return MalformedLine("geometry", line_no);
    }
  }

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream frame_line(line);
    std::string tag;
    frame_line >> tag;
    if (tag != "frame") return MalformedLine("frame header", line_no);

    VideoFrame frame;
    int context = 0;
    size_t num_objects = 0;
    frame_line >> frame.frame_index >> frame.scene_id >> context >>
        frame.image_width >> frame.image_height >> num_objects;
    if (frame_line.fail() || context < 0 || context >= kNumSceneContexts ||
        frame.frame_index < 0 || !FinitePositive(frame.image_width) ||
        !FinitePositive(frame.image_height) ||
        num_objects > kMaxRecordsPerFrame) {
      return MalformedLine("frame header", line_no);
    }
    frame.context = static_cast<SceneContext>(context);
    frame.objects.reserve(std::min(num_objects, kReserveCap));

    for (size_t i = 0; i < num_objects; ++i) {
      if (!std::getline(is, line)) {
        return MalformedLine("object record", line_no + 1);
      }
      ++line_no;
      std::istringstream obj_line(line);
      std::string obj_tag;
      GroundTruthBox o;
      int difficult = 0;
      obj_line >> obj_tag >> o.label >> o.object_id >> difficult >>
          o.hardness >> o.box.x1 >> o.box.y1 >> o.box.x2 >> o.box.y2;
      if (obj_tag != "obj" || obj_line.fail() || o.label < 0 ||
          !std::isfinite(o.hardness) || o.hardness < 0.0 ||
          !FiniteBox(o.box)) {
        return MalformedLine("object record", line_no);
      }
      o.difficult = difficult != 0;
      frame.objects.push_back(o);
    }
    video.frames.push_back(std::move(frame));
  }
  return video;
}

Result<Video> ReadVideoFile(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) return Status::NotFound("cannot open: " + path);
  return ReadVideo(is);
}

Status WriteDetections(const std::vector<DetectionList>& detections,
                       std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << kDetMagic << ' ' << kVersion << '\n';
  for (size_t f = 0; f < detections.size(); ++f) {
    os << "frame " << f << ' ' << detections[f].size() << '\n';
    for (const Detection& d : detections[f]) {
      os << "det " << d.label << ' ' << d.confidence << ' ' << d.box_variance
         << ' ' << d.box.x1 << ' ' << d.box.y1 << ' ' << d.box.x2 << ' '
         << d.box.y2 << '\n';
    }
  }
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<std::vector<DetectionList>> ReadDetections(std::istream& is) {
  std::string line;
  size_t line_no = 0;
  if (!std::getline(is, line)) return Status::ParseError("empty input");
  ++line_no;
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kDetMagic || version != kVersion) {
      return Status::ParseError("not a VQEDET v1 file");
    }
  }

  std::vector<DetectionList> out;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream frame_line(line);
    std::string tag;
    size_t index = 0;
    size_t count = 0;
    frame_line >> tag >> index >> count;
    if (tag != "frame" || frame_line.fail() || index != out.size() ||
        count > kMaxRecordsPerFrame) {
      return MalformedLine("frame header", line_no);
    }
    DetectionList dets;
    dets.reserve(std::min(count, kReserveCap));
    for (size_t i = 0; i < count; ++i) {
      if (!std::getline(is, line)) {
        return MalformedLine("detection record", line_no + 1);
      }
      ++line_no;
      std::istringstream det_line(line);
      std::string det_tag;
      Detection d;
      det_line >> det_tag >> d.label >> d.confidence >> d.box_variance >>
          d.box.x1 >> d.box.y1 >> d.box.x2 >> d.box.y2;
      if (det_tag != "det" || det_line.fail() || d.label < 0 ||
          !std::isfinite(d.confidence) || d.confidence < 0.0 ||
          !std::isfinite(d.box_variance) || d.box_variance < 0.0 ||
          !FiniteBox(d.box)) {
        return MalformedLine("detection record", line_no);
      }
      dets.push_back(d);
    }
    out.push_back(std::move(dets));
  }
  return out;
}

}  // namespace vqe
