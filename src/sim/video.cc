#include "sim/video.h"

namespace vqe {

size_t CountFramesInContext(const Video& video, SceneContext ctx) {
  size_t n = 0;
  for (const auto& f : video.frames) {
    if (f.context == ctx) ++n;
  }
  return n;
}

std::vector<size_t> ContextBreakpoints(const Video& video) {
  std::vector<size_t> breaks;
  for (size_t t = 1; t < video.frames.size(); ++t) {
    if (video.frames[t].context != video.frames[t - 1].context) {
      breaks.push_back(t);
    }
  }
  return breaks;
}

}  // namespace vqe
