// Scene contexts: the environmental conditions (weather, time of day) the
// paper groups nuScenes/BDD scenes by. A context is what a specialized
// detector is "trained on" and what concept drift switches between.

#ifndef VQE_SIM_SCENE_CONTEXT_H_
#define VQE_SIM_SCENE_CONTEXT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace vqe {

/// Environmental condition of a scene.
enum class SceneContext : uint8_t {
  kClear = 0,
  kNight = 1,
  kRainy = 2,
  kSnow = 3,
};

/// Number of distinct contexts.
inline constexpr int kNumSceneContexts = 4;

/// Short name, e.g. "clear".
const char* SceneContextToString(SceneContext ctx);

/// Parses a case-insensitive context name.
Result<SceneContext> SceneContextFromString(const std::string& name);

}  // namespace vqe

#endif  // VQE_SIM_SCENE_CONTEXT_H_
