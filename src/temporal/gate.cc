#include "temporal/gate.h"

#include <algorithm>
#include <utility>

#include "temporal/difficulty.h"

namespace vqe {

TemporalGate::TemporalGate(const SkipOptions& options)
    : options_(options),
      policy_(options),
      propagator_(options.tracker, options.confidence_decay) {}

Result<std::unique_ptr<TemporalGate>> TemporalGate::Create(
    const SkipOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  if (!options.enabled()) {
    return Status::InvalidArgument(
        "TemporalGate requires an enabled skip mode with skip_budget > 0");
  }
  return std::unique_ptr<TemporalGate>(new TemporalGate(options));
}

void TemporalGate::SetSkipBoost(int boost) {
  if (boost < 0) boost = 0;
  if (boost > kMaxSkipBoost) boost = kMaxSkipBoost;
  skip_boost_ = boost;
}

bool TemporalGate::ShouldSkip(SceneContext ctx) {
  const bool changed = has_context_ && ctx != last_context_;
  bool skip = false;
  if (changed) {
    // Concept drift: the detector regime switched under the tracks. Any
    // planned skips are void — the frame must be detected.
    if (remaining_skips_ > 0) {
      remaining_skips_ = 0;
      ++forced_detects_;
    }
  } else if (has_context_ && remaining_skips_ > 0) {
    if (propagator_.CanPropagate()) {
      --remaining_skips_;
      skip = true;
    } else {
      remaining_skips_ = 0;
      ++forced_detects_;
    }
  }
  has_context_ = true;
  last_context_ = ctx;
  context_changed_ = changed;
  return skip;
}

const DetectionList& TemporalGate::Propagate() {
  ++completed_skips_;
  return propagator_.Propagate();
}

void TemporalGate::ObserveDetections(const DetectionList& fused,
                                     int64_t frame_index) {
  propagator_.ObserveDetections(fused, frame_index);
  if (episode_open_) {
    // Reward credit is capped at the policy's own plan: boosted extra
    // skips are the overload controller's doing, and letting them inflate
    // completion ratios would teach the bandit that deep arms are better
    // than they are.
    policy_.OnEpisodeEnd(std::min(completed_skips_, planned_base_),
                         propagator_.agreement());
  }
  DifficultySignals signals;
  signals.context_changed = context_changed_;
  signals.detection_churn = propagator_.detection_churn();
  signals.track_instability = propagator_.track_instability();
  signals.agreement = propagator_.agreement();
  last_difficulty_ = DifficultyScore(signals);
  planned_base_ = policy_.PlanSkips(last_difficulty_);
  remaining_skips_ = planned_base_ + skip_boost_;
  completed_skips_ = 0;
  episode_open_ = true;
}

Status TemporalGate::SaveState(ByteWriter& w) const {
  w.I64(remaining_skips_);
  w.I64(completed_skips_);
  w.Bool(episode_open_);
  w.Bool(has_context_);
  w.Bool(context_changed_);
  w.U8(static_cast<uint8_t>(last_context_));
  w.F64(last_difficulty_);
  w.U64(forced_detects_);
  w.I64(skip_boost_);
  w.I64(planned_base_);
  VQE_RETURN_NOT_OK(policy_.SaveState(w));
  return propagator_.SaveState(w);
}

Status TemporalGate::RestoreState(ByteReader& r) {
  int64_t remaining = 0, completed = 0;
  bool episode_open = false, has_context = false, context_changed = false;
  uint8_t last_context = 0;
  double last_difficulty = 0.0;
  uint64_t forced = 0;
  int64_t boost = 0, planned_base = 0;
  VQE_RETURN_NOT_OK(r.I64(&remaining));
  VQE_RETURN_NOT_OK(r.I64(&completed));
  VQE_RETURN_NOT_OK(r.Bool(&episode_open));
  VQE_RETURN_NOT_OK(r.Bool(&has_context));
  VQE_RETURN_NOT_OK(r.Bool(&context_changed));
  VQE_RETURN_NOT_OK(r.U8(&last_context));
  VQE_RETURN_NOT_OK(r.F64(&last_difficulty));
  VQE_RETURN_NOT_OK(r.U64(&forced));
  VQE_RETURN_NOT_OK(r.I64(&boost));
  VQE_RETURN_NOT_OK(r.I64(&planned_base));
  if (boost < 0 || boost > kMaxSkipBoost) {
    return Status::DataLoss("gate skip boost out of range");
  }
  if (planned_base < 0 || planned_base > options_.skip_budget) {
    return Status::DataLoss("gate planned base out of range");
  }
  // Skip counters are bounded by budget + boost: a boosted episode
  // legitimately plans past the configured budget.
  const int64_t bound = static_cast<int64_t>(options_.skip_budget) + boost;
  if (remaining < 0 || remaining > bound) {
    return Status::DataLoss("gate remaining skips out of range");
  }
  if (completed < 0 || completed > bound) {
    return Status::DataLoss("gate completed skips out of range");
  }
  if (last_context >= static_cast<uint8_t>(kNumSceneContexts)) {
    return Status::DataLoss("gate scene context out of range");
  }
  VQE_RETURN_NOT_OK(policy_.RestoreState(r));
  VQE_RETURN_NOT_OK(propagator_.RestoreState(r));
  remaining_skips_ = static_cast<int>(remaining);
  completed_skips_ = static_cast<int>(completed);
  skip_boost_ = static_cast<int>(boost);
  planned_base_ = static_cast<int>(planned_base);
  episode_open_ = episode_open;
  has_context_ = has_context;
  context_changed_ = context_changed;
  last_context_ = static_cast<SceneContext>(last_context);
  last_difficulty_ = last_difficulty;
  forced_detects_ = forced;
  return Status::OK();
}

}  // namespace vqe
