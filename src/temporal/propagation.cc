#include "temporal/propagation.h"

#include <algorithm>
#include <cmath>

namespace vqe {

TrackPropagator::TrackPropagator(const TrackerOptions& tracker_options,
                                 double confidence_decay)
    : tracker_(tracker_options), confidence_decay_(confidence_decay) {}

void TrackPropagator::Reset() {
  tracker_.Reset();
  propagated_.clear();
  coast_streak_ = 0;
  churn_ = 1.0;
  instability_ = 1.0;
  agreement_ = 0.0;
  last_detect_count_ = 0;
}

void TrackPropagator::ObserveDetections(const DetectionList& fused,
                                        int64_t frame_index) {
  // Record the one-step predictions of the currently-associated tracks
  // BEFORE the update: these are exactly the boxes a skipped frame
  // would have served, and exactly what Update() associates against, so
  // their IoU with the fresh boxes is the realized propagation error.
  pred_ids_.clear();
  pred_boxes_.clear();
  for (const Track& t : tracker_.tracks()) {
    if (!t.UpdatedThisFrame()) continue;
    pred_ids_.push_back(t.track_id);
    pred_boxes_.push_back(BBox{t.box.x1 + t.vx, t.box.y1 + t.vy,
                               t.box.x2 + t.vx, t.box.y2 + t.vy});
  }

  tracker_.Update(fused, frame_index);

  // Agreement: each recorded prediction scores the IoU against its
  // track's freshly-associated box, or 0 if the track went unmatched.
  if (pred_ids_.empty()) {
    agreement_ = fused.empty() ? 1.0 : 0.0;
  } else {
    double sum = 0.0;
    for (size_t i = 0; i < pred_ids_.size(); ++i) {
      for (const Track& t : tracker_.tracks()) {
        if (t.track_id != pred_ids_[i]) continue;
        if (t.UpdatedThisFrame()) sum += IoU(pred_boxes_[i], t.box);
        break;
      }
    }
    sum /= static_cast<double>(pred_ids_.size());
    agreement_ = std::clamp(sum, 0.0, 1.0);
  }

  // Churn: share of this round's association events that were births or
  // retirements rather than matches.
  const TrackerUpdateStats& s = tracker_.last_update_stats();
  const int events = s.births + s.retired + s.matched;
  churn_ = events > 0
               ? static_cast<double>(s.births + s.retired) /
                     static_cast<double>(events)
               : (fused.empty() ? 0.0 : 1.0);

  // Instability: mean per-frame displacement relative to box diagonal.
  // An object moving a third of its own diagonal per frame saturates the
  // signal — constant-velocity coasting degrades fast at that speed.
  double ratio_sum = 0.0;
  int live = 0;
  for (const Track& t : tracker_.tracks()) {
    const double diag = std::sqrt(t.box.width() * t.box.width() +
                                  t.box.height() * t.box.height());
    if (!(diag > 1e-9)) continue;
    const double speed = std::sqrt(t.vx * t.vx + t.vy * t.vy);
    ratio_sum += speed / diag;
    ++live;
  }
  instability_ =
      live > 0 ? std::clamp(3.0 * ratio_sum / static_cast<double>(live),
                            0.0, 1.0)
               : 0.0;

  last_detect_count_ = fused.size();
  coast_streak_ = 0;
}

const DetectionList& TrackPropagator::Propagate() {
  tracker_.CoastOne();
  ++coast_streak_;
  const double decay =
      std::pow(confidence_decay_, static_cast<double>(coast_streak_));
  propagated_.clear();
  for (const Track& t : tracker_.tracks()) {
    // Every track associated at the last detect frame propagates,
    // tentative ones included: the propagated list stands in for what the
    // detectors WOULD have output — the last fused frame coasted forward —
    // so filtering it to confirmed tracks would throw away recall the
    // detect frame actually had. (Confirmation filtering remains the
    // TRACKS() predicate's business.) Already-missed tracks stay out:
    // they are coasting on stale evidence the detectors contradicted.
    if (!t.UpdatedThisFrame()) continue;
    Detection d;
    d.box = t.box;
    d.confidence = t.confidence * decay;
    d.label = t.label;
    propagated_.push_back(d);
  }
  return propagated_;
}

bool TrackPropagator::CanPropagate() const {
  if (last_detect_count_ == 0) return true;
  for (const Track& t : tracker_.tracks()) {
    if (t.UpdatedThisFrame()) return true;
  }
  return false;
}

Status TrackPropagator::SaveState(ByteWriter& w) const {
  w.I64(coast_streak_);
  w.F64(churn_);
  w.F64(instability_);
  w.F64(agreement_);
  w.U64(last_detect_count_);
  return tracker_.SaveState(w);
}

Status TrackPropagator::RestoreState(ByteReader& r) {
  int64_t streak = 0;
  double churn = 0.0, instability = 0.0, agreement = 0.0;
  uint64_t last_count = 0;
  VQE_RETURN_NOT_OK(r.I64(&streak));
  VQE_RETURN_NOT_OK(r.F64(&churn));
  VQE_RETURN_NOT_OK(r.F64(&instability));
  VQE_RETURN_NOT_OK(r.F64(&agreement));
  VQE_RETURN_NOT_OK(r.U64(&last_count));
  if (streak < 0) return Status::DataLoss("coast streak negative");
  VQE_RETURN_NOT_OK(tracker_.RestoreState(r));
  coast_streak_ = static_cast<int>(streak);
  churn_ = churn;
  instability_ = instability;
  agreement_ = agreement;
  last_detect_count_ = last_count;
  propagated_.clear();
  return Status::OK();
}

}  // namespace vqe
