#include "temporal/skip_policy.h"

#include <bit>
#include <cmath>
#include <string>

#include "temporal/difficulty.h"

namespace vqe {

const char* SkipModeToString(SkipMode mode) {
  switch (mode) {
    case SkipMode::kOff: return "off";
    case SkipMode::kFixedInterval: return "fixed";
    case SkipMode::kDifficultyGated: return "gated";
    case SkipMode::kBandit: return "bandit";
  }
  return "unknown";
}

Status SkipOptions::Validate() const {
  if (mode != SkipMode::kOff && mode != SkipMode::kFixedInterval &&
      mode != SkipMode::kDifficultyGated && mode != SkipMode::kBandit) {
    return Status::InvalidArgument("unknown skip mode");
  }
  if (skip_budget < 0) {
    return Status::InvalidArgument("skip_budget must be >= 0");
  }
  if (skip_budget > 1024) {
    return Status::InvalidArgument("skip_budget must be <= 1024");
  }
  if (difficulty_threshold < 0.0 || difficulty_threshold > 1.0) {
    return Status::InvalidArgument("difficulty_threshold must be in [0, 1]");
  }
  if (!(confidence_decay > 0.0) || confidence_decay > 1.0) {
    return Status::InvalidArgument("confidence_decay must be in (0, 1]");
  }
  if (agreement_floor < 0.0 || agreement_floor > 1.0) {
    return Status::InvalidArgument("agreement_floor must be in [0, 1]");
  }
  if (drift_penalty < 0.0) {
    return Status::InvalidArgument("drift_penalty must be >= 0");
  }
  if (ucb_exploration < 0.0) {
    return Status::InvalidArgument("ucb_exploration must be >= 0");
  }
  return tracker.Validate();
}

void WriteSkipOptionsIdentity(ByteWriter& w, const SkipOptions& o) {
  w.U8(static_cast<uint8_t>(o.mode));
  w.I64(o.skip_budget);
  w.F64(o.difficulty_threshold);
  w.F64(o.confidence_decay);
  w.F64(o.agreement_floor);
  w.F64(o.drift_penalty);
  w.F64(o.ucb_exploration);
  w.F64(o.tracker.iou_threshold);
  w.I64(o.tracker.max_missed);
  w.I64(o.tracker.min_hits);
  w.F64(o.tracker.min_confidence);
}

Status ReadSkipOptionsIdentity(ByteReader& r, SkipOptions* o) {
  uint8_t mode = 0;
  int64_t budget = 0, max_missed = 0, min_hits = 0;
  VQE_RETURN_NOT_OK(r.U8(&mode));
  VQE_RETURN_NOT_OK(r.I64(&budget));
  VQE_RETURN_NOT_OK(r.F64(&o->difficulty_threshold));
  VQE_RETURN_NOT_OK(r.F64(&o->confidence_decay));
  VQE_RETURN_NOT_OK(r.F64(&o->agreement_floor));
  VQE_RETURN_NOT_OK(r.F64(&o->drift_penalty));
  VQE_RETURN_NOT_OK(r.F64(&o->ucb_exploration));
  VQE_RETURN_NOT_OK(r.F64(&o->tracker.iou_threshold));
  VQE_RETURN_NOT_OK(r.I64(&max_missed));
  VQE_RETURN_NOT_OK(r.I64(&min_hits));
  VQE_RETURN_NOT_OK(r.F64(&o->tracker.min_confidence));
  if (mode > static_cast<uint8_t>(SkipMode::kBandit)) {
    return Status::DataLoss("skip mode out of range");
  }
  o->mode = static_cast<SkipMode>(mode);
  o->skip_budget = static_cast<int>(budget);
  o->tracker.max_missed = static_cast<int>(max_missed);
  o->tracker.min_hits = static_cast<int>(min_hits);
  return Status::OK();
}

namespace {

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

Status Mismatch(const char* field) {
  return Status::FailedPrecondition(
      std::string("snapshot skip options mismatch: ") + field);
}

}  // namespace

Status ExpectSkipOptionsMatch(const SkipOptions& s, const SkipOptions& r) {
  if (s.mode != r.mode) return Mismatch("mode");
  if (s.skip_budget != r.skip_budget) return Mismatch("skip_budget");
  if (!SameBits(s.difficulty_threshold, r.difficulty_threshold)) {
    return Mismatch("difficulty_threshold");
  }
  if (!SameBits(s.confidence_decay, r.confidence_decay)) {
    return Mismatch("confidence_decay");
  }
  if (!SameBits(s.agreement_floor, r.agreement_floor)) {
    return Mismatch("agreement_floor");
  }
  if (!SameBits(s.drift_penalty, r.drift_penalty)) {
    return Mismatch("drift_penalty");
  }
  if (!SameBits(s.ucb_exploration, r.ucb_exploration)) {
    return Mismatch("ucb_exploration");
  }
  if (!SameBits(s.tracker.iou_threshold, r.tracker.iou_threshold)) {
    return Mismatch("tracker.iou_threshold");
  }
  if (s.tracker.max_missed != r.tracker.max_missed) {
    return Mismatch("tracker.max_missed");
  }
  if (s.tracker.min_hits != r.tracker.min_hits) {
    return Mismatch("tracker.min_hits");
  }
  if (!SameBits(s.tracker.min_confidence, r.tracker.min_confidence)) {
    return Mismatch("tracker.min_confidence");
  }
  return Status::OK();
}

SkipPolicy::SkipPolicy(const SkipOptions& options) : options_(options) {
  const size_t cells =
      static_cast<size_t>(kNumDifficultyBuckets) *
      static_cast<size_t>(num_arms());
  plays_.assign(cells, 0);
  reward_sum_.assign(cells, 0.0);
  bucket_plays_.assign(static_cast<size_t>(kNumDifficultyBuckets), 0);
}

int SkipPolicy::PlanSkips(double difficulty) {
  switch (options_.mode) {
    case SkipMode::kOff:
      return 0;
    case SkipMode::kFixedInterval:
      return options_.skip_budget;
    case SkipMode::kDifficultyGated:
      return difficulty < options_.difficulty_threshold
                 ? options_.skip_budget
                 : 0;
    case SkipMode::kBandit:
      break;
  }
  // UCB1 over skip depths 0..budget within this frame's difficulty bucket.
  // An episode may still be open if the previous plan was truncated by the
  // end of the video; re-planning simply abandons it (no reward observed).
  const int bucket = DifficultyBucket(difficulty);
  const size_t base =
      static_cast<size_t>(bucket) * static_cast<size_t>(num_arms());
  const uint64_t t = bucket_plays_[static_cast<size_t>(bucket)];
  int chosen = 0;
  double best = -1e300;
  for (int depth = 0; depth < num_arms(); ++depth) {
    const size_t cell = base + static_cast<size_t>(depth);
    double score;
    if (plays_[cell] == 0) {
      // Untried arms first, shallowest depth first: the run warms up with
      // conservative skips before committing to deep ones.
      score = 1e300 - static_cast<double>(depth);
    } else {
      const double n = static_cast<double>(plays_[cell]);
      const double mean = reward_sum_[cell] / n;
      const double bonus =
          options_.ucb_exploration *
          std::sqrt(2.0 * std::log(static_cast<double>(t) + 1.0) / n);
      score = mean + bonus;
    }
    if (score > best) {
      best = score;
      chosen = depth;
    }
  }
  pending_cell_ = static_cast<int64_t>(base) + chosen;
  pending_depth_ = chosen;
  return chosen;
}

void SkipPolicy::OnEpisodeEnd(int completed, double agreement) {
  if (options_.mode != SkipMode::kBandit) return;
  if (pending_cell_ < 0) return;
  const size_t cell = static_cast<size_t>(pending_cell_);
  // Reward: throughput gain realized (completed / planned), discounted by
  // how well the coasted boxes actually matched reality. An episode whose
  // agreement fell below the floor drifted — it gets a flat penalty so the
  // arm's mean drops below the always-detect arm's 0.
  double reward = 0.0;
  if (agreement < options_.agreement_floor) {
    reward = -options_.drift_penalty;
  } else if (pending_depth_ > 0) {
    reward = (static_cast<double>(completed) /
              static_cast<double>(pending_depth_)) *
             agreement;
  }
  plays_[cell] += 1;
  reward_sum_[cell] += reward;
  bucket_plays_[cell / static_cast<size_t>(num_arms())] += 1;
  episodes_ += 1;
  pending_cell_ = -1;
  pending_depth_ = 0;
}

uint64_t SkipPolicy::ArmPlays(int bucket, int depth) const {
  return plays_[static_cast<size_t>(bucket) *
                    static_cast<size_t>(num_arms()) +
                static_cast<size_t>(depth)];
}

double SkipPolicy::ArmRewardSum(int bucket, int depth) const {
  return reward_sum_[static_cast<size_t>(bucket) *
                         static_cast<size_t>(num_arms()) +
                     static_cast<size_t>(depth)];
}

Status SkipPolicy::SaveState(ByteWriter& w) const {
  w.U32(static_cast<uint32_t>(kNumDifficultyBuckets));
  w.U32(static_cast<uint32_t>(num_arms()));
  for (uint64_t p : plays_) w.U64(p);
  for (double s : reward_sum_) w.F64(s);
  for (uint64_t p : bucket_plays_) w.U64(p);
  w.U64(episodes_);
  w.I64(pending_cell_);
  w.I64(pending_depth_);
  return Status::OK();
}

Status SkipPolicy::RestoreState(ByteReader& r) {
  uint32_t buckets = 0, arms = 0;
  VQE_RETURN_NOT_OK(r.U32(&buckets));
  VQE_RETURN_NOT_OK(r.U32(&arms));
  if (buckets != static_cast<uint32_t>(kNumDifficultyBuckets) ||
      arms != static_cast<uint32_t>(num_arms())) {
    return Status::DataLoss("skip policy dimensions mismatch");
  }
  std::vector<uint64_t> plays(plays_.size());
  std::vector<double> sums(reward_sum_.size());
  std::vector<uint64_t> bucket_plays(bucket_plays_.size());
  for (uint64_t& p : plays) VQE_RETURN_NOT_OK(r.U64(&p));
  for (double& s : sums) VQE_RETURN_NOT_OK(r.F64(&s));
  for (uint64_t& p : bucket_plays) VQE_RETURN_NOT_OK(r.U64(&p));
  uint64_t episodes = 0;
  int64_t pending_cell = 0, pending_depth = 0;
  VQE_RETURN_NOT_OK(r.U64(&episodes));
  VQE_RETURN_NOT_OK(r.I64(&pending_cell));
  VQE_RETURN_NOT_OK(r.I64(&pending_depth));
  if (pending_cell >= static_cast<int64_t>(plays_.size()) ||
      pending_cell < -1) {
    return Status::DataLoss("skip policy pending cell out of range");
  }
  if (pending_depth < 0 || pending_depth >= num_arms()) {
    return Status::DataLoss("skip policy pending depth out of range");
  }
  plays_ = std::move(plays);
  reward_sum_ = std::move(sums);
  bucket_plays_ = std::move(bucket_plays);
  episodes_ = episodes;
  pending_cell_ = pending_cell;
  pending_depth_ = pending_depth;
  return Status::OK();
}

}  // namespace vqe
