#include "temporal/difficulty.h"

#include <algorithm>

namespace vqe {

double DifficultyScore(const DifficultySignals& signals) {
  // A context switch means the specialized-detector regime changed under
  // us; no amount of track stability makes reuse safe across it.
  if (signals.context_changed) return 1.0;
  const double churn = std::clamp(signals.detection_churn, 0.0, 1.0);
  const double instability = std::clamp(signals.track_instability, 0.0, 1.0);
  const double disagreement =
      1.0 - std::clamp(signals.agreement, 0.0, 1.0);
  // Fixed convex weights: churn dominates (a new object is unrecoverable
  // by coasting), instability next (prediction error grows per skipped
  // frame), disagreement last (it is a lagging, already-realized error).
  const double score =
      0.45 * churn + 0.35 * instability + 0.20 * disagreement;
  return std::clamp(score, 0.0, 1.0);
}

int DifficultyBucket(double score) {
  if (score < 1.0 / 3.0) return 0;
  if (score < 2.0 / 3.0) return 1;
  return 2;
}

}  // namespace vqe
