// Skip policy for the temporal-coherence fast path: decides, after every
// detect frame, how many of the following frames may be answered from
// tracker propagation instead of detector inference. Three modes:
//
//  - kFixedInterval:   always plan `skip_budget` skips (classic 1-in-k
//                      keyframe sampling).
//  - kDifficultyGated: plan `skip_budget` skips only when the difficulty
//                      signal is below a threshold.
//  - kBandit:          a deterministic UCB1 bandit learns the skip depth
//                      (0..skip_budget) per difficulty bucket. This is the
//                      "skip-vs-detect as a bandit decision" arm of the
//                      tentpole: rather than widening the MES ensemble
//                      lattice with 2x the arms, the skip depth is its own
//                      small contextual bandit layered *in front of* the
//                      ensemble bandit, rewarded by how well coasted
//                      predictions agreed with the detections that ended
//                      the episode. Skipped frames charge only simulated
//                      tracker time to the ledger.
//
// All three modes are pure functions of their inputs and serialized state,
// so a resumed run replays decisions bit-identically.

#ifndef VQE_TEMPORAL_SKIP_POLICY_H_
#define VQE_TEMPORAL_SKIP_POLICY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "snapshot/wire.h"
#include "track/tracker.h"

namespace vqe {

/// How skip depths are chosen.
enum class SkipMode : uint8_t {
  kOff = 0,
  kFixedInterval = 1,
  kDifficultyGated = 2,
  kBandit = 3,
};

/// Short name, e.g. "bandit".
const char* SkipModeToString(SkipMode mode);

/// Upper bound on TemporalGate::SetSkipBoost — the serving layer's dynamic
/// overload overlay on top of the configured skip_budget (same cap as the
/// budget itself).
inline constexpr int kMaxSkipBoost = 1024;

/// TrackerOptions tuned for propagation (see SkipOptions::tracker).
inline TrackerOptions PropagationTrackerDefaults() {
  TrackerOptions t;
  t.min_confidence = 0.05;
  return t;
}

/// Knobs for the skip/detect gate. Defaults keep skipping OFF; a run with
/// `!enabled()` constructs no gate at all and is bit-identical to a build
/// without this subsystem.
struct SkipOptions {
  SkipMode mode = SkipMode::kOff;
  /// Maximum consecutive frames answered from propagation; 0 disables.
  int skip_budget = 0;
  /// kDifficultyGated: skip only when difficulty < threshold.
  double difficulty_threshold = 0.35;
  /// Confidence multiplier applied per coasted frame to propagated
  /// detections (prediction uncertainty grows with the coast streak).
  double confidence_decay = 0.92;
  /// kBandit: episodes whose coast-vs-fresh IoU agreement lands below this
  /// floor are treated as drifted and penalized.
  double agreement_floor = 0.5;
  /// kBandit: reward charged to a drifted episode (as a negative reward).
  double drift_penalty = 0.25;
  /// kBandit: UCB exploration coefficient.
  double ucb_exploration = 0.5;
  /// Tracker used for propagation (and, in the query engine, shared with
  /// the TRACKS() predicate so there is exactly one tracker per run).
  /// Defaults differ from a bare TrackerOptions in one place: the
  /// confidence floor is 0.05, not 0.30. A skipped frame replays the last
  /// detect frame's fused output, and dropping its low-confidence tail
  /// costs recall the detect frame actually had; predicate-grade
  /// filtering still happens downstream (confirmation + TRACKS()).
  TrackerOptions tracker = PropagationTrackerDefaults();

  /// True when the gate should be constructed at all.
  bool enabled() const { return mode != SkipMode::kOff && skip_budget > 0; }

  Status Validate() const;
};

/// Simulated per-frame cost of advancing `num_tracks` tracks by one
/// constant-velocity step and emitting them, on the same synthetic-ms
/// scale as SimulatedFusionOverheadMs. This is what a skipped frame
/// charges to the simulated-time ledger instead of detector inference.
inline double SimulatedTrackerCostMs(size_t num_tracks) {
  return 0.02 + 0.004 * static_cast<double>(num_tracks);
}

/// Identity-fingerprint serialization of every decision-relevant knob.
/// Written into engine/query snapshot identities so a resume with
/// different skip settings is rejected instead of silently diverging.
void WriteSkipOptionsIdentity(ByteWriter& writer, const SkipOptions& o);
Status ReadSkipOptionsIdentity(ByteReader& reader, SkipOptions* o);
/// kFailedPrecondition naming the first mismatched field, exact-bit
/// comparison on doubles.
Status ExpectSkipOptionsMatch(const SkipOptions& snapshot,
                              const SkipOptions& run);

/// Per-episode skip-depth chooser. One instance per engine/query run.
class SkipPolicy {
 public:
  explicit SkipPolicy(const SkipOptions& options);

  /// Plans the next episode: how many upcoming frames may be skipped,
  /// in [0, skip_budget]. Called once per detect frame with the fresh
  /// difficulty score. In bandit mode this opens an episode whose reward
  /// arrives via OnEpisodeEnd.
  int PlanSkips(double difficulty);

  /// Closes the episode opened by the last PlanSkips: `completed` frames
  /// were actually skipped (forced detects truncate episodes), and the
  /// coasted predictions agreed with the fresh detections at `agreement`
  /// mean IoU. No-op outside bandit mode.
  void OnEpisodeEnd(int completed, double agreement);

  /// Bandit plays of arm `depth` in `bucket` (tests + snapshot assertions).
  uint64_t ArmPlays(int bucket, int depth) const;
  /// Accumulated reward of arm `depth` in `bucket`.
  double ArmRewardSum(int bucket, int depth) const;
  /// Total episodes closed.
  uint64_t episodes() const { return episodes_; }

  Status SaveState(ByteWriter& writer) const;
  Status RestoreState(ByteReader& reader);

 private:
  int num_arms() const { return options_.skip_budget + 1; }

  SkipOptions options_;
  // Bandit state, indexed [bucket * num_arms + depth]. Present (empty of
  // plays) in every mode so Save/Restore is mode-uniform.
  std::vector<uint64_t> plays_;
  std::vector<double> reward_sum_;
  std::vector<uint64_t> bucket_plays_;
  uint64_t episodes_ = 0;
  // Open episode (bandit mode): chosen cell, or -1 when none.
  int64_t pending_cell_ = -1;
  int64_t pending_depth_ = 0;
};

}  // namespace vqe

#endif  // VQE_TEMPORAL_SKIP_POLICY_H_
