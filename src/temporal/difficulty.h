// Per-frame difficulty signal for the temporal skip/detect gate. The
// signal is deliberately *cheap*: it is computed from state the tracker
// already maintains at the last detect frame plus a one-byte scene-context
// comparison — never from running a detector. This follows the
// difficulty-gated skipping idea in the related ODD/ExSample work
// (PAPERS.md): most frames are temporally redundant, and the frames that
// are not announce themselves through churn in the detections and
// instability in the tracks.

#ifndef VQE_TEMPORAL_DIFFICULTY_H_
#define VQE_TEMPORAL_DIFFICULTY_H_

namespace vqe {

/// Inputs to the difficulty score, refreshed at every detect frame.
struct DifficultySignals {
  /// Scene context differs from the previous frame's. A context switch
  /// (the simulator's concept-drift event) invalidates temporal reuse
  /// outright, so it dominates the score.
  bool context_changed = false;
  /// Fraction of the last association round that was births + retirements
  /// rather than matches, in [0, 1]. High churn means objects are entering
  /// or leaving the scene and coasted tracks would miss them.
  double detection_churn = 0.0;
  /// Mean per-frame track displacement relative to box size, in [0, 1].
  /// Fast-moving objects accumulate constant-velocity prediction error
  /// quickly, so skipping is riskier.
  double track_instability = 0.0;
  /// IoU agreement between the coasted predictions and the fresh
  /// detections measured at the last detect frame, in [0, 1]. Low
  /// agreement means the constant-velocity model is currently wrong.
  double agreement = 1.0;
};

/// Scalar difficulty in [0, 1]; 1 means "must detect".
double DifficultyScore(const DifficultySignals& signals);

/// Number of difficulty buckets the skip bandit contextualizes on.
inline constexpr int kNumDifficultyBuckets = 3;

/// Maps a score to its bucket: [0, 1/3) -> 0, [1/3, 2/3) -> 1, rest -> 2.
int DifficultyBucket(double score);

}  // namespace vqe

#endif  // VQE_TEMPORAL_DIFFICULTY_H_
