// The temporal skip/detect gate: the single object the engine and query
// frame loops consult once per frame. It ties together the difficulty
// signal (difficulty.h), the skip policy (skip_policy.h) and tracker
// propagation (propagation.h):
//
//   detect frame:  ObserveDetections(fused) -> refresh signals, close the
//                  bandit episode, plan the next skip run.
//   every frame:   ShouldSkip(ctx) -> consume one planned skip, or force
//                  a detect (first frame, scene-context change, nothing
//                  propagatable).
//   skip frame:    Propagate() -> coasted confirmed tracks as detections.
//
// A run with !SkipOptions::enabled() never constructs a gate, so the
// disabled path is byte-identical to a build without this subsystem.

#ifndef VQE_TEMPORAL_GATE_H_
#define VQE_TEMPORAL_GATE_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "detection/detection.h"
#include "sim/scene_context.h"
#include "snapshot/wire.h"
#include "temporal/propagation.h"
#include "temporal/skip_policy.h"

namespace vqe {

/// Per-run skip/detect decision state. Not thread-safe; one per run, like
/// the strategy it sits in front of.
class TemporalGate {
 public:
  /// Validates options; InvalidArgument unless options.enabled().
  static Result<std::unique_ptr<TemporalGate>> Create(
      const SkipOptions& options);

  /// Must be called exactly once per frame, before any detector work.
  /// True: the frame may be answered via Propagate() (one planned skip is
  /// consumed). False: run the detect path and finish the frame with
  /// ObserveDetections(). A scene-context change or an un-propagatable
  /// state cancels the remaining planned skips (a "forced detect").
  bool ShouldSkip(SceneContext ctx);

  /// Skip path: coasted confirmed tracks as a fused-style DetectionList.
  /// Valid until the next gate call.
  const DetectionList& Propagate();

  /// Detect path: ingest the realized ensemble's fused output (empty when
  /// every model failed), close the open bandit episode, and plan the
  /// next skip run.
  void ObserveDetections(const DetectionList& fused, int64_t frame_index);

  /// Dynamic overload overlay: every episode planned from here on is
  /// extended by `boost` extra skips beyond what the policy chose —
  /// including zero-plans, so under pressure even frames the policy would
  /// detect are coasted (accuracy is the currency overload control spends;
  /// forced detects on context changes still fire, so the correctness
  /// guards stay). Already-planned skips are not retracted when the boost
  /// drops; the new value applies from the next detect frame. The boost is
  /// dynamic state, NOT part of the SkipOptions identity fingerprint: a
  /// serving node may raise and lower it mid-run without invalidating
  /// snapshots, and bandit rewards are credited against the policy's own
  /// plan only, so the overlay never pollutes learning. Boost 0 (the
  /// default) leaves every decision byte-identical to a build without this
  /// hook.
  void SetSkipBoost(int boost);
  int skip_boost() const { return skip_boost_; }

  const IouTracker& tracker() const { return propagator_.tracker(); }
  const SkipPolicy& policy() const { return policy_; }
  const SkipOptions& options() const { return options_; }
  /// Difficulty score computed at the last detect frame.
  double last_difficulty() const { return last_difficulty_; }
  /// Skips still planned for the current episode.
  int remaining_skips() const { return remaining_skips_; }
  /// Detect frames forced by context changes / lost propagation state
  /// while skips were still planned.
  uint64_t forced_detects() const { return forced_detects_; }

  Status SaveState(ByteWriter& writer) const;
  Status RestoreState(ByteReader& reader);

 private:
  explicit TemporalGate(const SkipOptions& options);

  SkipOptions options_;
  SkipPolicy policy_;
  TrackPropagator propagator_;
  int remaining_skips_ = 0;
  int completed_skips_ = 0;
  /// Overload overlay (dynamic, serialized as state, never identity).
  int skip_boost_ = 0;
  /// What the policy itself planned for the open episode, pre-boost — the
  /// cap for bandit reward credit.
  int planned_base_ = 0;
  bool episode_open_ = false;
  bool has_context_ = false;
  bool context_changed_ = false;
  SceneContext last_context_ = SceneContext::kClear;
  double last_difficulty_ = 1.0;
  uint64_t forced_detects_ = 0;
};

}  // namespace vqe

#endif  // VQE_TEMPORAL_GATE_H_
