// Tracker-based detection propagation for skipped frames: advances the
// confirmed tracks of an IouTracker through skipped frames by
// constant-velocity coasting and converts them back into a fused-style
// DetectionList, so downstream consumers (AP scoring, query predicates)
// see a skipped frame exactly like a detect frame. Also owns the raw
// difficulty signals (churn / instability / agreement) that the skip
// policy reads, since they all fall out of the association bookkeeping.

#ifndef VQE_TEMPORAL_PROPAGATION_H_
#define VQE_TEMPORAL_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "detection/detection.h"
#include "snapshot/wire.h"
#include "track/tracker.h"

namespace vqe {

/// Advances tracks through skipped frames and emits propagated detections.
class TrackPropagator {
 public:
  TrackPropagator(const TrackerOptions& tracker_options,
                  double confidence_decay);

  /// Detect-frame ingest: measures how well the current coasted
  /// predictions agree with the fresh fused detections (one constant
  /// velocity step ahead, the same prediction Update() associates on),
  /// then updates the tracker and refreshes the churn/instability
  /// signals. Resets the coast streak.
  void ObserveDetections(const DetectionList& fused, int64_t frame_index);

  /// Skip-frame path: coasts every track one frame and returns the
  /// last-associated tracks (tentative included) as detections,
  /// confidences decayed by confidence_decay^streak. The returned
  /// reference is valid until the next Propagate/ObserveDetections call.
  const DetectionList& Propagate();

  /// True when a skipped frame can be answered from current state: the
  /// scene holds associated tracks, or the last detect frame saw an
  /// empty scene (propagating "still empty" is exact under the
  /// zero-object AP convention).
  bool CanPropagate() const;

  // Difficulty signals as of the last ObserveDetections call.
  double detection_churn() const { return churn_; }
  double track_instability() const { return instability_; }
  double agreement() const { return agreement_; }
  int coast_streak() const { return coast_streak_; }

  const IouTracker& tracker() const { return tracker_; }
  IouTracker& tracker() { return tracker_; }

  void Reset();
  Status SaveState(ByteWriter& writer) const;
  Status RestoreState(ByteReader& reader);

 private:
  IouTracker tracker_;
  double confidence_decay_;
  DetectionList propagated_;
  // Scratch for agreement measurement (id, predicted box pairs).
  std::vector<int64_t> pred_ids_;
  std::vector<BBox> pred_boxes_;
  int coast_streak_ = 0;
  // Signals start pessimistic: before the first detect frame nothing is
  // known, and the gate must not skip.
  double churn_ = 1.0;
  double instability_ = 1.0;
  double agreement_ = 0.0;
  uint64_t last_detect_count_ = 0;
};

}  // namespace vqe

#endif  // VQE_TEMPORAL_PROPAGATION_H_
