// Multi-trial experiment harness (§5.4-§5.5): every trial re-samples the
// video dataset and the detector noise, builds the frame-evaluation matrix
// once, runs every strategy on it, and aggregates s_sum / ā / ĉ statistics
// (mean, stddev, min, max over trials) exactly as the paper's box plots
// report them.

#ifndef VQE_CORE_EXPERIMENT_H_
#define VQE_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "core/engine.h"
#include "core/frame_matrix.h"
#include "core/lazy_frame_evaluator.h"
#include "runtime/fault_injection.h"
#include "sim/dataset.h"

namespace vqe {

/// Factory + label for one strategy under test.
struct StrategySpec {
  std::string label;
  std::function<std::unique_ptr<SelectionStrategy>()> make;
};

/// How each trial materializes its frame evaluations.
enum class EvaluationMode {
  /// Lazy when it can only help: every strategy is online
  /// (!needs_full_lattice()) and the engine skips the regret baseline
  /// (engine.compute_regret == false, since regret scans the full lattice
  /// anyway). Otherwise eager.
  kAuto,
  /// Always build the full FrameMatrix per trial (the original pipeline).
  kEager,
  /// Always run strategies against a LazyFrameEvaluator. Useful for
  /// equivalence testing; slower than eager for full-lattice strategies.
  kLazy,
};

/// Experiment configuration.
struct ExperimentConfig {
  const DatasetSpec* dataset = nullptr;
  /// Scaled-down replica size; 1.0 reproduces the paper's full datasets.
  double scene_scale = 0.05;
  int trials = 20;
  /// Pool size m (2, 3 or 5; Figure 11).
  int pool_size = 5;
  uint64_t base_seed = 1;
  /// Worker threads for trial-level parallelism. 0 = one thread per
  /// hardware core (capped at the trial count); 1 = serial. Results are
  /// bit-identical regardless of the thread count: every trial's
  /// randomness derives from (base_seed, trial index) alone. Trial- and
  /// frame-level parallelism (matrix.parallelism) share one process pool:
  /// with trials > 1 occupying the workers, the frame-level loop inside
  /// each trial runs serially instead of oversubscribing.
  int parallelism = 0;
  MatrixOptions matrix;
  EngineOptions engine;
  /// Eager matrix vs. lazy memoized evaluation (see EvaluationMode).
  /// Either way every observable value is bit-identical; only the amount
  /// of fusion work differs.
  EvaluationMode evaluation = EvaluationMode::kAuto;
  /// Per-detector fault scripts, index-aligned with the pool. Empty means
  /// no injection; otherwise the size must equal the pool size and
  /// RunExperiment decorates each detector with its script (the reference
  /// model is never fault-injected). Faults are deterministic in
  /// (base_seed, trial), so experiments with faults aggregate and compare
  /// exactly like fault-free ones.
  std::vector<FaultScript> fault_scripts;
  /// Optional in-place rewrite of each trial's sampled video, applied
  /// before the matrix/evaluator is built (e.g. a gradual-drift context
  /// rewrite). Must be a pure function of (video, trial_seed): trials run
  /// on worker threads and the determinism contract requires the same
  /// trial to rewrite identically on every run and thread count.
  std::function<void(Video& video, uint64_t trial_seed)> video_transform;

  Status Validate() const;
};

/// Aggregated per-strategy outcome.
struct StrategyOutcome {
  std::string label;
  std::vector<RunResult> runs;  // one per trial
  SampleSummary s_sum;
  SampleSummary avg_true_ap;
  SampleSummary avg_norm_cost;
  /// Meaningless (all-zero samples) when !regret_available.
  SampleSummary regret;
  SampleSummary frames_processed;
  /// Fault-tolerance report: frames completed on a sub-mask, frames with
  /// no surviving member, and simulated time lost to faults (all zero in
  /// fault-free runs).
  SampleSummary fallback_frames;
  SampleSummary failed_frames;
  SampleSummary fault_ms;
  /// Simulated frame-clock time per run (TimeBreakdown::SimulatedMs):
  /// detector + reference + ensembling + fault. Additive across trials
  /// even when trials ran concurrently — it is simulated time, not wall
  /// time.
  SampleSummary simulated_ms;
  /// Real wall-clock spent inside strategy Select/Observe per run
  /// (TimeBreakdown::algorithm_ms). Trials run on worker threads, so
  /// these samples OVERLAP in real time: their sum exceeds the elapsed
  /// wall clock and must never be added to simulated_ms as if the two
  /// shared a clock. Kept as its own summary so the Figure 13 overhead
  /// share stays reportable without double-counting.
  SampleSummary algorithm_wall_ms;
  /// False when the engine skipped the regret baseline
  /// (EngineOptions::compute_regret was off).
  bool regret_available = true;
};

/// Whole experiment outcome.
struct ExperimentResult {
  std::vector<StrategyOutcome> outcomes;
  /// Average frames per sampled video.
  double avg_video_frames = 0.0;

  /// Outcome by label; nullptr when absent.
  const StrategyOutcome* Find(const std::string& label) const;
};

/// Runs `strategies` over `config.trials` independent trials.
Result<ExperimentResult> RunExperiment(
    const ExperimentConfig& config, const DetectorPool& pool,
    const std::vector<StrategySpec>& strategies);

/// Samples one trial's video and builds its matrix (for benches that work
/// on the matrix directly, e.g. the Figure 3 scatter).
Result<FrameMatrix> BuildTrialMatrix(const ExperimentConfig& config,
                                     const DetectorPool& pool,
                                     uint64_t trial_index);

/// Samples one trial's video into a lazy evaluator — same video and seeds
/// as BuildTrialMatrix(config, pool, trial_index), no eager work.
Result<std::unique_ptr<LazyFrameEvaluator>> BuildTrialEvaluator(
    const ExperimentConfig& config, const DetectorPool& pool,
    uint64_t trial_index);

/// Decorates each detector of `pool` with its FaultScript (index-aligned;
/// size must match) and clones the reference model. The returned pool does
/// not own the inner detectors — `pool` must outlive it. RunExperiment
/// applies this automatically when ExperimentConfig::fault_scripts is set;
/// callers driving BuildTrialMatrix/BuildTrialEvaluator directly decorate
/// explicitly.
Result<DetectorPool> ApplyFaultScripts(
    const DetectorPool& pool, const std::vector<FaultScript>& scripts);

/// The default strategy line-up of Figure 4 (OPT, BF, SGL, RAND, EF, MES)
/// with the given MES initialization γ and EF exploration length.
std::vector<StrategySpec> DefaultTuviStrategies(size_t gamma,
                                                size_t ef_explore);

}  // namespace vqe

#endif  // VQE_CORE_EXPERIMENT_H_
