#include "core/engine_snapshot.h"

#include <bit>
#include <cmath>

namespace vqe {
namespace {

/// Exact bit equality for doubles (configuration fingerprints must match
/// the saved run exactly; tolerance would admit drifting results).
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

}  // namespace

Status EngineRunIdentity::ExpectMatches(const EngineRunIdentity& other) const {
  if (strategy_name != other.strategy_name) {
    return Status::FailedPrecondition(
        "checkpoint belongs to strategy '" + strategy_name + "', not '" +
        other.strategy_name + "'");
  }
  if (num_models != other.num_models || num_frames != other.num_frames) {
    return Status::FailedPrecondition(
        "checkpoint pool/video shape differs from this run");
  }
  if (strategy_seed != other.strategy_seed) {
    return Status::FailedPrecondition("checkpoint strategy seed differs");
  }
  if (!SameBits(budget_ms, other.budget_ms)) {
    return Status::FailedPrecondition("checkpoint budget differs");
  }
  if (!SameBits(sc.w1, other.sc.w1) || !SameBits(sc.w2, other.sc.w2) ||
      sc.form != other.sc.form) {
    return Status::FailedPrecondition("checkpoint scoring function differs");
  }
  if (compute_regret != other.compute_regret ||
      record_cost_curve != other.record_cost_curve) {
    return Status::FailedPrecondition("checkpoint measurement flags differ");
  }
  if (breaker.failure_threshold != other.breaker.failure_threshold ||
      breaker.open_frames != other.breaker.open_frames ||
      breaker.half_open_probes != other.breaker.half_open_probes) {
    return Status::FailedPrecondition("checkpoint breaker options differ");
  }
  return ExpectSkipOptionsMatch(skip, other.skip);
}

void WriteEngineIdentity(ByteWriter& w, const EngineRunIdentity& id) {
  w.Str(id.strategy_name);
  w.I64(id.num_models);
  w.U64(id.num_frames);
  w.U64(id.strategy_seed);
  w.F64(id.budget_ms);
  w.F64(id.sc.w1);
  w.F64(id.sc.w2);
  w.U8(static_cast<uint8_t>(id.sc.form));
  w.Bool(id.compute_regret);
  w.Bool(id.record_cost_curve);
  w.I64(id.breaker.failure_threshold);
  w.U64(id.breaker.open_frames);
  w.I64(id.breaker.half_open_probes);
  WriteSkipOptionsIdentity(w, id.skip);
}

Status ReadEngineIdentity(ByteReader& r, EngineRunIdentity* id) {
  int64_t num_models = 0, failure_threshold = 0, half_open_probes = 0;
  uint64_t open_frames = 0;
  uint8_t form = 0;
  VQE_RETURN_NOT_OK(r.Str(&id->strategy_name));
  VQE_RETURN_NOT_OK(r.I64(&num_models));
  VQE_RETURN_NOT_OK(r.U64(&id->num_frames));
  VQE_RETURN_NOT_OK(r.U64(&id->strategy_seed));
  VQE_RETURN_NOT_OK(r.F64(&id->budget_ms));
  VQE_RETURN_NOT_OK(r.F64(&id->sc.w1));
  VQE_RETURN_NOT_OK(r.F64(&id->sc.w2));
  VQE_RETURN_NOT_OK(r.U8(&form));
  VQE_RETURN_NOT_OK(r.Bool(&id->compute_regret));
  VQE_RETURN_NOT_OK(r.Bool(&id->record_cost_curve));
  VQE_RETURN_NOT_OK(r.I64(&failure_threshold));
  VQE_RETURN_NOT_OK(r.U64(&open_frames));
  VQE_RETURN_NOT_OK(r.I64(&half_open_probes));
  VQE_RETURN_NOT_OK(ReadSkipOptionsIdentity(r, &id->skip));
  if (num_models < 1 || num_models > kMaxPoolSize) {
    return Status::DataLoss("identity num_models out of range");
  }
  if (form > static_cast<uint8_t>(ScoreForm::kLinear)) {
    return Status::DataLoss("identity score form out of range");
  }
  id->num_models = static_cast<int>(num_models);
  id->sc.form = static_cast<ScoreForm>(form);
  id->breaker.failure_threshold = static_cast<int>(failure_threshold);
  id->breaker.open_frames = static_cast<size_t>(open_frames);
  id->breaker.half_open_probes = static_cast<int>(half_open_probes);
  return Status::OK();
}

void WriteTimeBreakdown(ByteWriter& w, const TimeBreakdown& tb) {
  w.F64(tb.detector_ms);
  w.F64(tb.reference_ms);
  w.F64(tb.ensembling_ms);
  w.F64(tb.fault_ms);
  w.F64(tb.tracker_ms);
  w.F64(tb.algorithm_ms);
}

Status ReadTimeBreakdown(ByteReader& r, TimeBreakdown* tb) {
  VQE_RETURN_NOT_OK(r.F64(&tb->detector_ms));
  VQE_RETURN_NOT_OK(r.F64(&tb->reference_ms));
  VQE_RETURN_NOT_OK(r.F64(&tb->ensembling_ms));
  VQE_RETURN_NOT_OK(r.F64(&tb->fault_ms));
  VQE_RETURN_NOT_OK(r.F64(&tb->tracker_ms));
  VQE_RETURN_NOT_OK(r.F64(&tb->algorithm_ms));
  return Status::OK();
}

void WriteRunResult(ByteWriter& w, const RunResult& result) {
  w.F64(result.s_sum);
  w.F64(result.avg_true_ap);
  w.F64(result.avg_norm_cost);
  w.U64(result.frames_processed);
  w.F64(result.regret);
  w.Bool(result.regret_available);
  w.F64(result.charged_cost_ms);
  WriteTimeBreakdown(w, result.breakdown);
  WriteVecU64(w, result.selection_counts);
  w.U64(result.cost_curve.size());
  for (const auto& [iter, cost] : result.cost_curve) {
    w.U64(iter);
    w.F64(cost);
  }
  w.U64(result.model_availability.size());
  for (const auto& health : result.model_availability) {
    w.U64(health.frames_selected);
    w.U64(health.frames_failed);
    w.U64(health.breaker_opens);
    w.F64(health.fault_ms);
  }
  w.U64(result.fallback_frames);
  w.U64(result.failed_frames);
  w.U64(result.skip.skipped_frames);
  w.U64(result.skip.detect_frames);
  w.U64(result.skip.forced_detects);
  w.F64(result.skip.propagated_ap_sum);
}

Status ReadRunResult(ByteReader& r, RunResult* result) {
  uint64_t frames_processed = 0;
  VQE_RETURN_NOT_OK(r.F64(&result->s_sum));
  VQE_RETURN_NOT_OK(r.F64(&result->avg_true_ap));
  VQE_RETURN_NOT_OK(r.F64(&result->avg_norm_cost));
  VQE_RETURN_NOT_OK(r.U64(&frames_processed));
  VQE_RETURN_NOT_OK(r.F64(&result->regret));
  VQE_RETURN_NOT_OK(r.Bool(&result->regret_available));
  VQE_RETURN_NOT_OK(r.F64(&result->charged_cost_ms));
  VQE_RETURN_NOT_OK(ReadTimeBreakdown(r, &result->breakdown));
  VQE_RETURN_NOT_OK(ReadVecU64(r, &result->selection_counts));
  uint64_t curve_len = 0;
  VQE_RETURN_NOT_OK(r.U64(&curve_len));
  if (curve_len > r.remaining() / 16) {
    return Status::DataLoss("cost-curve length exceeds payload");
  }
  result->cost_curve.clear();
  result->cost_curve.reserve(static_cast<size_t>(curve_len));
  for (uint64_t i = 0; i < curve_len; ++i) {
    uint64_t iter = 0;
    double cost = 0;
    VQE_RETURN_NOT_OK(r.U64(&iter));
    VQE_RETURN_NOT_OK(r.F64(&cost));
    result->cost_curve.emplace_back(static_cast<size_t>(iter), cost);
  }
  uint64_t num_models = 0;
  VQE_RETURN_NOT_OK(r.U64(&num_models));
  if (num_models > static_cast<uint64_t>(kMaxPoolSize)) {
    return Status::DataLoss("model-availability count out of range");
  }
  result->model_availability.clear();
  result->model_availability.reserve(static_cast<size_t>(num_models));
  for (uint64_t i = 0; i < num_models; ++i) {
    RunResult::ModelAvailability health;
    VQE_RETURN_NOT_OK(r.U64(&health.frames_selected));
    VQE_RETURN_NOT_OK(r.U64(&health.frames_failed));
    VQE_RETURN_NOT_OK(r.U64(&health.breaker_opens));
    VQE_RETURN_NOT_OK(r.F64(&health.fault_ms));
    result->model_availability.push_back(health);
  }
  VQE_RETURN_NOT_OK(r.U64(&result->fallback_frames));
  VQE_RETURN_NOT_OK(r.U64(&result->failed_frames));
  VQE_RETURN_NOT_OK(r.U64(&result->skip.skipped_frames));
  VQE_RETURN_NOT_OK(r.U64(&result->skip.detect_frames));
  VQE_RETURN_NOT_OK(r.U64(&result->skip.forced_detects));
  VQE_RETURN_NOT_OK(r.F64(&result->skip.propagated_ap_sum));
  result->frames_processed = static_cast<size_t>(frames_processed);
  return Status::OK();
}

}  // namespace vqe
