// Ensemble identifiers: an ensemble S ⊆ M is a bitmask over the model pool
// (bit i set = model i participates). The whole candidate space of the
// paper, {S : S ⊆ M, S ≠ ∅}, is the masks 1 .. 2^m − 1.

#ifndef VQE_CORE_ENSEMBLE_ID_H_
#define VQE_CORE_ENSEMBLE_ID_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace vqe {

/// Bitmask ensemble identifier. Mask 0 (the empty ensemble) is never a
/// valid selection.
using EnsembleId = uint32_t;

/// Largest supported pool size (2^20 − 1 ensembles).
inline constexpr int kMaxPoolSize = 20;

/// The ensemble containing all m models.
inline EnsembleId FullEnsemble(int m) {
  return (EnsembleId{1} << m) - 1;
}

/// Number of candidate ensembles for a pool of m models: 2^m − 1.
inline uint32_t NumEnsembles(int m) { return FullEnsemble(m); }

/// Number of models in the ensemble.
inline int EnsembleSize(EnsembleId id) { return std::popcount(id); }

/// True when model `i` participates in `id`.
inline bool ContainsModel(EnsembleId id, int i) {
  return (id >> i) & 1u;
}

/// True when every model of `a` is also in `b`.
inline bool IsSubsetOf(EnsembleId a, EnsembleId b) { return (a & b) == a; }

/// The singleton ensemble {model i}.
inline EnsembleId Singleton(int i) { return EnsembleId{1} << i; }

/// All candidate ensembles 1 .. 2^m − 1, ascending.
std::vector<EnsembleId> AllEnsembles(int m);

/// All non-empty subsets of `mask`, including `mask` itself, in the
/// standard descending sub-mask order.
std::vector<EnsembleId> SubsetsOf(EnsembleId mask);

/// Calls fn(sub) for every non-empty subset of `mask` (including `mask`),
/// allocation-free.
template <typename Fn>
inline void ForEachSubset(EnsembleId mask, Fn&& fn) {
  for (EnsembleId sub = mask; sub != 0; sub = (sub - 1) & mask) {
    fn(sub);
  }
}

/// Indices of the models in the ensemble, ascending.
std::vector<int> EnsembleModels(EnsembleId id);

/// Human-readable name, e.g. "{yolov7-tiny@clear, yolov7@clear}".
std::string EnsembleName(EnsembleId id,
                         const std::vector<std::string>& model_names);

}  // namespace vqe

#endif  // VQE_CORE_ENSEMBLE_ID_H_
