// MES (Alg. 1), its ablation MES-A, and SW-MES (§3.3).
//
// MES is a UCB1-style bandit over the 2^m − 1 candidate ensembles with one
// structural twist: when ensemble Ĝ is selected and its models run, every
// subset of Ĝ is also evaluated essentially for free (per-model outputs are
// reused; only the cheap box fusion re-runs), so one pull updates 2^|Ĝ| − 1
// arms. MES-A removes the subset updates (the paper's ablation, Fig. 8).
// SW-MES replaces the cumulative statistics with a sliding window of λ
// frames, adapting to abrupt concept drift (Eq. 15/16).
//
// MES-B (Alg. 2) is MES run under the engine's time budget: the selection
// rule is identical and the budget accounting (Eq. 12/14) lives in the
// engine, which stops the run when the budget is exhausted.

#ifndef VQE_CORE_MES_H_
#define VQE_CORE_MES_H_

#include "common/status.h"
#include "core/arm_stats.h"
#include "core/strategy.h"

namespace vqe {

/// Tuning of MES / MES-A.
struct MesOptions {
  /// γ: number of initialization frames on which *all* ensembles are
  /// evaluated (Alg. 1 lines 2-3). Must be >= 1.
  size_t gamma = 10;
  /// When false, skips the subset updates of Alg. 1 lines 9-10 — the MES-A
  /// ablation.
  bool subset_updates = true;
  /// Multiplier on the exploration bonus sqrt(2 ln t / T_S). 1.0 is the
  /// paper's UCB1 bonus, derived from Hoeffding on [0,1]-bounded rewards;
  /// per-frame scores concentrate far more tightly (empirical sd ≈ 0.1),
  /// so variance-aware deployments shrink the bonus (cf. UCB-tuned).
  double exploration_scale = 1.0;

  Status Validate() const {
    if (gamma < 1) return Status::InvalidArgument("gamma must be >= 1");
    if (exploration_scale <= 0.0) {
      return Status::InvalidArgument("exploration_scale must be positive");
    }
    return Status::OK();
  }
};

/// MES (Alg. 1). With subset_updates=false this is the MES-A ablation.
class MesStrategy : public SelectionStrategy {
 public:
  explicit MesStrategy(MesOptions options = {});

  const std::string& name() const override { return name_; }
  void BeginVideo(const StrategyContext& ctx) override;
  EnsembleId Select(size_t t) override;
  void Observe(const FrameFeedback& feedback) override;
  Status SaveState(ByteWriter& writer) const override;
  Status RestoreState(ByteReader& reader) override;

  /// Exposes T_S for tests/diagnostics.
  const ArmStats& stats() const { return stats_; }

 private:
  MesOptions options_;
  std::string name_;
  int num_models_ = 0;
  ArmStats stats_;
};

/// Tuning of SW-MES.
struct SwMesOptions {
  /// γ: initialization frames, as in MES.
  size_t gamma = 10;
  /// λ: sliding-window length in frames. Must be >= 2. The paper's
  /// analysis picks λ = sqrt(n log n / ξ) for n frames and ξ breakpoints.
  size_t window = 400;
  /// Exploration-bonus multiplier; see MesOptions::exploration_scale.
  double exploration_scale = 1.0;
  /// Minimum number of full-information probe frames kept inside the
  /// window. A probe selects the full pool M, whose subset updates refresh
  /// *every* arm's window statistics in one frame (the reuse of Alg. 1
  /// lines 9-10 applied to exploration): this replaces the per-arm forced
  /// re-exploration of vanilla SW-UCB, which costs 2^m − 1 pulls per
  /// window. 0 disables scheduled probing (stale arms are then refreshed
  /// lazily via the union rule).
  size_t min_probes = 8;

  Status Validate() const {
    if (gamma < 1) return Status::InvalidArgument("gamma must be >= 1");
    if (window < 2) return Status::InvalidArgument("window must be >= 2");
    if (exploration_scale <= 0.0) {
      return Status::InvalidArgument("exploration_scale must be positive");
    }
    return Status::OK();
  }
};

/// SW-MES (§3.3): sliding-window UCB over ensembles.
class SwMesStrategy : public SelectionStrategy {
 public:
  explicit SwMesStrategy(SwMesOptions options = {});

  const std::string& name() const override { return name_; }
  void BeginVideo(const StrategyContext& ctx) override;
  EnsembleId Select(size_t t) override;
  void Observe(const FrameFeedback& feedback) override;
  Status SaveState(ByteWriter& writer) const override;
  Status RestoreState(ByteReader& reader) override;

  const SlidingWindowArmStats& stats() const { return stats_; }

 private:
  SwMesOptions options_;
  std::string name_;
  int num_models_ = 0;
  size_t last_probe_ = 0;
  SlidingWindowArmStats stats_;
};

/// Window choice from Theorem 4.4: λ = sqrt(n·log(n)/ξ), clamped to
/// [16, n]. ξ = 0 (no drift) falls back to n (no forgetting).
size_t TheoreticalWindow(size_t num_frames, size_t num_breakpoints);

}  // namespace vqe

#endif  // VQE_CORE_MES_H_
