// The comparison strategies of §5.3: OPT (oracle), BF (brute force — always
// the full ensemble), SGL (best single detector), RAND, and EF
// (explore-first multi-armed bandit).

#ifndef VQE_CORE_BASELINES_H_
#define VQE_CORE_BASELINES_H_

#include "common/rng.h"
#include "core/strategy.h"

namespace vqe {

/// OPT: an oracle that selects argmax_S r_{S|v} (true score) per frame —
/// the best any strategy can do; requires oracle access.
class OptStrategy : public SelectionStrategy {
 public:
  const std::string& name() const override {
    static const std::string kName = "OPT";
    return kName;
  }
  void BeginVideo(const StrategyContext& ctx) override;
  EnsembleId Select(size_t t) override;
  void Observe(const FrameFeedback&) override {}
  bool UsesReferenceModel() const override { return false; }
  /// The per-frame oracle argmax scans every mask: eager wins.
  bool needs_full_lattice() const override { return true; }

 private:
  const OracleView* oracle_ = nullptr;
  int num_models_ = 0;
};

/// BF: always runs the full ensemble M.
class BruteForceStrategy : public SelectionStrategy {
 public:
  const std::string& name() const override {
    static const std::string kName = "BF";
    return kName;
  }
  void BeginVideo(const StrategyContext& ctx) override {
    num_models_ = ctx.num_models;
  }
  EnsembleId Select(size_t) override { return EligibleMask(num_models_); }
  void Observe(const FrameFeedback&) override {}
  bool UsesReferenceModel() const override { return false; }
  /// Selecting M every frame makes its subset lattice the whole candidate
  /// space — laziness saves nothing, so keep the eager batch build.
  bool needs_full_lattice() const override { return true; }

 private:
  int num_models_ = 0;
};

/// SGL: always runs the single detector that is most accurate on average
/// over the whole video (an oracle calibration, per the paper's setup).
class SingleBestStrategy : public SelectionStrategy {
 public:
  const std::string& name() const override {
    static const std::string kName = "SGL";
    return kName;
  }
  void BeginVideo(const StrategyContext& ctx) override;
  EnsembleId Select(size_t t) override;
  void Observe(const FrameFeedback&) override {}
  bool UsesReferenceModel() const override { return false; }
  Status SaveState(ByteWriter& writer) const override;
  Status RestoreState(ByteReader& reader) override;

 private:
  int num_models_ = 0;
  EnsembleId choice_ = 1;
  /// Summed true AP per singleton (BeginVideo calibration), for degrading
  /// to the best eligible detector when the choice's breaker is open.
  std::vector<double> singleton_ap_;
};

/// RAND: a uniformly random ensemble per frame.
class RandomStrategy : public SelectionStrategy {
 public:
  const std::string& name() const override {
    static const std::string kName = "RAND";
    return kName;
  }
  void BeginVideo(const StrategyContext& ctx) override;
  EnsembleId Select(size_t t) override;
  void Observe(const FrameFeedback&) override {}
  bool UsesReferenceModel() const override { return false; }
  Status SaveState(ByteWriter& writer) const override;
  Status RestoreState(ByteReader& reader) override;

 private:
  int num_models_ = 0;
  Rng rng_;
};

/// EF: Explore-First MAB (§5.3) — a *generic* multi-armed-bandit baseline
/// that treats each ensemble as an independent arm: it applies each of the
/// 2^m − 1 ensembles to δ_EF frames in turn, then commits to the best
/// estimated arm for the rest of the video. Unlike MES it neither reuses
/// model outputs across arms nor keeps learning after commitment.
class ExploreFirstStrategy : public SelectionStrategy {
 public:
  explicit ExploreFirstStrategy(size_t frames_per_arm = 2);

  const std::string& name() const override {
    static const std::string kName = "EF";
    return kName;
  }
  void BeginVideo(const StrategyContext& ctx) override;
  EnsembleId Select(size_t t) override;
  void Observe(const FrameFeedback& feedback) override;
  Status SaveState(ByteWriter& writer) const override;
  Status RestoreState(ByteReader& reader) override;

 private:
  size_t frames_per_arm_;
  size_t explore_frames_ = 0;  // frames_per_arm_ * (2^m - 1)
  int num_models_ = 0;
  std::vector<double> sum_;
  std::vector<uint64_t> count_;
  EnsembleId committed_ = 0;
};

}  // namespace vqe

#endif  // VQE_CORE_BASELINES_H_
