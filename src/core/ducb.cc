#include "core/ducb.h"

#include <cmath>
#include <limits>

namespace vqe {

DucbMesStrategy::DucbMesStrategy(DucbOptions options)
    : options_(options), name_("D-MES") {}

void DucbMesStrategy::BeginVideo(const StrategyContext& ctx) {
  num_models_ = ctx.num_models;
  last_probe_ = 0;
  const size_t n = NumEnsembles(num_models_) + 1;
  count_.assign(n, 0.0);
  sum_.assign(n, 0.0);
}

EnsembleId DucbMesStrategy::Select(size_t t) {
  const EnsembleId full = FullEnsemble(num_models_);
  const EnsembleId eligible = EligibleMask(num_models_);
  if (t < options_.gamma) return eligible;

  if (options_.probe_interval > 0 &&
      t >= last_probe_ + options_.probe_interval) {
    last_probe_ = t;
    return eligible;
  }

  // D-UCB: U_S = μ̃_S + ς·sqrt(2 ln N_t / T̃_S) with discounted counts; N_t
  // is the total discounted number of observations.
  double total = 0.0;
  for (EnsembleId s = 1; s <= full; ++s) total += count_[s];
  const double log_n = std::log(std::max(total, 2.0));

  EnsembleId best = 0;
  double best_u = -std::numeric_limits<double>::infinity();
  for (EnsembleId s = 1; s <= full; ++s) {
    if (!IsSubsetOf(s, eligible)) continue;
    double u;
    if (count_[s] <= 1e-9) {
      u = std::numeric_limits<double>::infinity();
    } else {
      u = sum_[s] / count_[s] +
          options_.exploration_scale * std::sqrt(2.0 * log_n / count_[s]);
    }
    if (u > best_u) {
      best_u = u;
      best = s;
    }
  }
  return best == 0 ? eligible : best;
}

Status DucbMesStrategy::SaveState(ByteWriter& writer) const {
  writer.U64(last_probe_);
  WriteVecF64(writer, count_);
  WriteVecF64(writer, sum_);
  return Status::OK();
}

Status DucbMesStrategy::RestoreState(ByteReader& reader) {
  uint64_t last_probe = 0;
  std::vector<double> count, sum;
  VQE_RETURN_NOT_OK(reader.U64(&last_probe));
  VQE_RETURN_NOT_OK(ReadVecF64(reader, &count));
  VQE_RETURN_NOT_OK(ReadVecF64(reader, &sum));
  if (count.size() != count_.size() || sum.size() != sum_.size()) {
    return Status::DataLoss("D-MES arm-count mismatch");
  }
  last_probe_ = static_cast<size_t>(last_probe);
  count_ = std::move(count);
  sum_ = std::move(sum);
  return Status::OK();
}

void DucbMesStrategy::Observe(const FrameFeedback& feedback) {
  // Geometric decay of all arms, then credit the observed subsets.
  for (size_t s = 1; s < count_.size(); ++s) {
    count_[s] *= options_.discount;
    sum_[s] *= options_.discount;
  }
  const std::vector<double>& est = *feedback.est_score;
  ForEachSubset(feedback.CreditMask(), [&](EnsembleId sub) {
    count_[sub] += 1.0;
    sum_[sub] += est[sub];
  });
}

}  // namespace vqe
