#include "core/lazy_frame_evaluator.h"

#include <utility>

namespace vqe {

Result<std::unique_ptr<LazyFrameEvaluator>> LazyFrameEvaluator::Create(
    Video video, const DetectorPool& pool, uint64_t trial_seed,
    const MatrixOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  if (pool.detectors.empty()) {
    return Status::InvalidArgument("detector pool is empty");
  }
  if (pool.detectors.size() > static_cast<size_t>(kMaxPoolSize)) {
    return Status::InvalidArgument("detector pool exceeds kMaxPoolSize");
  }
  if (pool.reference == nullptr) {
    return Status::InvalidArgument("pool has no reference model");
  }
  VQE_ASSIGN_OR_RETURN(auto fusion,
                       CreateEnsembleMethod(options.fusion,
                                            options.fusion_options));
  return std::unique_ptr<LazyFrameEvaluator>(new LazyFrameEvaluator(
      std::move(video), pool, trial_seed, options, std::move(fusion)));
}

LazyFrameEvaluator::LazyFrameEvaluator(Video video, const DetectorPool& pool,
                                       uint64_t trial_seed,
                                       const MatrixOptions& options,
                                       std::unique_ptr<EnsembleMethod> fusion)
    : video_(std::move(video)),
      pool_(&pool),
      trial_seed_(trial_seed),
      options_(options),
      fusion_(std::move(fusion)) {
  slots_.resize(video_.size());
}

LazyFrameEvaluator::FrameSlot& LazyFrameEvaluator::Touch(size_t t) {
  FrameSlot& slot = slots_[t];
  if (slot.ctx == nullptr) {
    // A slot restored from a snapshot already has its memo (non-empty) but
    // no detector context; re-creating the context is deterministic, and
    // the frame was already counted as touched in the restored counters.
    const bool first_touch = slot.memo.empty();
    slot.ctx = std::make_unique<FrameEvalContext>(
        video_.frames[t], *pool_, trial_seed_, options_, *fusion_);
    slot.max_cost_ms = slot.ctx->FullEnsembleCostMs();
    if (first_touch) {
      const uint32_t num_masks = num_ensembles();
      slot.memo.resize(num_masks + 1);
      slot.known.assign(num_masks + 1, 0);
      ++frames_touched_;
    }
  }
  return slot;
}

FrameStats LazyFrameEvaluator::Stats(size_t t) {
  FrameSlot& slot = Touch(t);
  FrameStats stats;
  stats.context = video_.frames[t].context;
  stats.model_cost_ms = &slot.ctx->model_cost_ms();
  stats.ref_cost_ms = slot.ctx->ref_cost_ms();
  stats.max_cost_ms = slot.max_cost_ms;
  stats.available_mask = slot.ctx->available_mask();
  stats.model_fault_ms = &slot.ctx->model_fault_ms();
  stats.fault_aware = true;
  return stats;
}

MaskEvaluation LazyFrameEvaluator::Eval(size_t t, EnsembleId mask) {
  // Known cells are served straight from the memo — including cells
  // restored from a snapshot, whose slot has no detector context yet.
  FrameSlot& cached = slots_[t];
  if (!cached.memo.empty() && cached.known[mask]) {
    ++memo_hits_;
    return cached.memo[mask];
  }
  FrameSlot& slot = Touch(t);
  slot.memo[mask] = slot.ctx->Evaluate(mask);
  slot.known[mask] = 1;
  ++masks_materialized_;
  return slot.memo[mask];
}

Result<double> LazyFrameEvaluator::ScorePropagated(size_t t,
                                                   const DetectionList& dets) {
  const GroundTruthIndex index =
      BuildGroundTruthIndex(video_.frames[t].objects);
  return FrameMeanAp(dets, index, options_.ap);
}

const DetectionList* LazyFrameEvaluator::FusedOutput(size_t t,
                                                     EnsembleId mask) {
  FrameSlot& slot = Touch(t);
  // The scalar cell may already be memoized (the engine evaluates the
  // realized mask's subset lattice first); Evaluate is re-run regardless
  // because the memo keeps no boxes. One extra fusion per detect frame,
  // dwarfed by the m detector calls the frame already paid.
  slot.ctx->Evaluate(mask, &fused_buf_);
  return &fused_buf_;
}

Status LazyFrameEvaluator::SaveState(ByteWriter& writer) const {
  writer.U64(frames_touched_);
  writer.U64(masks_materialized_);
  writer.U64(memo_hits_);
  uint64_t populated = 0;
  for (const FrameSlot& slot : slots_) {
    if (!slot.memo.empty()) ++populated;
  }
  writer.U64(populated);
  for (size_t t = 0; t < slots_.size(); ++t) {
    const FrameSlot& slot = slots_[t];
    if (slot.memo.empty()) continue;
    writer.U64(t);
    writer.F64(slot.max_cost_ms);
    uint64_t known = 0;
    for (uint8_t k : slot.known) known += k;
    writer.U64(known);
    for (uint32_t mask = 1; mask < slot.known.size(); ++mask) {
      if (!slot.known[mask]) continue;
      const MaskEvaluation& e = slot.memo[mask];
      writer.U32(mask);
      writer.F64(e.est_ap);
      writer.F64(e.true_ap);
      writer.F64(e.cost_ms);
      writer.F64(e.fusion_overhead_ms);
    }
  }
  return Status::OK();
}

Status LazyFrameEvaluator::RestoreState(ByteReader& reader) {
  uint64_t frames_touched = 0, masks_materialized = 0, memo_hits = 0, populated = 0;
  VQE_RETURN_NOT_OK(reader.U64(&frames_touched));
  VQE_RETURN_NOT_OK(reader.U64(&masks_materialized));
  VQE_RETURN_NOT_OK(reader.U64(&memo_hits));
  VQE_RETURN_NOT_OK(reader.U64(&populated));
  if (populated > slots_.size()) {
    return Status::DataLoss("lazy memo frame count exceeds video length");
  }
  const uint32_t num_masks = num_ensembles();
  std::vector<FrameSlot> slots(slots_.size());
  for (uint64_t i = 0; i < populated; ++i) {
    uint64_t t = 0, known = 0;
    double max_cost_ms = 0;
    VQE_RETURN_NOT_OK(reader.U64(&t));
    VQE_RETURN_NOT_OK(reader.F64(&max_cost_ms));
    VQE_RETURN_NOT_OK(reader.U64(&known));
    if (t >= slots.size()) {
      return Status::DataLoss("lazy memo frame index out of range");
    }
    FrameSlot& slot = slots[t];
    if (!slot.memo.empty()) {
      return Status::DataLoss("duplicate lazy memo frame");
    }
    if (known > num_masks) {
      return Status::DataLoss("lazy memo known-mask count out of range");
    }
    slot.max_cost_ms = max_cost_ms;
    slot.memo.resize(num_masks + 1);
    slot.known.assign(num_masks + 1, 0);
    for (uint64_t k = 0; k < known; ++k) {
      uint32_t mask = 0;
      MaskEvaluation e;
      VQE_RETURN_NOT_OK(reader.U32(&mask));
      VQE_RETURN_NOT_OK(reader.F64(&e.est_ap));
      VQE_RETURN_NOT_OK(reader.F64(&e.true_ap));
      VQE_RETURN_NOT_OK(reader.F64(&e.cost_ms));
      VQE_RETURN_NOT_OK(reader.F64(&e.fusion_overhead_ms));
      if (mask == 0 || mask > num_masks) {
        return Status::DataLoss("lazy memo mask out of range");
      }
      if (slot.known[mask]) {
        return Status::DataLoss("duplicate lazy memo mask");
      }
      slot.memo[mask] = e;
      slot.known[mask] = 1;
    }
  }
  slots_ = std::move(slots);
  frames_touched_ = static_cast<size_t>(frames_touched);
  masks_materialized_ = masks_materialized;
  memo_hits_ = memo_hits;
  return Status::OK();
}

}  // namespace vqe
