#include "core/lazy_frame_evaluator.h"

#include <utility>

namespace vqe {

Result<std::unique_ptr<LazyFrameEvaluator>> LazyFrameEvaluator::Create(
    Video video, const DetectorPool& pool, uint64_t trial_seed,
    const MatrixOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  if (pool.detectors.empty()) {
    return Status::InvalidArgument("detector pool is empty");
  }
  if (pool.detectors.size() > static_cast<size_t>(kMaxPoolSize)) {
    return Status::InvalidArgument("detector pool exceeds kMaxPoolSize");
  }
  if (pool.reference == nullptr) {
    return Status::InvalidArgument("pool has no reference model");
  }
  VQE_ASSIGN_OR_RETURN(auto fusion,
                       CreateEnsembleMethod(options.fusion,
                                            options.fusion_options));
  return std::unique_ptr<LazyFrameEvaluator>(new LazyFrameEvaluator(
      std::move(video), pool, trial_seed, options, std::move(fusion)));
}

LazyFrameEvaluator::LazyFrameEvaluator(Video video, const DetectorPool& pool,
                                       uint64_t trial_seed,
                                       const MatrixOptions& options,
                                       std::unique_ptr<EnsembleMethod> fusion)
    : video_(std::move(video)),
      pool_(&pool),
      trial_seed_(trial_seed),
      options_(options),
      fusion_(std::move(fusion)) {
  slots_.resize(video_.size());
}

LazyFrameEvaluator::FrameSlot& LazyFrameEvaluator::Touch(size_t t) {
  FrameSlot& slot = slots_[t];
  if (slot.ctx == nullptr) {
    slot.ctx = std::make_unique<FrameEvalContext>(
        video_.frames[t], *pool_, trial_seed_, options_, *fusion_);
    slot.max_cost_ms = slot.ctx->FullEnsembleCostMs();
    const uint32_t num_masks = num_ensembles();
    slot.memo.resize(num_masks + 1);
    slot.known.assign(num_masks + 1, 0);
    ++frames_touched_;
  }
  return slot;
}

FrameStats LazyFrameEvaluator::Stats(size_t t) {
  FrameSlot& slot = Touch(t);
  FrameStats stats;
  stats.context = video_.frames[t].context;
  stats.model_cost_ms = &slot.ctx->model_cost_ms();
  stats.ref_cost_ms = slot.ctx->ref_cost_ms();
  stats.max_cost_ms = slot.max_cost_ms;
  stats.available_mask = slot.ctx->available_mask();
  stats.model_fault_ms = &slot.ctx->model_fault_ms();
  stats.fault_aware = true;
  return stats;
}

MaskEvaluation LazyFrameEvaluator::Eval(size_t t, EnsembleId mask) {
  FrameSlot& slot = Touch(t);
  if (!slot.known[mask]) {
    slot.memo[mask] = slot.ctx->Evaluate(mask);
    slot.known[mask] = 1;
    ++masks_materialized_;
  } else {
    ++memo_hits_;
  }
  return slot.memo[mask];
}

}  // namespace vqe
