// The evaluation abstraction the engine runs strategies against. Two
// implementations exist:
//
//   * MatrixEvaluationSource — a view over an eagerly built FrameMatrix
//     (all 2^m − 1 masks per frame). Still the right backend for
//     strategies that read the whole lattice anyway (OPT's oracle scan,
//     BF's full-pool selection), for regret measurement, for the Figure 3
//     per-ensemble aggregates and for matrix serialization.
//
//   * LazyFrameEvaluator (core/lazy_frame_evaluator.h) — materializes a
//     ⟨est_ap, true_ap, cost, overhead⟩ cell on first access, memoized
//     per (frame, mask). Online strategies (MES family, SGL, RAND, EF)
//     only ever touch the subset lattices of their selections, so runs
//     cost O(|V|·2^|S|) fusions instead of O(|V|·2^m).
//
// Both run mask evaluations through the same FrameEvalContext kernel, so
// every value a strategy can observe is bit-identical across sources.

#ifndef VQE_CORE_EVALUATION_SOURCE_H_
#define VQE_CORE_EVALUATION_SOURCE_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "core/ensemble_id.h"
#include "core/frame_eval.h"
#include "core/frame_matrix.h"
#include "snapshot/wire.h"

namespace vqe {

/// Per-frame scalars the engine needs besides mask cells: the scene
/// context, per-model inference costs, the reference-model cost, and the
/// cost normalizer max_S c_{S|v}.
struct FrameStats {
  SceneContext context = SceneContext::kClear;
  /// Per-model inference cost c_{M_i|v}, ms (size m); owned by the source.
  const std::vector<double>* model_cost_ms = nullptr;
  double ref_cost_ms = 0.0;
  /// max_S c_{S|v}: the normalizer of ĉ (§5.4).
  double max_cost_ms = 0.0;
  /// Models whose call succeeded on this frame; meaningful only when
  /// fault_aware (the engine otherwise assumes every model answered).
  EnsembleId available_mask = 0;
  /// Per-model wasted time (failed attempts + backoff), or nullptr when the
  /// source predates fault accounting.
  const std::vector<double>* model_fault_ms = nullptr;
  /// True when this source ran the fault-aware detector pipeline.
  bool fault_aware = false;
};

/// A source of per-(frame, mask) evaluations. Accessors are non-const
/// because lazy implementations materialize on read; values are pure
/// functions of (frame, mask), so reads are idempotent and read order
/// never changes what any caller observes.
class EvaluationSource {
 public:
  virtual ~EvaluationSource() = default;

  virtual int num_models() const = 0;
  virtual size_t num_frames() const = 0;
  uint32_t num_ensembles() const { return NumEnsembles(num_models()); }

  /// Frame-level scalars (materializes the frame on lazy sources).
  virtual FrameStats Stats(size_t t) = 0;

  /// One mask's cell on frame t. `mask` must be in [1, num_ensembles()].
  virtual MaskEvaluation Eval(size_t t, EnsembleId mask) = 0;

  /// Frame t's scene context WITHOUT materializing the frame. The
  /// temporal skip gate consults this before deciding skip-vs-detect; a
  /// lazy source must answer it from video metadata alone, since running
  /// the detectors to decide whether to skip them defeats the skip.
  virtual SceneContext PeekContext(size_t t) { return Stats(t).context; }

  /// True when the source implements the temporal-propagation hooks below
  /// (ScorePropagated, FusedOutput). EngineRun::Create rejects
  /// skip-enabled runs on sources that do not.
  virtual bool SupportsPropagation() const { return false; }

  /// AP of caller-provided (tracker-propagated) detections against frame
  /// t's ground truth, on the same ApOptions scale as every true_ap cell —
  /// the skipped frame's accuracy accounting. Runs no detector.
  virtual Result<double> ScorePropagated(size_t t,
                                         const DetectionList& dets) {
    (void)t;
    (void)dets;
    return Status::FailedPrecondition(
        "evaluation source does not support temporal propagation");
  }

  /// Fused DetectionList of `mask` on frame t (the boxes behind the
  /// Eval cell), for tracker ingest on detect frames. nullptr when
  /// unsupported; otherwise valid until the next call on this source.
  virtual const DetectionList* FusedOutput(size_t t, EnsembleId mask) {
    (void)t;
    (void)mask;
    return nullptr;
  }

  /// Frame t's ⟨true_ap, cost⟩ Pareto frontier for the engine's regret
  /// scan: non-null but possibly empty means "not cached: scan every
  /// mask" (hand-built matrices); nullptr means the source cannot offer
  /// one without materializing the full lattice (lazy sources) — the
  /// engine then falls back to the exhaustive scan, which defeats
  /// laziness; runs that want lazy asymptotics disable regret instead
  /// (EngineOptions::compute_regret).
  virtual const std::vector<EnsembleId>* TrueFrontier(size_t t) = 0;

  /// Serializes whatever cached evaluation state is worth carrying across
  /// a restart. Cells are pure functions of (frame, mask), so this is a
  /// cache-warmth/accounting concern, never a correctness one; the default
  /// (and the eager matrix view, which is rebuilt deterministically) writes
  /// nothing.
  virtual Status SaveState(ByteWriter& writer) const {
    (void)writer;
    return Status::OK();
  }

  /// Restores a SaveState payload; DataLoss on malformed bytes.
  virtual Status RestoreState(ByteReader& reader) {
    (void)reader;
    return Status::OK();
  }
};

/// Eager source: a non-owning view over a fully built FrameMatrix.
class MatrixEvaluationSource final : public EvaluationSource {
 public:
  explicit MatrixEvaluationSource(const FrameMatrix& matrix)
      : matrix_(&matrix) {}

  int num_models() const override { return matrix_->num_models; }
  size_t num_frames() const override { return matrix_->size(); }

  FrameStats Stats(size_t t) override {
    const FrameEvaluation& fe = matrix_->frames[t];
    FrameStats stats;
    stats.context = fe.context;
    stats.model_cost_ms = &fe.model_cost_ms;
    stats.ref_cost_ms = fe.ref_cost_ms;
    stats.max_cost_ms = fe.max_cost_ms;
    stats.available_mask = fe.available_mask;
    stats.model_fault_ms = fe.model_fault_ms.empty() ? nullptr
                                                     : &fe.model_fault_ms;
    stats.fault_aware = fe.fault_aware;
    return stats;
  }

  MaskEvaluation Eval(size_t t, EnsembleId mask) override {
    const FrameEvaluation& fe = matrix_->frames[t];
    MaskEvaluation e;
    e.est_ap = fe.est_ap[mask];
    e.true_ap = fe.true_ap[mask];
    e.cost_ms = fe.cost_ms[mask];
    e.fusion_overhead_ms = fe.fusion_overhead_ms[mask];
    return e;
  }

  const std::vector<EnsembleId>* TrueFrontier(size_t t) override {
    return &matrix_->frames[t].best_true_candidates;
  }

  SceneContext PeekContext(size_t t) override {
    return matrix_->frames[t].context;
  }

  /// Only matrices built with keep_temporal_outputs carry the ground
  /// truth and fused boxes the gate needs.
  bool SupportsPropagation() const override {
    return matrix_->temporal_outputs;
  }

  Result<double> ScorePropagated(size_t t,
                                 const DetectionList& dets) override {
    if (!matrix_->temporal_outputs) {
      return Status::FailedPrecondition(
          "matrix built without keep_temporal_outputs");
    }
    const GroundTruthIndex index =
        BuildGroundTruthIndex(matrix_->frames[t].gt_objects);
    return FrameMeanAp(dets, index, matrix_->ap);
  }

  const DetectionList* FusedOutput(size_t t, EnsembleId mask) override {
    if (!matrix_->temporal_outputs) return nullptr;
    return &matrix_->frames[t].fused[mask];
  }

  const FrameMatrix& matrix() const { return *matrix_; }

 private:
  const FrameMatrix* matrix_;
};

/// Eager source that OWNS its matrix. The serving layer's StreamSessions
/// (and anything else that hands a source off to another component) need
/// the backing storage to travel with the source instead of referencing a
/// caller-owned matrix.
class OwningMatrixSource final : public EvaluationSource {
 public:
  explicit OwningMatrixSource(FrameMatrix matrix)
      : matrix_(std::move(matrix)), view_(matrix_) {}

  int num_models() const override { return view_.num_models(); }
  size_t num_frames() const override { return view_.num_frames(); }
  FrameStats Stats(size_t t) override { return view_.Stats(t); }
  MaskEvaluation Eval(size_t t, EnsembleId mask) override {
    return view_.Eval(t, mask);
  }
  const std::vector<EnsembleId>* TrueFrontier(size_t t) override {
    return view_.TrueFrontier(t);
  }
  SceneContext PeekContext(size_t t) override {
    return view_.PeekContext(t);
  }
  bool SupportsPropagation() const override {
    return view_.SupportsPropagation();
  }
  Result<double> ScorePropagated(size_t t,
                                 const DetectionList& dets) override {
    return view_.ScorePropagated(t, dets);
  }
  const DetectionList* FusedOutput(size_t t, EnsembleId mask) override {
    return view_.FusedOutput(t, mask);
  }

  const FrameMatrix& matrix() const { return matrix_; }

 private:
  FrameMatrix matrix_;  // must precede view_ (view borrows it)
  MatrixEvaluationSource view_;
};

}  // namespace vqe

#endif  // VQE_CORE_EVALUATION_SOURCE_H_
