// MES-B (Alg. 2): budget-aware ensemble selection for the TCVI problem.
//
// Under a hard time budget B, maximizing Σ scores is a knapsack whose
// greedy relaxation picks arms by *score per unit cost*. The paper's
// Theorem 4.3 accordingly adapts the UCB-BV analysis (Ding et al., "Multi-
// armed bandit with budget constraint and variable costs", AAAI 2013 —
// reference [21]); this strategy implements that selection rule:
//
//   D_S = ( μ̂_S + Γ_S ) / max(ĉ̂_S, ε),
//
// where μ̂_S and ĉ̂_S are the running mean estimated score and normalized
// cost of arm S, and Γ_S is the usual exploration bonus. Subset reuse
// (Alg. 1 lines 9-10) carries over unchanged. Budget accounting and the
// C <= B stopping rule live in the engine (EngineOptions::budget_ms).
//
// With no budget, plain MES remains the right choice: dividing by cost
// optimizes score-per-ms rather than score-per-frame.

#ifndef VQE_CORE_MES_B_H_
#define VQE_CORE_MES_B_H_

#include <vector>

#include "common/status.h"
#include "core/strategy.h"

namespace vqe {

/// Tuning of MES-B.
struct MesBOptions {
  /// γ: initialization frames on which the full pool runs (Alg. 2 lines
  /// 2-5; these charge Eq. (12) to the budget).
  size_t gamma = 10;
  /// Exploration-bonus multiplier, as in MesOptions.
  double exploration_scale = 1.0;
  /// Floor on the cost denominator (avoids division blow-ups while cost
  /// estimates warm up).
  double min_cost = 0.02;

  Status Validate() const {
    if (gamma < 1) return Status::InvalidArgument("gamma must be >= 1");
    if (exploration_scale <= 0.0) {
      return Status::InvalidArgument("exploration_scale must be positive");
    }
    if (min_cost <= 0.0 || min_cost > 1.0) {
      return Status::InvalidArgument("min_cost must be in (0, 1]");
    }
    return Status::OK();
  }
};

/// Budget-aware MES (UCB-BV-style ratio selection).
class MesBStrategy : public SelectionStrategy {
 public:
  explicit MesBStrategy(MesBOptions options = {});

  const std::string& name() const override { return name_; }
  void BeginVideo(const StrategyContext& ctx) override;
  EnsembleId Select(size_t t) override;
  void Observe(const FrameFeedback& feedback) override;
  Status SaveState(ByteWriter& writer) const override;
  Status RestoreState(ByteReader& reader) override;

  /// Mean observed normalized cost of an arm (diagnostics).
  double MeanCost(EnsembleId s) const {
    return count_[s] == 0 ? 0.0
                          : cost_sum_[s] / static_cast<double>(count_[s]);
  }

 private:
  MesBOptions options_;
  std::string name_;
  int num_models_ = 0;
  std::vector<uint64_t> count_;
  std::vector<double> score_sum_;
  std::vector<double> cost_sum_;
};

}  // namespace vqe

#endif  // VQE_CORE_MES_B_H_
