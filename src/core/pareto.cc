#include "core/pareto.h"

#include <algorithm>

namespace vqe {

bool Dominates(const EnsemblePoint& a, const EnsemblePoint& b) {
  const bool no_worse =
      a.avg_ap >= b.avg_ap && a.avg_norm_cost <= b.avg_norm_cost;
  const bool strictly_better =
      a.avg_ap > b.avg_ap || a.avg_norm_cost < b.avg_norm_cost;
  return no_worse && strictly_better;
}

std::vector<EnsemblePoint> EnsembleObjectives(const FrameMatrix& matrix) {
  const auto avg_ap = AverageTrueApPerEnsemble(matrix);
  const auto avg_cost = AverageNormCostPerEnsemble(matrix);
  std::vector<EnsemblePoint> points;
  const uint32_t num_masks = matrix.num_ensembles();
  points.reserve(num_masks);
  for (EnsembleId s = 1; s <= num_masks; ++s) {
    points.push_back(EnsemblePoint{s, avg_ap[s], avg_cost[s]});
  }
  return points;
}

std::vector<EnsemblePoint> ParetoFrontier(std::vector<EnsemblePoint> points) {
  // Sort by ascending cost, breaking ties by descending AP; sweep keeping
  // points whose AP strictly exceeds every cheaper point's AP.
  std::sort(points.begin(), points.end(),
            [](const EnsemblePoint& a, const EnsemblePoint& b) {
              if (a.avg_norm_cost != b.avg_norm_cost) {
                return a.avg_norm_cost < b.avg_norm_cost;
              }
              return a.avg_ap > b.avg_ap;
            });
  std::vector<EnsemblePoint> frontier;
  double best_ap = -1.0;
  for (const auto& p : points) {
    if (p.avg_ap > best_ap) {
      frontier.push_back(p);
      best_ap = p.avg_ap;
    }
  }
  return frontier;
}

}  // namespace vqe
