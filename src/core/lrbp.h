// LRBP (§3.2): linear-regression-based prediction of the extra budget
// B_extra needed to finish processing a video after the initial TCVI budget
// B is exhausted, fitted on the observed (iteration, cumulative cost) curve.

#ifndef VQE_CORE_LRBP_H_
#define VQE_CORE_LRBP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "common/status.h"

namespace vqe {

/// Outcome of an LRBP prediction.
struct LrbpPrediction {
  /// Predicted extra budget (same unit as the curve's costs) to process the
  /// remaining frames under the same selection strategy.
  double b_extra = 0.0;
  /// Predicted total cost of the whole video.
  double total_cost = 0.0;
  /// The underlying least-squares fit of cumulative cost over iterations.
  LinearFit fit;
};

/// Predicts B_extra from the cost curve recorded while processing V_B.
///
/// `cost_curve` holds (iteration t, cumulative cost C_t) pairs, t 1-based
/// and strictly increasing; `total_frames` is |V|. Returns InvalidArgument
/// when fewer than two points are available or total_frames is smaller
/// than the frames already processed.
///
/// `fit_tail_fraction` restricts the regression to the most recent part of
/// the curve (default: last half). MES's early iterations — full-pool
/// initialization and exploration — are systematically more expensive than
/// its converged behaviour, so extrapolating from the whole prefix
/// overestimates the remaining cost; the tail reflects the steady-state
/// per-frame cost the remaining frames will actually incur.
Result<LrbpPrediction> PredictExtraBudget(
    const std::vector<std::pair<size_t, double>>& cost_curve,
    size_t total_frames, double fit_tail_fraction = 0.5);

}  // namespace vqe

#endif  // VQE_CORE_LRBP_H_
