// Lazy, memoized evaluation source: the dual of Alg. 1's subset reuse.
// BuildFrameMatrix eagerly fuses and scores all 2^m − 1 masks per frame;
// online strategies (MES / MES-B / SW-MES / SGL / RAND / EF) only ever
// read the subset lattice of the mask they selected, so an eager build
// does exponentially more fusion work than the run observes. This source
// touches a frame's detectors on first access (model outputs are cached —
// the per-frame ModelOutputCache) and materializes a mask's
// ⟨est_ap, true_ap, cost, overhead⟩ cell on first read, memoized per
// (frame, mask); repeated reads — subset updates, window replays, oracle
// probes — are free.
//
// All evaluation goes through the same FrameEvalContext kernel as the
// eager build, so every materialized cell is bit-identical to the
// corresponding FrameMatrix entry. The cost normalizer max_S c_{S|v}
// needs no lattice scan: it is the full pool's cost, computable from the
// cached box counts alone (see FrameEvalContext::FullEnsembleCostMs).

#ifndef VQE_CORE_LAZY_FRAME_EVALUATOR_H_
#define VQE_CORE_LAZY_FRAME_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/evaluation_source.h"
#include "core/frame_eval.h"
#include "models/model_zoo.h"
#include "sim/video.h"

namespace vqe {

/// Lazy evaluation source over a sampled video. Owns the video; `pool`
/// must outlive the evaluator. Not thread-safe (the engine drives
/// strategies serially); distinct evaluators are independent.
class LazyFrameEvaluator final : public EvaluationSource {
 public:
  /// Validates exactly like BuildFrameMatrix (non-empty pool within
  /// kMaxPoolSize, reference model present, options ranges) but runs no
  /// detector: all work is deferred to first access.
  static Result<std::unique_ptr<LazyFrameEvaluator>> Create(
      Video video, const DetectorPool& pool, uint64_t trial_seed,
      const MatrixOptions& options = {});

  int num_models() const override {
    return static_cast<int>(pool_->detectors.size());
  }
  size_t num_frames() const override { return video_.size(); }

  FrameStats Stats(size_t t) override;
  MaskEvaluation Eval(size_t t, EnsembleId mask) override;
  /// Always nullptr: a true-score Pareto frontier requires the full
  /// lattice. Engine runs that need regret either use the eager matrix or
  /// accept the exhaustive (lattice-materializing) fallback.
  const std::vector<EnsembleId>* TrueFrontier(size_t) override {
    return nullptr;
  }

  /// Reads the sampled video's metadata — never touches the frame. This
  /// is what lets a skip-gated run decide a frame's fate for the cost of
  /// one byte read: the detectors only run if the gate says detect.
  SceneContext PeekContext(size_t t) override {
    return video_.frames[t].context;
  }

  /// The lazy source owns the video (ground truth included), so it can
  /// always score propagated boxes and extract fused outputs.
  bool SupportsPropagation() const override { return true; }

  /// Scores against the frame's ground truth directly from the owned
  /// video; runs no detector and does not materialize the frame.
  Result<double> ScorePropagated(size_t t,
                                 const DetectionList& dets) override;

  /// Materializes the frame (this IS the detect path's detector work) and
  /// fuses `mask` into a reused buffer, bypassing the memo counters: the
  /// boxes, not the scalars, are the product here.
  const DetectionList* FusedOutput(size_t t, EnsembleId mask) override;

  const Video& video() const { return video_; }

  /// Instrumentation: frames whose detectors have run.
  size_t frames_touched() const { return frames_touched_; }
  /// Distinct (frame, mask) cells fused and scored. An eager build does
  /// num_frames() · num_ensembles() of these; the gap is the work lazy
  /// evaluation skipped.
  uint64_t masks_materialized() const { return masks_materialized_; }
  /// Eval calls served from the memo without fusing.
  uint64_t memo_hits() const { return memo_hits_; }

  /// Serializes the memo (counters + every known cell per touched frame).
  /// Restored cells are served without re-running detectors; the detector
  /// context is re-created on demand only if an unknown mask or Stats()
  /// is requested for that frame (deterministic, so values match).
  Status SaveState(ByteWriter& writer) const override;
  Status RestoreState(ByteReader& reader) override;

 private:
  LazyFrameEvaluator(Video video, const DetectorPool& pool,
                     uint64_t trial_seed, const MatrixOptions& options,
                     std::unique_ptr<EnsembleMethod> fusion);

  struct FrameSlot {
    std::unique_ptr<FrameEvalContext> ctx;
    double max_cost_ms = 0.0;
    /// Memo indexed by mask (index 0 unused), allocated on frame touch.
    std::vector<MaskEvaluation> memo;
    std::vector<uint8_t> known;
  };

  /// Runs the frame's detectors on first access.
  FrameSlot& Touch(size_t t);

  Video video_;
  const DetectorPool* pool_;
  uint64_t trial_seed_;
  MatrixOptions options_;
  std::unique_ptr<EnsembleMethod> fusion_;
  std::vector<FrameSlot> slots_;
  size_t frames_touched_ = 0;
  uint64_t masks_materialized_ = 0;
  uint64_t memo_hits_ = 0;
  /// Reused FusedOutput buffer (valid until the next call).
  DetectionList fused_buf_;
};

}  // namespace vqe

#endif  // VQE_CORE_LAZY_FRAME_EVALUATOR_H_
