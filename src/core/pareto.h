// Pareto-optimal ensemble identification — the multi-objective extension
// the paper's §6 names as future work (the "second category" of MOQO
// approaches): instead of collapsing ⟨accuracy, cost⟩ into one score,
// report every ensemble not dominated on both axes.

#ifndef VQE_CORE_PARETO_H_
#define VQE_CORE_PARETO_H_

#include <vector>

#include "core/ensemble_id.h"
#include "core/frame_matrix.h"

namespace vqe {

/// One ensemble's position in objective space.
struct EnsemblePoint {
  EnsembleId id = 0;
  /// Average true AP over the video (higher is better).
  double avg_ap = 0.0;
  /// Average normalized inference cost (lower is better).
  double avg_norm_cost = 0.0;
};

/// True when `a` dominates `b`: a is no worse on both objectives and
/// strictly better on at least one.
bool Dominates(const EnsemblePoint& a, const EnsemblePoint& b);

/// Objective-space positions of all ensembles of a matrix (the ⟨ā_S, ĉ_S⟩
/// points of Figure 3).
std::vector<EnsemblePoint> EnsembleObjectives(const FrameMatrix& matrix);

/// The Pareto frontier (maximize AP, minimize cost) of a point set, sorted
/// by ascending cost. Duplicate-coordinate points are kept once.
std::vector<EnsemblePoint> ParetoFrontier(std::vector<EnsemblePoint> points);

}  // namespace vqe

#endif  // VQE_CORE_PARETO_H_
