// The ingestion engine: drives a selection strategy over a frame matrix,
// enforcing the information protocol (estimated rewards only for subsets of
// the selected ensemble), charging simulated time per Equations (1)/(12)/
// (14), enforcing the TCVI budget (Alg. 2), and recording every measurement
// of §5.5: s_sum, ā, ĉ, regret, selection distribution, time breakdown and
// the cumulative-cost curve LRBP consumes.

#ifndef VQE_CORE_ENGINE_H_
#define VQE_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "core/evaluation_source.h"
#include "obs/obs.h"
#include "core/frame_matrix.h"
#include "core/scoring.h"
#include "core/strategy.h"
#include "runtime/circuit_breaker.h"
#include "snapshot/checkpoint.h"
#include "temporal/gate.h"

namespace vqe {

/// Engine configuration for one run.
struct EngineOptions {
  ScoringFunction sc;
  /// TCVI time budget B in simulated ms; 0 means unrestricted (TUVI).
  /// Per Alg. 2, a frame is processed whenever C <= B still holds at the
  /// top of the loop, so consumption may overshoot by one frame.
  double budget_ms = 0.0;
  /// Seed forwarded to randomized strategies.
  uint64_t strategy_seed = 0;
  /// Record the (t, cumulative cost) curve for LRBP.
  bool record_cost_curve = false;
  /// Compute the per-frame regret baseline max_S r_{S*|v} (Eq. 17). The
  /// baseline reads the true score of *every* mask, so on a lazy source
  /// it forces full-lattice materialization (the engine falls back to an
  /// exhaustive scan when the source offers no Pareto frontier). Disable
  /// it to keep a lazy run's cost proportional to the selected subset
  /// lattices; RunResult::regret_available records the choice.
  bool compute_regret = true;
  /// Per-model circuit breakers over the run's frame clock: models whose
  /// selected-member calls keep failing are masked out of the strategy's
  /// candidate arms (SelectionStrategy::SetEligibleModels) until the
  /// breaker re-admits probes. Breaker trajectories depend only on the
  /// deterministic per-frame call outcomes, so runs stay bit-identical
  /// across worker counts and backends.
  CircuitBreakerOptions breaker;
  /// Crash-safe checkpointing: when enabled, the run writes an atomic,
  /// CRC-protected snapshot of all resumable state every
  /// `checkpoint.every_frames` frames and, on start, resumes from the
  /// newest good generation found in `checkpoint.directory`. Resumed runs
  /// are bit-identical to uninterrupted ones (wall-clock fields aside).
  CheckpointPolicy checkpoint;
  /// Temporal-coherence fast path: frames the gate deems redundant are
  /// answered by coasting confirmed tracks instead of running detectors,
  /// charging only SimulatedTrackerCostMs to the ledger. Requires an
  /// evaluation source with SupportsPropagation() when enabled. The
  /// default (!skip.enabled()) constructs no gate and leaves every code
  /// path byte-identical to a skip-free build.
  SkipOptions skip;
  /// Observability sink. Disabled by default: every instrumentation site
  /// is behind one `enabled()` branch and the frame loop performs zero
  /// extra allocations, so a run without obs is bit-identical to a build
  /// that never heard of it. When enabled, instrumentation only *reads*
  /// run state — observation never perturbs selection — and all
  /// simulated-domain counters it emits are deterministic across worker
  /// and shard counts. Like SetDegradation, the handle is a property of
  /// the process, not of the stream: it is absent from the identity
  /// fingerprint and from snapshots.
  ObsHandle obs;

  Status Validate() const;
};

/// Simulated/measured time decomposition of a run (Figure 13).
struct TimeBreakdown {
  /// Simulated camera-detector inference, ms.
  double detector_ms = 0.0;
  /// Simulated reference (LiDAR) inference, ms.
  double reference_ms = 0.0;
  /// Simulated box-fusion overhead c^e, ms.
  double ensembling_ms = 0.0;
  /// Simulated time wasted on faults: failed attempts, retry backoff,
  /// abandoned-deadline waits. Split out of detector_ms so degraded runs
  /// show where the budget went.
  double fault_ms = 0.0;
  /// Simulated tracker time of the temporal fast path: coasting tracks
  /// through skipped frames plus ingesting detect frames into the gate's
  /// tracker. Zero whenever skipping is disabled.
  double tracker_ms = 0.0;
  /// Real wall-clock spent in strategy Select/Observe, ms — the "other
  /// optimization components" share.
  double algorithm_ms = 0.0;

  /// Simulated frame-clock time only (detector + reference + ensembling +
  /// fault + tracker). This is the component that is additive across concurrent
  /// streams: when N sessions run in parallel, Σ SimulatedMs() is the
  /// total per-stream work regardless of overlap. algorithm_ms is real
  /// wall-clock — overlapping runs spend it concurrently, so summing it
  /// across sessions double-counts; report it (and any scheduler wall
  /// time) separately. ServeStats and StrategyOutcome keep the two
  /// ledgers apart for exactly this reason.
  double SimulatedMs() const {
    return detector_ms + reference_ms + ensembling_ms + fault_ms +
           tracker_ms;
  }

  /// SimulatedMs() + algorithm_ms — meaningful for ONE run in isolation
  /// (the Figure 13 single-run breakdown), where the wall-clock share is
  /// serial with the simulated work by construction. Do not sum across
  /// concurrent runs; use SimulatedMs() plus a separately measured wall
  /// clock instead.
  double TotalMs() const { return SimulatedMs() + algorithm_ms; }
};

/// All measurements from one run of one strategy on one matrix.
struct RunResult {
  /// Σ true scores of the selected ensembles (s_sum of §5.5).
  double s_sum = 0.0;
  /// Average true AP of the selected ensembles (ā of §5.5).
  double avg_true_ap = 0.0;
  /// Average normalized cost ĉ of the selected ensembles.
  double avg_norm_cost = 0.0;
  /// Frames processed (|V| for TUVI; |V_B| for TCVI).
  size_t frames_processed = 0;
  /// Σ (r_{S*|v} − r_{Ĝ|v}) over processed frames (Eq. 17). Zero and
  /// meaningless when !regret_available.
  double regret = 0.0;
  /// False when the run skipped the regret baseline
  /// (EngineOptions::compute_regret was off).
  bool regret_available = true;
  /// Total budget-accountable simulated cost C (Eq. 12/14), ms.
  double charged_cost_ms = 0.0;
  TimeBreakdown breakdown;
  /// Number of times each ensemble was selected, indexed by mask.
  std::vector<uint64_t> selection_counts;
  /// (iteration, cumulative charged cost) pairs when record_cost_curve.
  std::vector<std::pair<size_t, double>> cost_curve;

  /// Per-model health over the run (fault-tolerance report).
  struct ModelAvailability {
    /// Frames where the strategy's selected mask included this model.
    uint64_t frames_selected = 0;
    /// Of those, frames where the model's call failed after retries.
    uint64_t frames_failed = 0;
    /// Times this model's circuit breaker tripped open.
    uint64_t breaker_opens = 0;
    /// Wasted time charged to this model (failed attempts + backoff), ms.
    double fault_ms = 0.0;
  };
  /// Indexed by model; size num_models.
  std::vector<ModelAvailability> model_availability;
  /// Frames that completed on a strict sub-mask of the selection because
  /// some selected member failed.
  uint64_t fallback_frames = 0;
  /// Frames where *every* selected member failed — processed (time is
  /// charged) but with no output and no bandit observation.
  uint64_t failed_frames = 0;

  /// Temporal fast-path accounting (all zero when skipping is disabled).
  /// Skipped frames count toward frames_processed but not toward
  /// selection_counts — no ensemble was selected on them.
  struct SkipStats {
    /// Frames answered from tracker propagation.
    uint64_t skipped_frames = 0;
    /// Frames that ran the detect path while the gate was enabled.
    uint64_t detect_frames = 0;
    /// Detect frames forced while skips were still planned (scene-context
    /// change, or no propagatable tracks).
    uint64_t forced_detects = 0;
    /// Σ true AP of propagated outputs over skipped frames — divide by
    /// skipped_frames for the accuracy the fast path actually delivered.
    double propagated_ap_sum = 0.0;
  };
  SkipStats skip;

  /// What checkpointing did during THIS invocation (never serialized into
  /// snapshots — it describes the process, not the run, and wall-clock
  /// fields here legitimately differ between a resumed and an
  /// uninterrupted run).
  struct CheckpointReport {
    /// True when this invocation started from a loaded snapshot.
    bool resumed = false;
    /// First frame processed by this invocation when resumed.
    size_t resumed_from_frame = 0;
    /// Snapshot generations written by this invocation.
    uint64_t snapshots_written = 0;
    /// Corrupt/truncated generations skipped while locating the newest
    /// good one (the fallback path).
    int generations_rejected = 0;
    /// Real wall-clock spent serializing + durably writing snapshots, ms.
    double checkpoint_write_ms = 0.0;
  };
  CheckpointReport checkpoint;
};

/// One strategy run, exposed one frame at a time. This is the loop inside
/// RunStrategy with the iteration inverted: Create() performs validation,
/// BeginVideo and (when configured) checkpoint resume; each StepFrame()
/// call processes exactly the next frame — selection, cost charging,
/// subset-lattice evaluation, bandit feedback, measurements, breaker
/// bookkeeping, checkpoint writes and crash injection — and Finish()
/// finalizes the averages and yields the RunResult.
///
/// The serving layer's StreamScheduler drives many EngineRuns interleaved
/// over one process; because a run's state is private and each frame is a
/// deterministic function of the run's own history, any interleaving of
/// StepFrame calls across runs leaves every run bit-identical to its solo
/// RunStrategy execution. RunStrategy itself is implemented on top of this
/// class (Create → StepFrame until done → Finish), so there is exactly one
/// engine loop body in the codebase.
///
/// Not thread-safe: a given EngineRun must be stepped by one thread at a
/// time (distinct runs are independent). `source` and `strategy` must
/// outlive the run; strategies holding the OracleView pointer may use it
/// only while the run is alive.
class EngineRun {
 public:
  static Result<std::unique_ptr<EngineRun>> Create(
      EvaluationSource& source, SelectionStrategy* strategy,
      const EngineOptions& options);

  EngineRun(const EngineRun&) = delete;
  EngineRun& operator=(const EngineRun&) = delete;
  ~EngineRun();  // out-of-line: IdentityHolder is incomplete here

  /// True once the run has no more frames to process: the video is
  /// exhausted, the TCVI budget is spent (Alg. 2's `C <= B` guard), or
  /// Finish() was called. StepFrame on a done run is FailedPrecondition.
  bool done() const;

  /// Next frame StepFrame() will process (== frames consumed so far,
  /// including frames restored from a checkpoint).
  size_t next_frame() const { return next_frame_; }
  size_t num_frames() const { return num_frames_; }

  /// Live accumulators. Averages (avg_true_ap, avg_norm_cost) and
  /// breakdown.algorithm_ms are finalized only by Finish(); everything
  /// else is current as of the last StepFrame. Invalid after Finish().
  const RunResult& result() const { return result_; }

  /// Simulated charged cost so far — the scheduler's deficit currency.
  double charged_cost_ms() const { return result_.charged_cost_ms; }

  /// Processes exactly one frame. Returns Aborted under crash injection,
  /// FailedPrecondition when done(), or any checkpoint-write error.
  Status StepFrame();

  /// Dynamic degradation overlay from the serving layer's overload
  /// controller. `skip_boost` extends every episode the temporal gate
  /// plans from here on (no-op on runs without a gate);
  /// `model_mask` restricts the strategy's eligible models to
  /// mask ∩ breaker-healthy — ignored when the intersection is empty (the
  /// run never selects nothing) or when the mask is 0 (unrestricted).
  /// The overlay is a property of the serving NODE, not of the stream: it
  /// is deliberately absent from the identity fingerprint and from the
  /// snapshot sections, and a migration target's own controller re-applies
  /// its level on the next round. (The gate's boost does travel inside the
  /// temporal section as dynamic state, so boosted skip counters restore
  /// within bounds.) SetDegradation(0, 0) — the controller-disabled state —
  /// leaves every code path byte-identical to a build without this hook.
  void SetDegradation(int skip_boost, EnsembleId model_mask);

  /// Rebinds the observability sink (serving layer: per-stream track
  /// attribution via ObsHandle::WithStream). Same contract as the
  /// degradation overlay: a node property, never fingerprinted, never
  /// snapshotted, and SetObs({}) restores the exact disabled path.
  /// Registration of metric series happens here (locking, may allocate);
  /// the per-frame observation path stays lock- and allocation-free.
  void SetObs(const ObsHandle& obs);

  /// Serializes the complete resumable state of the live run into the
  /// snapshot wire format (the same container a checkpoint writes,
  /// identity fingerprint included) WITHOUT touching disk. This is the
  /// live-migration path: the serving layer exports a mid-video session on
  /// one scheduler shard and implants the bytes on another. Callable any
  /// time between Create and Finish; FailedPrecondition after Finish.
  Result<std::vector<uint8_t>> ExportSnapshot() const;

  /// Overlays a parsed, CRC-valid snapshot onto this run — the in-memory
  /// counterpart of checkpoint resume. The snapshot's identity fingerprint
  /// must match this run's configuration (FailedPrecondition otherwise:
  /// the payload belongs to a different stream) and the fingerprint is
  /// verified BEFORE any run state is mutated, so a rejected payload
  /// leaves the run exactly as it was. Structural damage inside a
  /// CRC-valid section returns DataLoss. Callable only before this
  /// invocation has stepped any frame (a migration target is always a
  /// freshly created run).
  Status RestoreFromSnapshot(const SnapshotReader& snapshot);

  /// Finalizes averages and per-model breaker counters and returns the
  /// RunResult. Callable once; the run is done() afterwards.
  Result<RunResult> Finish();

 private:
  EngineRun(EvaluationSource& source, SelectionStrategy* strategy,
            const EngineOptions& options);

  /// BeginVideo, accumulator setup, identity fingerprint and checkpoint
  /// resume (the part of RunStrategy that precedes the frame loop).
  Status Init();

  /// The skip path of StepFrame: propagate tracks, score and charge the
  /// frame, then run the shared epilogue.
  Status StepSkippedFrame(size_t t);

  /// Regret baseline max_S r_{S*|v} for frame t (frontier scan when the
  /// source caches one, exhaustive otherwise).
  double BestTrueScore(size_t t, double inv_max);

  /// Checkpoint write + crash injection shared by both frame paths.
  /// `t` is the frame just processed.
  Status FrameEpilogue(size_t t);

  EvaluationSource* source_;
  SelectionStrategy* strategy_;
  EngineOptions options_;
  uint32_t num_masks_;
  size_t num_frames_;
  int m_;
  EnsembleId full_;
  OracleView oracle_;

  TimeAccumulator algo_time_;
  RunResult result_;
  std::vector<CircuitBreaker> breakers_;
  std::vector<double> est_score_;
  std::vector<double> norm_cost_;

  /// EngineRunIdentity lives behind a pimpl: engine_snapshot.h includes
  /// this header, so the identity type cannot appear here by value.
  struct IdentityHolder;
  std::unique_ptr<IdentityHolder> identity_;
  size_t next_frame_ = 0;
  size_t frames_this_invocation_ = 0;
  uint64_t next_generation_ = 1;
  std::unique_ptr<CheckpointManager> ckpt_;
  bool finished_ = false;

  /// Temporal skip gate; null unless options_.skip.enabled(), in which
  /// case every frame consults it exactly once.
  std::unique_ptr<TemporalGate> gate_;
  /// Degradation overlay mask (0 = unrestricted); see SetDegradation.
  EnsembleId degrade_mask_ = 0;
  /// max_S c_{S|v} of the last detect frame: the cost normalizer a
  /// skipped frame uses. Reading the skipped frame's own normalizer would
  /// materialize it on a lazy source and defeat the skip.
  double last_max_cost_ms_ = 0.0;

  /// Observability sink (disabled by default; see SetObs). Cached metric
  /// ids are registered once per SetObs so the frame loop never hashes a
  /// metric name.
  ObsHandle obs_;
  struct ObsIds {
    MetricsRegistry::Id frames = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id frames_skipped = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id frames_fallback = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id frames_failed = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id detector_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id reference_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id ensembling_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id fault_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id tracker_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id charged_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id frame_cost_hist = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id model_failures = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id breaker_opens = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id algo_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id ckpt_writes = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id ckpt_write_ms = MetricsRegistry::kInvalidId;
  };
  ObsIds obs_ids_;
  /// Cumulative instrumented wall time (select/observe/checkpoint): the
  /// monotone timestamp ledger for this run's wall-clock trace track.
  double wall_ledger_ms_ = 0.0;
  /// Reused empty list for gate ingest on fully-failed frames.
  DetectionList no_detections_;
};

/// Runs `strategy` over an evaluation source — the eager matrix view or a
/// LazyFrameEvaluator, which only pays for the cells the run touches. The
/// strategy is reset via BeginVideo.
Result<RunResult> RunStrategy(EvaluationSource& source,
                              SelectionStrategy* strategy,
                              const EngineOptions& options);

/// Convenience overload over an eagerly built matrix.
Result<RunResult> RunStrategy(const FrameMatrix& matrix,
                              SelectionStrategy* strategy,
                              const EngineOptions& options);

}  // namespace vqe

#endif  // VQE_CORE_ENGINE_H_
