#include "core/lrbp.h"

namespace vqe {

Result<LrbpPrediction> PredictExtraBudget(
    const std::vector<std::pair<size_t, double>>& cost_curve,
    size_t total_frames, double fit_tail_fraction) {
  if (cost_curve.size() < 2) {
    return Status::InvalidArgument(
        "LRBP needs at least two (iteration, cost) observations");
  }
  if (fit_tail_fraction <= 0.0 || fit_tail_fraction > 1.0) {
    return Status::InvalidArgument("fit_tail_fraction must be in (0, 1]");
  }
  const size_t processed = cost_curve.back().first;
  if (total_frames < processed) {
    return Status::InvalidArgument(
        "total_frames is smaller than the frames already processed");
  }

  size_t start = static_cast<size_t>(
      static_cast<double>(cost_curve.size()) * (1.0 - fit_tail_fraction));
  if (start + 2 > cost_curve.size()) start = cost_curve.size() - 2;

  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(cost_curve.size() - start);
  ys.reserve(cost_curve.size() - start);
  for (size_t i = start; i < cost_curve.size(); ++i) {
    xs.push_back(static_cast<double>(cost_curve[i].first));
    ys.push_back(cost_curve[i].second);
  }

  LrbpPrediction pred;
  VQE_ASSIGN_OR_RETURN(pred.fit, FitLine(xs, ys));
  pred.total_cost = pred.fit.Predict(static_cast<double>(total_frames));
  const double spent = cost_curve.back().second;
  pred.b_extra = pred.total_cost - spent;
  if (pred.b_extra < 0.0) pred.b_extra = 0.0;
  return pred;
}

}  // namespace vqe
