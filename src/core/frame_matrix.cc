#include "core/frame_matrix.h"

#include <algorithm>

#include "common/arena.h"
#include "common/thread_pool.h"
#include "core/frame_eval.h"

namespace vqe {

Status MatrixOptions::Validate() const {
  if (ref_confidence_threshold < 0.0 || ref_confidence_threshold > 1.0) {
    return Status::InvalidArgument(
        "ref_confidence_threshold must be in [0, 1]");
  }
  if (ap.iou_threshold <= 0.0 || ap.iou_threshold > 1.0) {
    return Status::InvalidArgument("ap.iou_threshold must be in (0, 1]");
  }
  if (parallelism < 0) {
    return Status::InvalidArgument("parallelism must be >= 0");
  }
  VQE_RETURN_NOT_OK(retry.Validate());
  return fusion_options.Validate();
}

namespace {

// The masks not weakly dominated on ⟨true_ap, cost_ms⟩: sweep by ascending
// cost (ties: descending AP, then ascending mask for stability) and keep a
// mask iff it strictly raises the running AP maximum. For any excluded mask
// some kept mask is at least as accurate and no costlier, so a monotone
// score's maximum over the kept set equals its maximum over all masks.
std::vector<EnsembleId> ParetoTrueCandidates(const FrameEvaluation& fe,
                                             uint32_t num_masks) {
  // The sweep order is arena scratch (the comparator is a strict total
  // order — the tie-break on the mask id makes the sorted sequence unique,
  // so an in-place std::sort is deterministic); only the surviving
  // frontier, which the matrix keeps, touches the heap.
  FrameArena& arena = FrameArena::ThreadLocal();
  ArenaScope scope(arena);
  EnsembleId* order = arena.AllocateArray<EnsembleId>(num_masks);
  for (uint32_t i = 0; i < num_masks; ++i) order[i] = EnsembleId{i + 1};
  std::sort(order, order + num_masks, [&](EnsembleId a, EnsembleId b) {
    if (fe.cost_ms[a] != fe.cost_ms[b]) return fe.cost_ms[a] < fe.cost_ms[b];
    if (fe.true_ap[a] != fe.true_ap[b]) return fe.true_ap[a] > fe.true_ap[b];
    return a < b;
  });
  std::vector<EnsembleId> frontier;
  double best_ap = -1.0;
  for (uint32_t i = 0; i < num_masks; ++i) {
    const EnsembleId mask = order[i];
    if (fe.true_ap[mask] > best_ap) {
      best_ap = fe.true_ap[mask];
      frontier.push_back(mask);
    }
  }
  return frontier;
}

}  // namespace

Result<FrameMatrix> BuildFrameMatrix(const Video& video,
                                     const DetectorPool& pool,
                                     uint64_t trial_seed,
                                     const MatrixOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  if (pool.detectors.empty()) {
    return Status::InvalidArgument("detector pool is empty");
  }
  if (pool.detectors.size() > static_cast<size_t>(kMaxPoolSize)) {
    return Status::InvalidArgument("detector pool exceeds kMaxPoolSize");
  }
  if (pool.reference == nullptr) {
    return Status::InvalidArgument("pool has no reference model");
  }

  VQE_ASSIGN_OR_RETURN(auto fusion,
                       CreateEnsembleMethod(options.fusion,
                                            options.fusion_options));

  const int m = static_cast<int>(pool.detectors.size());
  const uint32_t num_masks = NumEnsembles(m);

  FrameMatrix matrix;
  matrix.num_models = m;
  matrix.ap = options.ap;
  matrix.temporal_outputs = options.keep_temporal_outputs;
  matrix.model_names.reserve(pool.detectors.size());
  for (const auto& d : pool.detectors) matrix.model_names.push_back(d->name());
  // Pre-sized slots: frame t is a pure function of (video.frames[t],
  // trial_seed) and writes only matrix.frames[t], so workers race on
  // nothing and the matrix is bit-identical for every worker count.
  matrix.frames.resize(video.size());

  auto build_frame = [&](size_t t) {
    const VideoFrame& frame = video.frames[t];
    FrameEvaluation& fe = matrix.frames[t];
    fe.context = frame.context;
    fe.est_ap.assign(num_masks + 1, 0.0);
    fe.true_ap.assign(num_masks + 1, 0.0);
    fe.cost_ms.assign(num_masks + 1, 0.0);
    fe.fusion_overhead_ms.assign(num_masks + 1, 0.0);

    // The shared per-frame kernel (also behind LazyFrameEvaluator, which
    // is what keeps lazy and eager bit-identical by construction) caches
    // the per-model outputs once; the loop below materializes the full
    // mask lattice from it — the eager path OPT/BF, the Figure 3
    // aggregates and serialization rely on.
    FrameEvalContext ctx(frame, pool, trial_seed, options, *fusion);
    fe.model_cost_ms = ctx.model_cost_ms();
    fe.ref_cost_ms = ctx.ref_cost_ms();
    fe.available_mask = ctx.available_mask();
    fe.model_fault_ms = ctx.model_fault_ms();
    fe.fault_aware = true;
    if (options.keep_temporal_outputs) {
      fe.gt_objects = frame.objects;
      fe.fused.resize(num_masks + 1);
    }

    for (EnsembleId mask = 1; mask <= num_masks; ++mask) {
      const MaskEvaluation e = ctx.Evaluate(
          mask, options.keep_temporal_outputs ? &fe.fused[mask] : nullptr);
      fe.fusion_overhead_ms[mask] = e.fusion_overhead_ms;
      fe.cost_ms[mask] = e.cost_ms;
      fe.est_ap[mask] = e.est_ap;
      fe.true_ap[mask] = e.true_ap;
      if (fe.cost_ms[mask] > fe.max_cost_ms) fe.max_cost_ms = fe.cost_ms[mask];
    }
    fe.best_true_candidates = ParetoTrueCandidates(fe, num_masks);
  };

  ParallelFor(video.size(), options.parallelism, build_frame);
  return matrix;
}

std::vector<double> AverageTrueApPerEnsemble(const FrameMatrix& matrix) {
  const uint32_t num_masks = matrix.num_ensembles();
  std::vector<double> avg(num_masks + 1, 0.0);
  if (matrix.frames.empty()) return avg;
  for (const auto& fe : matrix.frames) {
    for (EnsembleId s = 1; s <= num_masks; ++s) avg[s] += fe.true_ap[s];
  }
  for (auto& v : avg) v /= static_cast<double>(matrix.frames.size());
  return avg;
}

std::vector<double> AverageNormCostPerEnsemble(const FrameMatrix& matrix) {
  const uint32_t num_masks = matrix.num_ensembles();
  std::vector<double> avg(num_masks + 1, 0.0);
  if (matrix.frames.empty()) return avg;
  for (const auto& fe : matrix.frames) {
    for (EnsembleId s = 1; s <= num_masks; ++s) {
      avg[s] += fe.max_cost_ms > 0 ? fe.cost_ms[s] / fe.max_cost_ms : 0.0;
    }
  }
  for (auto& v : avg) v /= static_cast<double>(matrix.frames.size());
  return avg;
}

}  // namespace vqe
