#include "core/frame_matrix.h"

namespace vqe {

Status MatrixOptions::Validate() const {
  if (ref_confidence_threshold < 0.0 || ref_confidence_threshold > 1.0) {
    return Status::InvalidArgument(
        "ref_confidence_threshold must be in [0, 1]");
  }
  if (ap.iou_threshold <= 0.0 || ap.iou_threshold > 1.0) {
    return Status::InvalidArgument("ap.iou_threshold must be in (0, 1]");
  }
  return fusion_options.Validate();
}

namespace {

// Simulated box-fusion overhead c^e: a fixed dispatch cost plus a per-box
// term. Kept ≪ any model's inference cost, per the paper's assumption.
double SimulatedFusionOverheadMs(size_t num_input_boxes) {
  return 0.01 + 0.002 * static_cast<double>(num_input_boxes);
}

}  // namespace

Result<FrameMatrix> BuildFrameMatrix(const Video& video,
                                     const DetectorPool& pool,
                                     uint64_t trial_seed,
                                     const MatrixOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  if (pool.detectors.empty()) {
    return Status::InvalidArgument("detector pool is empty");
  }
  if (pool.detectors.size() > static_cast<size_t>(kMaxPoolSize)) {
    return Status::InvalidArgument("detector pool exceeds kMaxPoolSize");
  }
  if (pool.reference == nullptr) {
    return Status::InvalidArgument("pool has no reference model");
  }

  VQE_ASSIGN_OR_RETURN(auto fusion,
                       CreateEnsembleMethod(options.fusion,
                                            options.fusion_options));

  const int m = static_cast<int>(pool.detectors.size());
  const uint32_t num_masks = NumEnsembles(m);

  FrameMatrix matrix;
  matrix.num_models = m;
  for (const auto& d : pool.detectors) matrix.model_names.push_back(d->name());
  matrix.frames.reserve(video.size());

  for (const VideoFrame& frame : video.frames) {
    FrameEvaluation fe;
    fe.context = frame.context;
    fe.est_ap.assign(num_masks + 1, 0.0);
    fe.true_ap.assign(num_masks + 1, 0.0);
    fe.cost_ms.assign(num_masks + 1, 0.0);
    fe.fusion_overhead_ms.assign(num_masks + 1, 0.0);
    fe.model_cost_ms.resize(static_cast<size_t>(m));

    // Materialize per-model outputs once (the reuse of Alg. 1 lines 9-10).
    std::vector<DetectionList> model_out(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      model_out[static_cast<size_t>(i)] =
          pool.detectors[static_cast<size_t>(i)]->Detect(frame, trial_seed);
      fe.model_cost_ms[static_cast<size_t>(i)] =
          pool.detectors[static_cast<size_t>(i)]->InferenceCostMs(frame,
                                                                  trial_seed);
    }
    const DetectionList ref_out = pool.reference->Detect(frame, trial_seed);
    fe.ref_cost_ms = pool.reference->InferenceCostMs(frame, trial_seed);
    const GroundTruthList ref_gt =
        DetectionsAsGroundTruth(ref_out, options.ref_confidence_threshold);

    for (EnsembleId mask = 1; mask <= num_masks; ++mask) {
      std::vector<DetectionList> inputs;
      size_t num_boxes = 0;
      double model_cost = 0.0;
      for (int i = 0; i < m; ++i) {
        if (!ContainsModel(mask, i)) continue;
        inputs.push_back(model_out[static_cast<size_t>(i)]);
        num_boxes += inputs.back().size();
        model_cost += fe.model_cost_ms[static_cast<size_t>(i)];
      }
      const DetectionList fused = fusion->Fuse(inputs);

      fe.fusion_overhead_ms[mask] = SimulatedFusionOverheadMs(num_boxes);
      fe.cost_ms[mask] = model_cost + fe.fusion_overhead_ms[mask];
      fe.est_ap[mask] = FrameMeanAp(fused, ref_gt, options.ap);
      fe.true_ap[mask] = FrameMeanAp(fused, frame.objects, options.ap);
      if (fe.cost_ms[mask] > fe.max_cost_ms) fe.max_cost_ms = fe.cost_ms[mask];
    }
    matrix.frames.push_back(std::move(fe));
  }
  return matrix;
}

std::vector<double> AverageTrueApPerEnsemble(const FrameMatrix& matrix) {
  const uint32_t num_masks = matrix.num_ensembles();
  std::vector<double> avg(num_masks + 1, 0.0);
  if (matrix.frames.empty()) return avg;
  for (const auto& fe : matrix.frames) {
    for (EnsembleId s = 1; s <= num_masks; ++s) avg[s] += fe.true_ap[s];
  }
  for (auto& v : avg) v /= static_cast<double>(matrix.frames.size());
  return avg;
}

std::vector<double> AverageNormCostPerEnsemble(const FrameMatrix& matrix) {
  const uint32_t num_masks = matrix.num_ensembles();
  std::vector<double> avg(num_masks + 1, 0.0);
  if (matrix.frames.empty()) return avg;
  for (const auto& fe : matrix.frames) {
    for (EnsembleId s = 1; s <= num_masks; ++s) {
      avg[s] += fe.max_cost_ms > 0 ? fe.cost_ms[s] / fe.max_cost_ms : 0.0;
    }
  }
  for (auto& v : avg) v /= static_cast<double>(matrix.frames.size());
  return avg;
}

}  // namespace vqe
