// Serialization of the engine's snapshot sections: the run identity
// (configuration fingerprint a snapshot must match before resuming), the
// partial RunResult accumulators, and the TimeBreakdown. Exposed as free
// functions so tests can round-trip accounting structures directly and so
// the query executor reuses the same wire helpers.
//
// Section layout inside a RunStrategy checkpoint (container format in
// snapshot/snapshot.h):
//
//   engine.meta    — identity fingerprint (strategy name, pool size, video
//                    length, seed, budget, scoring weights, breaker knobs);
//                    a mismatch means "wrong directory / wrong config" and
//                    resume refuses with FailedPrecondition.
//   engine.cursor  — next frame to process + accumulated algorithm seconds.
//   engine.result  — the RunResult accumulators as they stand mid-loop
//                    (avg_* fields hold running SUMS until the run ends).
//   strategy       — SelectionStrategy::SaveState payload.
//   breakers       — per-model CircuitBreaker state machines.
//   source         — EvaluationSource::SaveState payload (lazy memo), only
//                    when CheckpointPolicy::include_source.

#ifndef VQE_CORE_ENGINE_SNAPSHOT_H_
#define VQE_CORE_ENGINE_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "snapshot/checkpoint.h"
#include "snapshot/snapshot.h"
#include "snapshot/wire.h"

namespace vqe {

// Section names shared by the engine and the resume tests.
inline constexpr char kEngineMetaSection[] = "engine.meta";
inline constexpr char kEngineCursorSection[] = "engine.cursor";
inline constexpr char kEngineResultSection[] = "engine.result";
inline constexpr char kStrategySection[] = "strategy";
inline constexpr char kBreakersSection[] = "breakers";
inline constexpr char kSourceSection[] = "source";
/// Temporal fast-path state (gate + skip policy + propagation tracker +
/// the carried cost normalizer); present only in skip-enabled runs.
inline constexpr char kTemporalSection[] = "temporal";

/// The configuration fingerprint a checkpoint was taken under. Resuming
/// under a different fingerprint would silently change results, so the
/// engine compares every field and refuses on mismatch.
struct EngineRunIdentity {
  std::string strategy_name;
  int num_models = 0;
  uint64_t num_frames = 0;
  uint64_t strategy_seed = 0;
  double budget_ms = 0.0;
  ScoringFunction sc;
  bool compute_regret = true;
  bool record_cost_curve = false;
  CircuitBreakerOptions breaker;
  /// Temporal-skip knobs: a snapshot taken under different skip settings
  /// would replay a different skip/detect sequence.
  SkipOptions skip;

  /// OK when `other` describes the same run; FailedPrecondition naming the
  /// first differing field otherwise.
  Status ExpectMatches(const EngineRunIdentity& other) const;
};

void WriteEngineIdentity(ByteWriter& w, const EngineRunIdentity& id);
Status ReadEngineIdentity(ByteReader& r, EngineRunIdentity* id);

void WriteTimeBreakdown(ByteWriter& w, const TimeBreakdown& tb);
Status ReadTimeBreakdown(ByteReader& r, TimeBreakdown* tb);

/// Serializes every RunResult field except the per-invocation
/// CheckpointReport (which describes the process, not the run).
void WriteRunResult(ByteWriter& w, const RunResult& result);
Status ReadRunResult(ByteReader& r, RunResult* result);

}  // namespace vqe

#endif  // VQE_CORE_ENGINE_SNAPSHOT_H_
