#include "core/baselines.h"

#include <cassert>
#include <limits>

namespace vqe {

void OptStrategy::BeginVideo(const StrategyContext& ctx) {
  assert(ctx.oracle != nullptr && "OPT requires an OracleView");
  oracle_ = ctx.oracle;
  num_models_ = ctx.num_models;
}

EnsembleId OptStrategy::Select(size_t t) {
  const EnsembleId full = FullEnsemble(num_models_);
  const EnsembleId eligible = EligibleMask(num_models_);
  EnsembleId best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (EnsembleId s = 1; s <= full; ++s) {
    if (!IsSubsetOf(s, eligible)) continue;
    const double r = oracle_->TrueScore(t, s);
    if (r > best_score) {
      best_score = r;
      best = s;
    }
  }
  return best == 0 ? eligible : best;
}

void SingleBestStrategy::BeginVideo(const StrategyContext& ctx) {
  assert(ctx.oracle != nullptr && "SGL requires an OracleView");
  // The paper: "always applies a specific single detector (which is the
  // most accurate on average across all frames)". Average the true AP of
  // each singleton over the video; keep every singleton's average so the
  // choice can degrade to the best *eligible* detector when a breaker
  // opens the calibrated one.
  num_models_ = ctx.num_models;
  singleton_ap_.assign(static_cast<size_t>(ctx.num_models), 0.0);
  choice_ = 1;
  double best_ap = -1.0;
  for (int i = 0; i < ctx.num_models; ++i) {
    const EnsembleId s = Singleton(i);
    double sum = 0.0;
    for (size_t t = 0; t < ctx.oracle->num_frames(); ++t) {
      sum += ctx.oracle->TrueAp(t, s);
    }
    singleton_ap_[static_cast<size_t>(i)] = sum;
    if (sum > best_ap) {
      best_ap = sum;
      choice_ = s;
    }
  }
}

EnsembleId SingleBestStrategy::Select(size_t /*t*/) {
  const EnsembleId eligible = EligibleMask(num_models_);
  if (IsSubsetOf(choice_, eligible)) return choice_;
  // Calibrated detector is breaker-open: run the best eligible singleton.
  EnsembleId fallback = 0;
  double best_ap = -1.0;
  for (int i = 0; i < num_models_; ++i) {
    if (!ContainsModel(eligible, i)) continue;
    if (singleton_ap_[static_cast<size_t>(i)] > best_ap) {
      best_ap = singleton_ap_[static_cast<size_t>(i)];
      fallback = Singleton(i);
    }
  }
  return fallback == 0 ? choice_ : fallback;
}

Status SingleBestStrategy::SaveState(ByteWriter& writer) const {
  writer.U32(choice_);
  WriteVecF64(writer, singleton_ap_);
  return Status::OK();
}

Status SingleBestStrategy::RestoreState(ByteReader& reader) {
  uint32_t choice = 0;
  std::vector<double> singleton_ap;
  VQE_RETURN_NOT_OK(reader.U32(&choice));
  VQE_RETURN_NOT_OK(ReadVecF64(reader, &singleton_ap));
  if (singleton_ap.size() != singleton_ap_.size()) {
    return Status::DataLoss("SGL singleton-count mismatch");
  }
  if (choice == 0 || choice > FullEnsemble(num_models_)) {
    return Status::DataLoss("SGL choice out of range");
  }
  choice_ = static_cast<EnsembleId>(choice);
  singleton_ap_ = std::move(singleton_ap);
  return Status::OK();
}

void RandomStrategy::BeginVideo(const StrategyContext& ctx) {
  num_models_ = ctx.num_models;
  rng_ = MakeStreamRng(ctx.seed, 0x4A4D);
}

EnsembleId RandomStrategy::Select(size_t /*t*/) {
  const EnsembleId eligible = EligibleMask(num_models_);
  const int k = EnsembleSize(eligible);
  // Uniform over the 2^k − 1 non-empty subsets of the eligible pool: draw
  // a mask over k virtual bits, then expand bit j onto the j-th eligible
  // model (ascending). With every model eligible the expansion is the
  // identity, so this consumes exactly the same RNG stream as the
  // unrestricted `1 + UniformInt(2^m − 1)` did — seeded runs without
  // faults are unchanged.
  const EnsembleId draw =
      static_cast<EnsembleId>(1 + rng_.UniformInt(NumEnsembles(k)));
  if (eligible == FullEnsemble(num_models_)) return draw;
  EnsembleId out = 0;
  int j = 0;
  for (int i = 0; i < num_models_; ++i) {
    if (!ContainsModel(eligible, i)) continue;
    if (ContainsModel(draw, j)) out |= Singleton(i);
    ++j;
  }
  return out;
}

Status RandomStrategy::SaveState(ByteWriter& writer) const {
  uint64_t state[4];
  rng_.GetState(state);
  for (uint64_t word : state) writer.U64(word);
  return Status::OK();
}

Status RandomStrategy::RestoreState(ByteReader& reader) {
  uint64_t state[4];
  for (uint64_t& word : state) VQE_RETURN_NOT_OK(reader.U64(&word));
  if (!rng_.SetState(state)) {
    return Status::DataLoss("RAND rng state is all-zero");
  }
  return Status::OK();
}

ExploreFirstStrategy::ExploreFirstStrategy(size_t frames_per_arm)
    : frames_per_arm_(frames_per_arm == 0 ? 1 : frames_per_arm) {}

void ExploreFirstStrategy::BeginVideo(const StrategyContext& ctx) {
  num_models_ = ctx.num_models;
  const size_t n = NumEnsembles(num_models_) + 1;
  sum_.assign(n, 0.0);
  count_.assign(n, 0);
  committed_ = 0;
  explore_frames_ = frames_per_arm_ * NumEnsembles(num_models_);
}

EnsembleId ExploreFirstStrategy::Select(size_t t) {
  const EnsembleId full = FullEnsemble(num_models_);
  const EnsembleId eligible = EligibleMask(num_models_);
  if (t < explore_frames_) {
    // Round-robin through the arms, δ_EF frames each. An arm touching an
    // open-breaker model degrades to its eligible part for this pull (or
    // the whole eligible pool when nothing of it survives).
    const auto arm = static_cast<EnsembleId>(1 + t / frames_per_arm_);
    if (IsSubsetOf(arm, eligible)) return arm;
    return (arm & eligible) != 0 ? (arm & eligible) : eligible;
  }
  if (committed_ == 0) {
    // Commit to the best estimated arm after exploration.
    double best = -std::numeric_limits<double>::infinity();
    committed_ = 1;
    for (EnsembleId s = 1; s <= full; ++s) {
      if (count_[s] == 0) continue;
      const double mean = sum_[s] / static_cast<double>(count_[s]);
      if (mean > best) {
        best = mean;
        committed_ = s;
      }
    }
  }
  if (IsSubsetOf(committed_, eligible)) return committed_;
  // The committed arm lost a member to an open breaker; EF does not keep
  // learning, so just run what is still healthy of it.
  return (committed_ & eligible) != 0 ? (committed_ & eligible) : eligible;
}

Status ExploreFirstStrategy::SaveState(ByteWriter& writer) const {
  writer.U64(explore_frames_);
  writer.U32(committed_);
  WriteVecF64(writer, sum_);
  WriteVecU64(writer, count_);
  return Status::OK();
}

Status ExploreFirstStrategy::RestoreState(ByteReader& reader) {
  uint64_t explore_frames = 0;
  uint32_t committed = 0;
  std::vector<double> sum;
  std::vector<uint64_t> count;
  VQE_RETURN_NOT_OK(reader.U64(&explore_frames));
  VQE_RETURN_NOT_OK(reader.U32(&committed));
  VQE_RETURN_NOT_OK(ReadVecF64(reader, &sum));
  VQE_RETURN_NOT_OK(ReadVecU64(reader, &count));
  if (explore_frames != explore_frames_) {
    return Status::DataLoss("EF exploration-phase length mismatch");
  }
  if (sum.size() != sum_.size() || count.size() != count_.size()) {
    return Status::DataLoss("EF arm-count mismatch");
  }
  if (committed > FullEnsemble(num_models_)) {
    return Status::DataLoss("EF committed arm out of range");
  }
  committed_ = static_cast<EnsembleId>(committed);
  sum_ = std::move(sum);
  count_ = std::move(count);
  return Status::OK();
}

void ExploreFirstStrategy::Observe(const FrameFeedback& feedback) {
  if (feedback.t >= explore_frames_) return;  // committed: nothing to learn
  // Generic MAB: the pulled arm's reward only; no subset reuse. The arm
  // actually pulled is the realized mask — scores for arms with failed
  // members are NaN by construction.
  const EnsembleId arm = feedback.CreditMask();
  const std::vector<double>& est = *feedback.est_score;
  sum_[arm] += est[arm];
  ++count_[arm];
}

}  // namespace vqe
