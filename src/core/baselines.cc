#include "core/baselines.h"

#include <cassert>
#include <limits>

namespace vqe {

void OptStrategy::BeginVideo(const StrategyContext& ctx) {
  assert(ctx.oracle != nullptr && "OPT requires an OracleView");
  oracle_ = ctx.oracle;
  num_models_ = ctx.num_models;
}

EnsembleId OptStrategy::Select(size_t t) {
  const EnsembleId full = FullEnsemble(num_models_);
  EnsembleId best = 1;
  double best_score = -std::numeric_limits<double>::infinity();
  for (EnsembleId s = 1; s <= full; ++s) {
    const double r = oracle_->TrueScore(t, s);
    if (r > best_score) {
      best_score = r;
      best = s;
    }
  }
  return best;
}

void SingleBestStrategy::BeginVideo(const StrategyContext& ctx) {
  assert(ctx.oracle != nullptr && "SGL requires an OracleView");
  // The paper: "always applies a specific single detector (which is the
  // most accurate on average across all frames)". Average the true AP of
  // each singleton over the video.
  choice_ = 1;
  double best_ap = -1.0;
  for (int i = 0; i < ctx.num_models; ++i) {
    const EnsembleId s = Singleton(i);
    double sum = 0.0;
    for (size_t t = 0; t < ctx.oracle->num_frames(); ++t) {
      sum += ctx.oracle->TrueAp(t, s);
    }
    if (sum > best_ap) {
      best_ap = sum;
      choice_ = s;
    }
  }
}

void RandomStrategy::BeginVideo(const StrategyContext& ctx) {
  num_models_ = ctx.num_models;
  rng_ = MakeStreamRng(ctx.seed, 0x4A4D);
}

EnsembleId RandomStrategy::Select(size_t /*t*/) {
  const uint32_t num_masks = NumEnsembles(num_models_);
  return static_cast<EnsembleId>(1 + rng_.UniformInt(num_masks));
}

ExploreFirstStrategy::ExploreFirstStrategy(size_t frames_per_arm)
    : frames_per_arm_(frames_per_arm == 0 ? 1 : frames_per_arm) {}

void ExploreFirstStrategy::BeginVideo(const StrategyContext& ctx) {
  num_models_ = ctx.num_models;
  const size_t n = NumEnsembles(num_models_) + 1;
  sum_.assign(n, 0.0);
  count_.assign(n, 0);
  committed_ = 0;
  explore_frames_ = frames_per_arm_ * NumEnsembles(num_models_);
}

EnsembleId ExploreFirstStrategy::Select(size_t t) {
  const EnsembleId full = FullEnsemble(num_models_);
  if (t < explore_frames_) {
    // Round-robin through the arms, δ_EF frames each.
    return static_cast<EnsembleId>(1 + t / frames_per_arm_);
  }
  if (committed_ == 0) {
    // Commit to the best estimated arm after exploration.
    double best = -std::numeric_limits<double>::infinity();
    committed_ = 1;
    for (EnsembleId s = 1; s <= full; ++s) {
      if (count_[s] == 0) continue;
      const double mean = sum_[s] / static_cast<double>(count_[s]);
      if (mean > best) {
        best = mean;
        committed_ = s;
      }
    }
  }
  return committed_;
}

void ExploreFirstStrategy::Observe(const FrameFeedback& feedback) {
  if (feedback.t >= explore_frames_) return;  // committed: nothing to learn
  // Generic MAB: the pulled arm's reward only; no subset reuse.
  const std::vector<double>& est = *feedback.est_score;
  sum_[feedback.selected] += est[feedback.selected];
  ++count_[feedback.selected];
}

}  // namespace vqe
