#include "core/mes_b.h"

#include <cmath>
#include <limits>

namespace vqe {

MesBStrategy::MesBStrategy(MesBOptions options)
    : options_(options), name_("MES-B") {}

void MesBStrategy::BeginVideo(const StrategyContext& ctx) {
  num_models_ = ctx.num_models;
  const size_t n = NumEnsembles(num_models_) + 1;
  count_.assign(n, 0);
  score_sum_.assign(n, 0.0);
  cost_sum_.assign(n, 0.0);
}

EnsembleId MesBStrategy::Select(size_t t) {
  const EnsembleId full = FullEnsemble(num_models_);
  const EnsembleId eligible = EligibleMask(num_models_);
  if (t < options_.gamma) return eligible;  // Alg. 2 initialization

  const double log_t = std::log(static_cast<double>(t + 1));
  EnsembleId best = 0;
  double best_d = -std::numeric_limits<double>::infinity();
  for (EnsembleId s = 1; s <= full; ++s) {
    if (!IsSubsetOf(s, eligible)) continue;
    double d;
    if (count_[s] == 0) {
      d = std::numeric_limits<double>::infinity();
    } else {
      const double n = static_cast<double>(count_[s]);
      const double mean_score = score_sum_[s] / n;
      const double mean_cost =
          std::max(cost_sum_[s] / n, options_.min_cost);
      const double bonus =
          options_.exploration_scale * std::sqrt(2.0 * log_t / n);
      d = (mean_score + bonus) / mean_cost;
    }
    if (d > best_d) {
      best_d = d;
      best = s;
    }
  }
  return best == 0 ? eligible : best;
}

Status MesBStrategy::SaveState(ByteWriter& writer) const {
  WriteVecU64(writer, count_);
  WriteVecF64(writer, score_sum_);
  WriteVecF64(writer, cost_sum_);
  return Status::OK();
}

Status MesBStrategy::RestoreState(ByteReader& reader) {
  std::vector<uint64_t> count;
  std::vector<double> score_sum, cost_sum;
  VQE_RETURN_NOT_OK(ReadVecU64(reader, &count));
  VQE_RETURN_NOT_OK(ReadVecF64(reader, &score_sum));
  VQE_RETURN_NOT_OK(ReadVecF64(reader, &cost_sum));
  if (count.size() != count_.size() || score_sum.size() != score_sum_.size() ||
      cost_sum.size() != cost_sum_.size()) {
    return Status::DataLoss("MES-B arm-count mismatch");
  }
  count_ = std::move(count);
  score_sum_ = std::move(score_sum);
  cost_sum_ = std::move(cost_sum);
  return Status::OK();
}

void MesBStrategy::Observe(const FrameFeedback& feedback) {
  const std::vector<double>& est = *feedback.est_score;
  ForEachSubset(feedback.CreditMask(), [&](EnsembleId sub) {
    ++count_[sub];
    score_sum_[sub] += est[sub];
    if (feedback.norm_cost != nullptr) {
      cost_sum_[sub] += (*feedback.norm_cost)[sub];
    }
  });
}

}  // namespace vqe
