#include "core/mes.h"

#include <cmath>
#include <limits>

namespace vqe {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

MesStrategy::MesStrategy(MesOptions options)
    : options_(options), name_(options.subset_updates ? "MES" : "MES-A") {}

void MesStrategy::BeginVideo(const StrategyContext& ctx) {
  num_models_ = ctx.num_models;
  stats_.Reset(num_models_);
}

EnsembleId MesStrategy::Select(size_t t) {
  const EnsembleId full = FullEnsemble(num_models_);
  const EnsembleId eligible = EligibleMask(num_models_);
  if (t < options_.gamma) {
    // Initialization (Alg. 1 lines 2-3): run all models; every ensemble is
    // evaluated from the cached outputs. Open-breaker models are excluded —
    // their calls would be refused anyway.
    return eligible;
  }
  // UCB selection (Alg. 1 lines 5-7): U_S = μ̂_S + sqrt(2 ln t / T_S),
  // restricted to arms inside the eligible (breaker-healthy) pool.
  const double log_t = std::log(static_cast<double>(t + 1));  // t is 1-based
  EnsembleId best = 0;
  double best_u = -kInf;
  for (EnsembleId s = 1; s <= full; ++s) {
    if (!IsSubsetOf(s, eligible)) continue;
    const uint64_t count = stats_.Count(s);
    const double u =
        count == 0
            ? kInf
            : stats_.Mean(s) +
                  options_.exploration_scale *
                      std::sqrt(2.0 * log_t / static_cast<double>(count));
    if (u > best_u) {
      best_u = u;
      best = s;
    }
  }
  return best == 0 ? eligible : best;
}

Status MesStrategy::SaveState(ByteWriter& writer) const {
  stats_.Save(writer);
  return Status::OK();
}

Status MesStrategy::RestoreState(ByteReader& reader) {
  return stats_.Restore(reader);
}

void MesStrategy::Observe(const FrameFeedback& feedback) {
  const bool init_phase = feedback.t < options_.gamma;
  const std::vector<double>& est = *feedback.est_score;
  // Credit the arm that actually ran (selected minus failed members):
  // scores outside its subset lattice are NaN and were never observed.
  const EnsembleId credit = feedback.CreditMask();
  if (init_phase || options_.subset_updates) {
    // Update the realized arm and all its subsets (Eq. 8-10).
    ForEachSubset(credit,
                  [&](EnsembleId sub) { stats_.Record(sub, est[sub]); });
  } else {
    // MES-A: only the arm actually run (Alg. 1 line 8).
    stats_.Record(credit, est[credit]);
  }
}

SwMesStrategy::SwMesStrategy(SwMesOptions options)
    : options_(options),
      name_("SW-MES(" + std::to_string(options.window) + ")") {}

void SwMesStrategy::BeginVideo(const StrategyContext& ctx) {
  num_models_ = ctx.num_models;
  last_probe_ = 0;
  stats_.Reset(num_models_, options_.window);
}

EnsembleId SwMesStrategy::Select(size_t t) {
  const EnsembleId full = FullEnsemble(num_models_);
  const EnsembleId eligible = EligibleMask(num_models_);
  if (t < options_.gamma) return eligible;

  // Scheduled full-information probes: keep ~min_probes full-pool frames
  // inside the window so every arm's μ̂^λ tracks the current segment. A
  // probe runs the eligible pool — breaker-opened models rejoin the probes
  // once they recover.
  if (options_.min_probes > 0) {
    const size_t interval =
        std::max<size_t>(1, options_.window / options_.min_probes);
    if (t >= last_probe_ + interval) {
      last_probe_ = t;
      return eligible;
    }
  }

  // Arms that slid out of the window regain an infinite exploration bonus —
  // this is the forgetting that re-triggers exploration after a breakpoint.
  // Rather than spending one frame per stale arm (2^m − 1 pulls per
  // window), select the *union* of all stale arms: every stale arm is a
  // subset of the union, so a single pull refreshes all of them through the
  // subset updates of Alg. 1 lines 9-10. Only eligible arms count — stale
  // arms touching an open-breaker model stay stale until it recovers.
  EnsembleId stale_union = 0;
  for (EnsembleId s = 1; s <= full; ++s) {
    if (IsSubsetOf(s, eligible) && stats_.Count(s) == 0) stale_union |= s;
  }
  if (stale_union != 0) return stale_union;

  // Eq. (16): U_S = μ̂^λ_S + sqrt(2 ln(min(t-1, λ)) / T^λ_S), with t as the
  // paper's 1-based iteration index.
  const double horizon = static_cast<double>(
      std::min<size_t>(t, options_.window));
  const double log_h = std::log(std::max(horizon, 1.0));
  EnsembleId best = 0;
  double best_u = -kInf;
  for (EnsembleId s = 1; s <= full; ++s) {
    if (!IsSubsetOf(s, eligible)) continue;
    const uint64_t count = stats_.Count(s);
    const double u =
        count == 0 ? kInf
                   : stats_.Mean(s) +
                         options_.exploration_scale *
                             std::sqrt(2.0 * log_h /
                                       static_cast<double>(count));
    if (u > best_u) {
      best_u = u;
      best = s;
    }
  }
  return best == 0 ? eligible : best;
}

Status SwMesStrategy::SaveState(ByteWriter& writer) const {
  writer.U64(last_probe_);
  stats_.Save(writer);
  return Status::OK();
}

Status SwMesStrategy::RestoreState(ByteReader& reader) {
  uint64_t last_probe = 0;
  VQE_RETURN_NOT_OK(reader.U64(&last_probe));
  VQE_RETURN_NOT_OK(stats_.Restore(reader));
  last_probe_ = static_cast<size_t>(last_probe);
  return Status::OK();
}

void SwMesStrategy::Observe(const FrameFeedback& feedback) {
  const std::vector<double>& est = *feedback.est_score;
  std::vector<std::pair<EnsembleId, double>> observations;
  ForEachSubset(feedback.CreditMask(), [&](EnsembleId sub) {
    observations.emplace_back(sub, est[sub]);
  });
  stats_.RecordFrame(std::move(observations));
}

size_t TheoreticalWindow(size_t num_frames, size_t num_breakpoints) {
  if (num_frames < 2) return std::max<size_t>(num_frames, 2);
  if (num_breakpoints == 0) return num_frames;
  const double n = static_cast<double>(num_frames);
  const double xi = static_cast<double>(num_breakpoints);
  const double lambda = std::sqrt(n * std::log(n) / xi);
  const double clamped = std::min(std::max(lambda, 16.0), n);
  return static_cast<size_t>(clamped);
}

}  // namespace vqe
