#include "core/experiment.h"

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/baselines.h"
#include "core/mes.h"

namespace vqe {
namespace {

/// Strategy labels become path components of per-run checkpoint
/// directories; anything outside [A-Za-z0-9._-] is mapped to '_'.
std::string SanitizeLabel(const std::string& label) {
  std::string out = label.empty() ? std::string("strategy") : label;
  for (char& c : out) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

Status ExperimentConfig::Validate() const {
  if (dataset == nullptr) {
    return Status::InvalidArgument("experiment has no dataset");
  }
  if (scene_scale <= 0.0 || scene_scale > 1.0) {
    return Status::InvalidArgument("scene_scale must be in (0, 1]");
  }
  if (trials < 1) return Status::InvalidArgument("trials must be >= 1");
  if (parallelism < 0) {
    return Status::InvalidArgument("parallelism must be >= 0");
  }
  for (const FaultScript& script : fault_scripts) {
    VQE_RETURN_NOT_OK(script.Validate());
  }
  VQE_RETURN_NOT_OK(matrix.Validate());
  return engine.Validate();
}

Result<DetectorPool> ApplyFaultScripts(
    const DetectorPool& pool, const std::vector<FaultScript>& scripts) {
  if (scripts.size() != pool.detectors.size()) {
    return Status::InvalidArgument(
        "fault_scripts size must equal the pool size");
  }
  if (pool.reference == nullptr) {
    return Status::InvalidArgument("pool has no reference model");
  }
  for (const FaultScript& script : scripts) {
    VQE_RETURN_NOT_OK(script.Validate());
  }
  DetectorPool decorated;
  decorated.detectors.reserve(pool.detectors.size());
  for (size_t i = 0; i < pool.detectors.size(); ++i) {
    decorated.detectors.push_back(std::make_unique<FaultInjectingDetector>(
        pool.detectors[i].get(), scripts[i]));
  }
  // The reference channel is the estimator, not a candidate arm — it is
  // cloned, never fault-injected (its profile fully determines it).
  decorated.reference =
      std::make_unique<ReferenceDetector>(pool.reference->profile());
  return decorated;
}

const StrategyOutcome* ExperimentResult::Find(const std::string& label) const {
  for (const auto& o : outcomes) {
    if (o.label == label) return &o;
  }
  return nullptr;
}

Result<FrameMatrix> BuildTrialMatrix(const ExperimentConfig& config,
                                     const DetectorPool& pool,
                                     uint64_t trial_index) {
  VQE_RETURN_NOT_OK(config.Validate());
  const uint64_t trial_seed = HashCombine(config.base_seed, trial_index);
  SampleOptions sample;
  sample.scene_scale = config.scene_scale;
  sample.seed = trial_seed;
  VQE_ASSIGN_OR_RETURN(Video video, SampleVideo(*config.dataset, sample));
  if (config.video_transform) config.video_transform(video, trial_seed);
  // A skip-enabled engine scores propagated detections against ground
  // truth, which the eager backend can only do when the matrix kept its
  // per-frame temporal outputs — flip the flag rather than make every
  // caller remember the coupling.
  MatrixOptions matrix_options = config.matrix;
  if (config.engine.skip.enabled()) {
    matrix_options.keep_temporal_outputs = true;
  }
  return BuildFrameMatrix(video, pool, trial_seed, matrix_options);
}

Result<std::unique_ptr<LazyFrameEvaluator>> BuildTrialEvaluator(
    const ExperimentConfig& config, const DetectorPool& pool,
    uint64_t trial_index) {
  VQE_RETURN_NOT_OK(config.Validate());
  const uint64_t trial_seed = HashCombine(config.base_seed, trial_index);
  SampleOptions sample;
  sample.scene_scale = config.scene_scale;
  sample.seed = trial_seed;
  VQE_ASSIGN_OR_RETURN(Video video, SampleVideo(*config.dataset, sample));
  if (config.video_transform) config.video_transform(video, trial_seed);
  return LazyFrameEvaluator::Create(std::move(video), pool, trial_seed,
                                    config.matrix);
}

Result<ExperimentResult> RunExperiment(
    const ExperimentConfig& config, const DetectorPool& pool,
    const std::vector<StrategySpec>& strategies) {
  VQE_RETURN_NOT_OK(config.Validate());
  if (strategies.empty()) {
    return Status::InvalidArgument("no strategies to run");
  }

  // With fault scripts configured, run every trial against the decorated
  // pool. The decoration is non-owning, so `pool` (a parameter with caller
  // lifetime) safely backs it for the whole experiment.
  const DetectorPool* run_pool = &pool;
  DetectorPool faulty_pool;
  if (!config.fault_scripts.empty()) {
    VQE_ASSIGN_OR_RETURN(faulty_pool,
                         ApplyFaultScripts(pool, config.fault_scripts));
    run_pool = &faulty_pool;
  }

  ExperimentResult result;
  result.outcomes.resize(strategies.size());
  for (size_t i = 0; i < strategies.size(); ++i) {
    result.outcomes[i].label = strategies[i].label;
  }
  for (auto& o : result.outcomes) {
    o.runs.resize(static_cast<size_t>(config.trials));
  }

  // Resolve the evaluation mode once, before any trial runs. kAuto goes
  // lazy only when laziness can pay off: every strategy in the line-up is
  // online (!needs_full_lattice()) and the engine will not run the
  // full-lattice regret scan. Factories are instantiated once here purely
  // to read the flag; trial runs make fresh instances as before.
  bool lazy = config.evaluation == EvaluationMode::kLazy;
  if (config.evaluation == EvaluationMode::kAuto &&
      !config.engine.compute_regret) {
    lazy = true;
    for (const auto& spec : strategies) {
      auto probe = spec.make == nullptr ? nullptr : spec.make();
      if (probe == nullptr) {
        return Status::Internal("strategy factory returned null");
      }
      if (probe->needs_full_lattice()) {
        lazy = false;
        break;
      }
    }
  }

  // One trial = sample video, build matrix, run every strategy. Trials are
  // independent and deterministically seeded, so they can run on worker
  // threads; results land in pre-sized slots, making the outcome identical
  // for any thread count. Trial- and frame-level parallelism share the
  // process pool: when trials occupy the workers, BuildFrameMatrix's inner
  // ParallelFor detects the enclosing region and stays serial.
  std::vector<double> frames_per_trial(static_cast<size_t>(config.trials),
                                       0.0);
  std::vector<Status> trial_status(static_cast<size_t>(config.trials));
  auto run_trial = [&](size_t trial) {
    // Either backend yields bit-identical runs (shared FrameEvalContext
    // kernel); lazy skips the masks no strategy touches. One evaluator is
    // shared across the trial's strategies — cells are pure functions of
    // (frame, mask), so later strategies just hit the memo.
    std::unique_ptr<LazyFrameEvaluator> evaluator;
    FrameMatrix matrix;
    EvaluationSource* source = nullptr;
    if (lazy) {
      auto eval_result =
          BuildTrialEvaluator(config, *run_pool, static_cast<uint64_t>(trial));
      if (!eval_result.ok()) {
        trial_status[static_cast<size_t>(trial)] = eval_result.status();
        return;
      }
      evaluator = std::move(eval_result).value();
      source = evaluator.get();
      frames_per_trial[static_cast<size_t>(trial)] =
          static_cast<double>(evaluator->num_frames());
    } else {
      auto matrix_result =
          BuildTrialMatrix(config, *run_pool, static_cast<uint64_t>(trial));
      if (!matrix_result.ok()) {
        trial_status[static_cast<size_t>(trial)] = matrix_result.status();
        return;
      }
      matrix = std::move(matrix_result).value();
      frames_per_trial[static_cast<size_t>(trial)] =
          static_cast<double>(matrix.size());
    }
    MatrixEvaluationSource matrix_source(matrix);
    if (source == nullptr) source = &matrix_source;

    EngineOptions engine = config.engine;
    engine.strategy_seed =
        HashCombine(config.base_seed, 0xABCD0000ULL + trial);

    for (size_t i = 0; i < strategies.size(); ++i) {
      auto strategy = strategies[i].make();
      if (strategy == nullptr) {
        trial_status[static_cast<size_t>(trial)] =
            Status::Internal("strategy factory returned null");
        return;
      }
      // Each (trial, strategy) run checkpoints into its own directory so
      // concurrent trials never share generation files and a resumed
      // experiment picks every run up exactly where it stopped.
      if (config.engine.checkpoint.enabled()) {
        engine.checkpoint.directory = config.engine.checkpoint.directory +
                                      "/trial-" + std::to_string(trial) + "/" +
                                      SanitizeLabel(strategies[i].label);
      }
      auto run = RunStrategy(*source, strategy.get(), engine);
      if (!run.ok()) {
        trial_status[static_cast<size_t>(trial)] = run.status();
        return;
      }
      result.outcomes[i].runs[static_cast<size_t>(trial)] =
          std::move(run).value();
    }
  };

  ParallelFor(static_cast<size_t>(config.trials), config.parallelism,
              run_trial);

  double total_frames = 0.0;
  for (int trial = 0; trial < config.trials; ++trial) {
    VQE_RETURN_NOT_OK(trial_status[static_cast<size_t>(trial)]);
    total_frames += frames_per_trial[static_cast<size_t>(trial)];
  }
  result.avg_video_frames = total_frames / config.trials;

  for (auto& outcome : result.outcomes) {
    outcome.regret_available = config.engine.compute_regret;
    std::vector<double> s_sum, ap, cost, regret, frames;
    std::vector<double> fallback, failed, fault;
    std::vector<double> simulated, algo_wall;
    for (const auto& run : outcome.runs) {
      s_sum.push_back(run.s_sum);
      ap.push_back(run.avg_true_ap);
      cost.push_back(run.avg_norm_cost);
      regret.push_back(run.regret);
      frames.push_back(static_cast<double>(run.frames_processed));
      fallback.push_back(static_cast<double>(run.fallback_frames));
      failed.push_back(static_cast<double>(run.failed_frames));
      fault.push_back(run.breakdown.fault_ms);
      simulated.push_back(run.breakdown.SimulatedMs());
      algo_wall.push_back(run.breakdown.algorithm_ms);
    }
    outcome.s_sum = Summarize(s_sum);
    outcome.avg_true_ap = Summarize(ap);
    outcome.avg_norm_cost = Summarize(cost);
    outcome.regret = Summarize(regret);
    outcome.frames_processed = Summarize(frames);
    outcome.fallback_frames = Summarize(fallback);
    outcome.failed_frames = Summarize(failed);
    outcome.fault_ms = Summarize(fault);
    // Two separate clocks on purpose: simulated per-run frame time sums
    // cleanly across concurrent trials, strategy wall time overlaps and
    // must stay its own ledger (see StrategyOutcome docs).
    outcome.simulated_ms = Summarize(simulated);
    outcome.algorithm_wall_ms = Summarize(algo_wall);
  }
  return result;
}

std::vector<StrategySpec> DefaultTuviStrategies(size_t gamma,
                                                size_t ef_explore) {
  return {
      {"OPT", [] { return std::make_unique<OptStrategy>(); }},
      {"BF", [] { return std::make_unique<BruteForceStrategy>(); }},
      {"SGL", [] { return std::make_unique<SingleBestStrategy>(); }},
      {"RAND", [] { return std::make_unique<RandomStrategy>(); }},
      {"EF",
       [ef_explore] {
         return std::make_unique<ExploreFirstStrategy>(ef_explore);
       }},
      {"MES",
       [gamma] {
         MesOptions opt;
         opt.gamma = gamma;
         return std::make_unique<MesStrategy>(opt);
       }},
  };
}

}  // namespace vqe
