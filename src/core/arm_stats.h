// Per-ensemble ("arm") bandit statistics: the placeholders T_S and μ̂_S of
// Alg. 1, in both the cumulative form (Eq. 10) and the sliding-window form
// of SW-MES (Eq. 15).

#ifndef VQE_CORE_ARM_STATS_H_
#define VQE_CORE_ARM_STATS_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/ensemble_id.h"
#include "snapshot/wire.h"

namespace vqe {

/// Cumulative count/mean per arm (Eq. 10).
class ArmStats {
 public:
  /// Allocates stats for all ensembles of an m-model pool, zeroed.
  void Reset(int num_models) {
    const size_t n = NumEnsembles(num_models) + 1;
    count_.assign(n, 0);
    mean_.assign(n, 0.0);
  }

  /// Records one observation of arm `s` (running-mean update, Eq. 8/9).
  void Record(EnsembleId s, double reward) {
    const uint64_t n = ++count_[s];
    mean_[s] += (reward - mean_[s]) / static_cast<double>(n);
  }

  /// T_S: number of observations of arm s.
  uint64_t Count(EnsembleId s) const { return count_[s]; }

  /// μ̂_S: mean observed reward of arm s (0 before any observation).
  double Mean(EnsembleId s) const { return mean_[s]; }

  size_t size() const { return count_.size(); }

  /// Serializes counts and means verbatim (bit patterns preserved).
  void Save(ByteWriter& w) const {
    WriteVecU64(w, count_);
    WriteVecF64(w, mean_);
  }

  /// Restores a Save() payload. The stats must already be Reset() to the
  /// same pool size; a size mismatch means the snapshot belongs to a
  /// different configuration and is rejected without modifying state.
  Status Restore(ByteReader& r) {
    std::vector<uint64_t> count;
    std::vector<double> mean;
    VQE_RETURN_NOT_OK(ReadVecU64(r, &count));
    VQE_RETURN_NOT_OK(ReadVecF64(r, &mean));
    if (count.size() != count_.size() || mean.size() != mean_.size()) {
      return Status::DataLoss("ArmStats arm-count mismatch");
    }
    count_ = std::move(count);
    mean_ = std::move(mean);
    return Status::OK();
  }

 private:
  std::vector<uint64_t> count_;
  std::vector<double> mean_;
};

/// Sliding-window count/mean per arm (Eq. 15): statistics cover only the
/// last λ frames; evicted frames' contributions are subtracted in O(arms
/// updated on that frame).
class SlidingWindowArmStats {
 public:
  /// Resets for an m-model pool with window size λ (must be >= 1).
  void Reset(int num_models, size_t window) {
    const size_t n = NumEnsembles(num_models) + 1;
    count_.assign(n, 0);
    sum_.assign(n, 0.0);
    window_ = window;
    history_.clear();
  }

  /// Records the rewards observed on one frame: a list of (arm, reward)
  /// pairs (the selected ensemble and its subsets). Frames beyond the
  /// window are evicted.
  void RecordFrame(std::vector<std::pair<EnsembleId, double>> observations) {
    for (const auto& [s, r] : observations) {
      ++count_[s];
      sum_[s] += r;
    }
    history_.push_back(std::move(observations));
    while (history_.size() > window_) {
      for (const auto& [s, r] : history_.front()) {
        --count_[s];
        sum_[s] -= r;
      }
      history_.pop_front();
    }
  }

  /// T^λ_S over the window.
  uint64_t Count(EnsembleId s) const { return count_[s]; }

  /// μ̂^λ_S over the window (0 when the arm is absent from the window).
  double Mean(EnsembleId s) const {
    return count_[s] == 0 ? 0.0
                          : sum_[s] / static_cast<double>(count_[s]);
  }

  /// Number of frames currently covered (≤ λ).
  size_t FramesInWindow() const { return history_.size(); }

  size_t window() const { return window_; }

  /// Serializes counts, sums, and the full eviction history. The running
  /// sums are written verbatim rather than recomputed from the history on
  /// restore: subtraction-based eviction gives them a fold-order-specific
  /// rounding signature, and re-summing would change bit patterns.
  void Save(ByteWriter& w) const {
    WriteVecU64(w, count_);
    WriteVecF64(w, sum_);
    w.U64(window_);
    w.U64(history_.size());
    for (const auto& frame : history_) {
      w.U64(frame.size());
      for (const auto& [s, reward] : frame) {
        w.U32(s);
        w.F64(reward);
      }
    }
  }

  /// Restores a Save() payload onto stats already Reset() to the same pool
  /// size and window. Malformed payloads (size mismatch, out-of-range arm
  /// ids, history longer than the window) return DataLoss untouched.
  Status Restore(ByteReader& r) {
    std::vector<uint64_t> count;
    std::vector<double> sum;
    VQE_RETURN_NOT_OK(ReadVecU64(r, &count));
    VQE_RETURN_NOT_OK(ReadVecF64(r, &sum));
    if (count.size() != count_.size() || sum.size() != sum_.size()) {
      return Status::DataLoss("SlidingWindowArmStats arm-count mismatch");
    }
    uint64_t window = 0, frames = 0;
    VQE_RETURN_NOT_OK(r.U64(&window));
    VQE_RETURN_NOT_OK(r.U64(&frames));
    if (window != window_) {
      return Status::DataLoss("SlidingWindowArmStats window mismatch");
    }
    if (frames > window) {
      return Status::DataLoss("sliding-window history exceeds window");
    }
    std::deque<std::vector<std::pair<EnsembleId, double>>> history;
    for (uint64_t f = 0; f < frames; ++f) {
      uint64_t n = 0;
      VQE_RETURN_NOT_OK(r.U64(&n));
      if (n > r.remaining() / 12) {  // 4 bytes mask + 8 bytes reward each
        return Status::DataLoss("sliding-window frame count exceeds payload");
      }
      std::vector<std::pair<EnsembleId, double>> frame;
      frame.reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n; ++i) {
        uint32_t s = 0;
        double reward = 0;
        VQE_RETURN_NOT_OK(r.U32(&s));
        VQE_RETURN_NOT_OK(r.F64(&reward));
        if (s == 0 || s >= count_.size()) {
          return Status::DataLoss("sliding-window arm id out of range");
        }
        frame.emplace_back(static_cast<EnsembleId>(s), reward);
      }
      history.push_back(std::move(frame));
    }
    count_ = std::move(count);
    sum_ = std::move(sum);
    history_ = std::move(history);
    return Status::OK();
  }

 private:
  std::vector<uint64_t> count_;
  std::vector<double> sum_;
  std::deque<std::vector<std::pair<EnsembleId, double>>> history_;
  size_t window_ = 1;
};

}  // namespace vqe

#endif  // VQE_CORE_ARM_STATS_H_
