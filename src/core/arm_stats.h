// Per-ensemble ("arm") bandit statistics: the placeholders T_S and μ̂_S of
// Alg. 1, in both the cumulative form (Eq. 10) and the sliding-window form
// of SW-MES (Eq. 15).

#ifndef VQE_CORE_ARM_STATS_H_
#define VQE_CORE_ARM_STATS_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/ensemble_id.h"

namespace vqe {

/// Cumulative count/mean per arm (Eq. 10).
class ArmStats {
 public:
  /// Allocates stats for all ensembles of an m-model pool, zeroed.
  void Reset(int num_models) {
    const size_t n = NumEnsembles(num_models) + 1;
    count_.assign(n, 0);
    mean_.assign(n, 0.0);
  }

  /// Records one observation of arm `s` (running-mean update, Eq. 8/9).
  void Record(EnsembleId s, double reward) {
    const uint64_t n = ++count_[s];
    mean_[s] += (reward - mean_[s]) / static_cast<double>(n);
  }

  /// T_S: number of observations of arm s.
  uint64_t Count(EnsembleId s) const { return count_[s]; }

  /// μ̂_S: mean observed reward of arm s (0 before any observation).
  double Mean(EnsembleId s) const { return mean_[s]; }

  size_t size() const { return count_.size(); }

 private:
  std::vector<uint64_t> count_;
  std::vector<double> mean_;
};

/// Sliding-window count/mean per arm (Eq. 15): statistics cover only the
/// last λ frames; evicted frames' contributions are subtracted in O(arms
/// updated on that frame).
class SlidingWindowArmStats {
 public:
  /// Resets for an m-model pool with window size λ (must be >= 1).
  void Reset(int num_models, size_t window) {
    const size_t n = NumEnsembles(num_models) + 1;
    count_.assign(n, 0);
    sum_.assign(n, 0.0);
    window_ = window;
    history_.clear();
  }

  /// Records the rewards observed on one frame: a list of (arm, reward)
  /// pairs (the selected ensemble and its subsets). Frames beyond the
  /// window are evicted.
  void RecordFrame(std::vector<std::pair<EnsembleId, double>> observations) {
    for (const auto& [s, r] : observations) {
      ++count_[s];
      sum_[s] += r;
    }
    history_.push_back(std::move(observations));
    while (history_.size() > window_) {
      for (const auto& [s, r] : history_.front()) {
        --count_[s];
        sum_[s] -= r;
      }
      history_.pop_front();
    }
  }

  /// T^λ_S over the window.
  uint64_t Count(EnsembleId s) const { return count_[s]; }

  /// μ̂^λ_S over the window (0 when the arm is absent from the window).
  double Mean(EnsembleId s) const {
    return count_[s] == 0 ? 0.0
                          : sum_[s] / static_cast<double>(count_[s]);
  }

  /// Number of frames currently covered (≤ λ).
  size_t FramesInWindow() const { return history_.size(); }

  size_t window() const { return window_; }

 private:
  std::vector<uint64_t> count_;
  std::vector<double> sum_;
  std::deque<std::vector<std::pair<EnsembleId, double>>> history_;
  size_t window_ = 1;
};

}  // namespace vqe

#endif  // VQE_CORE_ARM_STATS_H_
