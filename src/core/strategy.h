// The selection-strategy interface 𝒢 of the paper (§2.4): per frame, pick
// the ensemble to run, then observe the estimated rewards of the arms that
// were (implicitly) evaluated on that frame.
//
// Information protocol: the engine passes estimated scores only for the
// non-empty subsets of the selected ensemble (everything else is NaN),
// because those are the only ensembles whose outputs exist — per-model
// detections are materialized once and subsets are fusion-only (Alg. 1
// lines 9–10). Oracle baselines (OPT, SGL) additionally receive the full
// matrix through an explicit OracleView, making their privileged access
// visible in the type system.

#ifndef VQE_CORE_STRATEGY_H_
#define VQE_CORE_STRATEGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/ensemble_id.h"
#include "core/frame_matrix.h"
#include "core/scoring.h"

namespace vqe {

/// Privileged read access to true scores, granted only to oracle baselines.
class OracleView {
 public:
  OracleView(const FrameMatrix* matrix, ScoringFunction sc)
      : matrix_(matrix), sc_(sc) {}

  size_t num_frames() const { return matrix_->size(); }
  int num_models() const { return matrix_->num_models; }

  /// True score r_{S|v_t} (Eq. 30 with the true AP).
  double TrueScore(size_t t, EnsembleId s) const {
    const FrameEvaluation& fe = matrix_->frames[t];
    const double norm_cost =
        fe.max_cost_ms > 0 ? fe.cost_ms[s] / fe.max_cost_ms : 0.0;
    return sc_.Score(fe.true_ap[s], norm_cost);
  }

  /// True AP a_{S|v_t}.
  double TrueAp(size_t t, EnsembleId s) const {
    return matrix_->frames[t].true_ap[s];
  }

 private:
  const FrameMatrix* matrix_;
  ScoringFunction sc_;
};

/// Per-video context handed to strategies at the start of a run.
struct StrategyContext {
  int num_models = 0;
  size_t num_frames = 0;
  ScoringFunction sc;
  /// Seed for randomized strategies (varies per trial).
  uint64_t seed = 0;
  /// Non-null only for oracle baselines.
  const OracleView* oracle = nullptr;
};

/// One frame's feedback to the strategy.
struct FrameFeedback {
  size_t t = 0;
  EnsembleId selected = 0;
  /// Estimated scores r̂_{S|v_t}, indexed by mask; NaN for masks that are
  /// not subsets of `selected`.
  const std::vector<double>* est_score = nullptr;
  /// Normalized costs ĉ_{S|v_t} of the same masks (observable alongside
  /// the score; budget-aware strategies consume them). NaN outside the
  /// selection's subsets. Null when the engine does not provide costs.
  const std::vector<double>* norm_cost = nullptr;
};

/// A selection strategy. Implementations must be reusable across runs:
/// BeginVideo resets all state.
class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;

  virtual const std::string& name() const = 0;

  /// Resets state for a new video/run.
  virtual void BeginVideo(const StrategyContext& ctx) = 0;

  /// Chooses the ensemble to run on frame t (0-based).
  virtual EnsembleId Select(size_t t) = 0;

  /// Reports the estimated rewards observed on frame t.
  virtual void Observe(const FrameFeedback& feedback) = 0;

  /// True when the strategy consumes reference-model AP estimates each
  /// frame (the engine then charges/accounts REF inference on that frame).
  virtual bool UsesReferenceModel() const { return true; }
};

}  // namespace vqe

#endif  // VQE_CORE_STRATEGY_H_
