// The selection-strategy interface 𝒢 of the paper (§2.4): per frame, pick
// the ensemble to run, then observe the estimated rewards of the arms that
// were (implicitly) evaluated on that frame.
//
// Information protocol: the engine passes estimated scores only for the
// non-empty subsets of the selected ensemble (everything else is NaN),
// because those are the only ensembles whose outputs exist — per-model
// detections are materialized once and subsets are fusion-only (Alg. 1
// lines 9–10). Oracle baselines (OPT, SGL) additionally receive the full
// matrix through an explicit OracleView, making their privileged access
// visible in the type system.

#ifndef VQE_CORE_STRATEGY_H_
#define VQE_CORE_STRATEGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ensemble_id.h"
#include "core/evaluation_source.h"
#include "core/frame_matrix.h"
#include "core/scoring.h"
#include "snapshot/wire.h"

namespace vqe {

/// Privileged read access to true scores, granted only to oracle baselines.
/// Backed by whichever EvaluationSource the engine runs against; on a lazy
/// source every probe materializes the probed cell, so oracle scans over
/// the whole lattice (OPT) keep the eager matrix backend
/// (needs_full_lattice below).
class OracleView {
 public:
  OracleView(EvaluationSource* source, ScoringFunction sc)
      : source_(source), sc_(sc) {}

  size_t num_frames() const { return source_->num_frames(); }
  int num_models() const { return source_->num_models(); }

  /// True score r_{S|v_t} (Eq. 30 with the true AP).
  double TrueScore(size_t t, EnsembleId s) const {
    const MaskEvaluation e = source_->Eval(t, s);
    const double max_cost = source_->Stats(t).max_cost_ms;
    const double norm_cost = max_cost > 0 ? e.cost_ms / max_cost : 0.0;
    return sc_.Score(e.true_ap, norm_cost);
  }

  /// True AP a_{S|v_t}.
  double TrueAp(size_t t, EnsembleId s) const {
    return source_->Eval(t, s).true_ap;
  }

 private:
  EvaluationSource* source_;
  ScoringFunction sc_;
};

/// Per-video context handed to strategies at the start of a run.
struct StrategyContext {
  int num_models = 0;
  size_t num_frames = 0;
  ScoringFunction sc;
  /// Seed for randomized strategies (varies per trial).
  uint64_t seed = 0;
  /// Non-null only for oracle baselines.
  const OracleView* oracle = nullptr;
};

/// One frame's feedback to the strategy.
struct FrameFeedback {
  size_t t = 0;
  EnsembleId selected = 0;
  /// The arm that actually ran: `selected` minus the members whose
  /// detector call failed on this frame. 0 means "same as selected" (the
  /// pre-runtime engines never set it). Scores are published for subsets
  /// of the realized arm only — outputs of failed members do not exist.
  EnsembleId realized = 0;
  /// Estimated scores r̂_{S|v_t}, indexed by mask; NaN for masks that are
  /// not subsets of the realized arm.
  const std::vector<double>* est_score = nullptr;
  /// Normalized costs ĉ_{S|v_t} of the same masks (observable alongside
  /// the score; budget-aware strategies consume them). NaN outside the
  /// realized arm's subsets. Null when the engine does not provide costs.
  const std::vector<double>* norm_cost = nullptr;

  /// The arm whose subset lattice carries valid observations — what
  /// bandits should credit (Alg. 1 lines 9-10 applied to the arm that
  /// ran, not the arm that was asked for).
  EnsembleId CreditMask() const { return realized == 0 ? selected : realized; }
};

/// A selection strategy. Implementations must be reusable across runs:
/// BeginVideo resets all state.
class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;

  virtual const std::string& name() const = 0;

  /// Resets state for a new video/run.
  virtual void BeginVideo(const StrategyContext& ctx) = 0;

  /// Chooses the ensemble to run on frame t (0-based).
  virtual EnsembleId Select(size_t t) = 0;

  /// Reports the estimated rewards observed on frame t.
  virtual void Observe(const FrameFeedback& feedback) = 0;

  /// True when the strategy consumes reference-model AP estimates each
  /// frame (the engine then charges/accounts REF inference on that frame).
  virtual bool UsesReferenceModel() const { return true; }

  /// True when a run of this strategy reads (essentially) the whole
  /// 2^m − 1 mask lattice per frame — OPT's oracle argmax scan, BF's
  /// full-pool subset updates — so an eagerly built FrameMatrix is at
  /// least as fast as lazy materialization. Online strategies that only
  /// touch their selections' subset lattices return false (the default)
  /// and profit from a lazy source (experiment.h's EvaluationMode::kAuto
  /// switches on this hook).
  virtual bool needs_full_lattice() const { return false; }

  /// Restricts candidate arms to subsets of `eligible` — the engine calls
  /// this each frame with the models whose circuit breakers admit calls,
  /// so a known-bad model disappears from UCB enumeration until its
  /// breaker lets probes through again. 0 (the default, and the value
  /// BeginVideo implementations should restore) means "no restriction".
  virtual void SetEligibleModels(EnsembleId eligible) {
    eligible_models_ = eligible;
  }

  /// Serializes every piece of state a resumed run needs to continue
  /// bit-identically (arm statistics, RNG streams, phase counters). The
  /// default writes nothing — correct for strategies whose BeginVideo
  /// reconstructs all state deterministically (OPT, BF, SGL).
  virtual Status SaveState(ByteWriter& writer) const {
    (void)writer;
    return Status::OK();
  }

  /// Restores state written by SaveState. The resume protocol is:
  /// construct an identically-configured strategy, call BeginVideo (sizes
  /// vectors, wires the oracle), then RestoreState to overlay the saved
  /// statistics. Returns DataLoss on malformed payloads, leaving the
  /// strategy in its fresh BeginVideo state.
  virtual Status RestoreState(ByteReader& reader) {
    (void)reader;
    return Status::OK();
  }

 protected:
  /// The arm universe for this frame: the eligible mask, or the full pool
  /// when unrestricted. Strategies enumerate subsets of this instead of
  /// [1, 2^m − 1].
  EnsembleId EligibleMask(int num_models) const {
    return eligible_models_ == 0 ? FullEnsemble(num_models) : eligible_models_;
  }

 private:
  EnsembleId eligible_models_ = 0;
};

}  // namespace vqe

#endif  // VQE_CORE_STRATEGY_H_
