#include "core/engine.h"

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "common/stopwatch.h"
#include "core/engine_snapshot.h"
#include "snapshot/snapshot.h"

namespace vqe {

Status EngineOptions::Validate() const {
  VQE_RETURN_NOT_OK(sc.Validate());
  if (budget_ms < 0.0) {
    return Status::InvalidArgument("budget_ms must be >= 0");
  }
  VQE_RETURN_NOT_OK(checkpoint.Validate());
  VQE_RETURN_NOT_OK(skip.Validate());
  return breaker.Validate();
}

namespace {

/// Serializes the complete resumable state of a run into a snapshot file.
Result<std::vector<uint8_t>> BuildEngineSnapshot(
    const EngineRunIdentity& identity, size_t next_frame, double algo_seconds,
    const RunResult& result, const SelectionStrategy& strategy,
    const std::vector<CircuitBreaker>& breakers, const EvaluationSource& source,
    bool include_source, const TemporalGate* gate, double last_max_cost_ms) {
  SnapshotWriter snap;
  WriteEngineIdentity(snap.AddSection(kEngineMetaSection), identity);
  {
    ByteWriter& w = snap.AddSection(kEngineCursorSection);
    w.U64(next_frame);
    w.F64(algo_seconds);
  }
  WriteRunResult(snap.AddSection(kEngineResultSection), result);
  VQE_RETURN_NOT_OK(strategy.SaveState(snap.AddSection(kStrategySection)));
  {
    ByteWriter& w = snap.AddSection(kBreakersSection);
    w.U64(breakers.size());
    for (const CircuitBreaker& b : breakers) {
      VQE_RETURN_NOT_OK(b.SaveState(w));
    }
  }
  if (gate != nullptr) {
    ByteWriter& w = snap.AddSection(kTemporalSection);
    w.F64(last_max_cost_ms);
    VQE_RETURN_NOT_OK(gate->SaveState(w));
  }
  if (include_source) {
    VQE_RETURN_NOT_OK(source.SaveState(snap.AddSection(kSourceSection)));
  }
  return snap.Finish();
}

/// Overlays a validated snapshot onto a freshly initialized run. The
/// identity must match (FailedPrecondition otherwise — the checkpoint
/// belongs to a different configuration); structural problems inside a
/// CRC-valid section return DataLoss.
Status RestoreEngineRun(const SnapshotReader& snap,
                        const EngineRunIdentity& expected, uint32_t num_masks,
                        SelectionStrategy* strategy, EvaluationSource& source,
                        std::vector<CircuitBreaker>* breakers,
                        RunResult* result, size_t* next_frame,
                        double* algo_seconds, bool include_source,
                        TemporalGate* gate, double* last_max_cost_ms) {
  VQE_ASSIGN_OR_RETURN(ByteReader meta, snap.Section(kEngineMetaSection));
  EngineRunIdentity saved;
  VQE_RETURN_NOT_OK(ReadEngineIdentity(meta, &saved));
  VQE_RETURN_NOT_OK(meta.ExpectEnd());
  VQE_RETURN_NOT_OK(saved.ExpectMatches(expected));

  VQE_ASSIGN_OR_RETURN(ByteReader cursor, snap.Section(kEngineCursorSection));
  uint64_t frame = 0;
  VQE_RETURN_NOT_OK(cursor.U64(&frame));
  VQE_RETURN_NOT_OK(cursor.F64(algo_seconds));
  VQE_RETURN_NOT_OK(cursor.ExpectEnd());
  if (frame >= expected.num_frames) {
    return Status::DataLoss("checkpoint cursor beyond end of video");
  }

  VQE_ASSIGN_OR_RETURN(ByteReader res, snap.Section(kEngineResultSection));
  RunResult restored;
  VQE_RETURN_NOT_OK(ReadRunResult(res, &restored));
  VQE_RETURN_NOT_OK(res.ExpectEnd());
  if (restored.selection_counts.size() != num_masks + 1 ||
      restored.model_availability.size() !=
          static_cast<size_t>(expected.num_models)) {
    return Status::DataLoss("checkpoint result shape mismatch");
  }

  VQE_ASSIGN_OR_RETURN(ByteReader strat, snap.Section(kStrategySection));
  VQE_RETURN_NOT_OK(strategy->RestoreState(strat));
  VQE_RETURN_NOT_OK(strat.ExpectEnd());

  VQE_ASSIGN_OR_RETURN(ByteReader brk, snap.Section(kBreakersSection));
  uint64_t breaker_count = 0;
  VQE_RETURN_NOT_OK(brk.U64(&breaker_count));
  if (breaker_count != breakers->size()) {
    return Status::DataLoss("checkpoint breaker count mismatch");
  }
  for (CircuitBreaker& b : *breakers) {
    VQE_RETURN_NOT_OK(b.RestoreState(brk));
  }
  VQE_RETURN_NOT_OK(brk.ExpectEnd());

  if (gate != nullptr) {
    // A skip-enabled run whose checkpoint lacks the temporal section
    // cannot resume deterministically: the gate's planned skips, bandit
    // arms and tracks are unrecoverable. (Identity matching already
    // guarantees the section exists for snapshots this build wrote.)
    VQE_ASSIGN_OR_RETURN(ByteReader tmp, snap.Section(kTemporalSection));
    VQE_RETURN_NOT_OK(tmp.F64(last_max_cost_ms));
    VQE_RETURN_NOT_OK(gate->RestoreState(tmp));
    VQE_RETURN_NOT_OK(tmp.ExpectEnd());
  }

  if (include_source && snap.HasSection(kSourceSection)) {
    VQE_ASSIGN_OR_RETURN(ByteReader src, snap.Section(kSourceSection));
    VQE_RETURN_NOT_OK(source.RestoreState(src));
    VQE_RETURN_NOT_OK(src.ExpectEnd());
  }

  const RunResult::CheckpointReport report = result->checkpoint;
  *result = std::move(restored);
  result->checkpoint = report;  // per-invocation, never restored
  *next_frame = static_cast<size_t>(frame);
  return Status::OK();
}

}  // namespace

struct EngineRun::IdentityHolder {
  EngineRunIdentity identity;
};

EngineRun::~EngineRun() = default;

EngineRun::EngineRun(EvaluationSource& source, SelectionStrategy* strategy,
                     const EngineOptions& options)
    : source_(&source),
      strategy_(strategy),
      options_(options),
      num_masks_(source.num_ensembles()),
      num_frames_(source.num_frames()),
      m_(source.num_models()),
      full_(FullEnsemble(source.num_models())),
      oracle_(&source, options.sc),
      breakers_(static_cast<size_t>(source.num_models()),
                CircuitBreaker(options.breaker)),
      est_score_(num_masks_ + 1),
      norm_cost_(num_masks_ + 1) {}

Result<std::unique_ptr<EngineRun>> EngineRun::Create(
    EvaluationSource& source, SelectionStrategy* strategy,
    const EngineOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  if (strategy == nullptr) {
    return Status::InvalidArgument("strategy is null");
  }
  if (source.num_models() < 1 || source.num_models() > kMaxPoolSize) {
    return Status::InvalidArgument("source has invalid num_models");
  }
  std::unique_ptr<EngineRun> run(new EngineRun(source, strategy, options));
  if (options.skip.enabled()) {
    if (!source.SupportsPropagation()) {
      return Status::InvalidArgument(
          "skip-enabled run needs a source with temporal propagation "
          "support (LazyFrameEvaluator, or a matrix built with "
          "keep_temporal_outputs)");
    }
    VQE_ASSIGN_OR_RETURN(run->gate_, TemporalGate::Create(options.skip));
  }
  VQE_RETURN_NOT_OK(run->Init());
  return run;
}

Status EngineRun::Init() {
  StrategyContext ctx;
  ctx.num_models = m_;
  ctx.num_frames = num_frames_;
  ctx.sc = options_.sc;
  ctx.seed = options_.strategy_seed;
  ctx.oracle = &oracle_;
  {
    ScopedTimer timer(&algo_time_);
    strategy_->BeginVideo(ctx);
  }

  result_.regret_available = options_.compute_regret;
  result_.selection_counts.assign(num_masks_ + 1, 0);
  result_.model_availability.assign(static_cast<size_t>(m_), {});

  // Checkpointing: fingerprint this configuration, then try to resume from
  // the newest good generation. A missing directory or no snapshots means a
  // fresh start; a snapshot from a *different* configuration is an error
  // (resuming it would silently change results).
  identity_ = std::make_unique<IdentityHolder>();
  EngineRunIdentity& identity = identity_->identity;
  identity.strategy_name = strategy_->name();
  identity.num_models = m_;
  identity.num_frames = num_frames_;
  identity.strategy_seed = options_.strategy_seed;
  identity.budget_ms = options_.budget_ms;
  identity.sc = options_.sc;
  identity.compute_regret = options_.compute_regret;
  identity.record_cost_curve = options_.record_cost_curve;
  identity.breaker = options_.breaker;
  identity.skip = options_.skip;

  if (options_.checkpoint.enabled()) {
    ckpt_ = std::make_unique<CheckpointManager>(
        options_.checkpoint.directory, options_.checkpoint.keep_generations);
    if (options_.checkpoint.resume) {
      Result<CheckpointManager::Loaded> loaded = ckpt_->LoadLatestGood();
      if (loaded.ok()) {
        result_.checkpoint.generations_rejected = loaded->rejected;
        double saved_algo_seconds = 0.0;
        VQE_RETURN_NOT_OK(RestoreEngineRun(
            loaded->snapshot, identity, num_masks_, strategy_, *source_,
            &breakers_, &result_, &next_frame_, &saved_algo_seconds,
            options_.checkpoint.include_source, gate_.get(),
            &last_max_cost_ms_));
        algo_time_.Add(saved_algo_seconds);
        result_.checkpoint.resumed = true;
        result_.checkpoint.resumed_from_frame = next_frame_;
        next_generation_ = loaded->sequence + 1;
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        return loaded.status();
      }
    }
  }
  if (options_.obs.enabled()) SetObs(options_.obs);
  return Status::OK();
}

bool EngineRun::done() const {
  if (finished_ || next_frame_ >= num_frames_) return true;
  // Alg. 2 line 6: proceed only while C <= B.
  return options_.budget_ms > 0.0 &&
         result_.charged_cost_ms > options_.budget_ms;
}

Status EngineRun::StepFrame() {
  if (done()) {
    return Status::FailedPrecondition("StepFrame on a finished run");
  }
  const size_t t = next_frame_;

  // Temporal gate first, fed only by the frame's scene-context byte: on a
  // skip the detectors (and, on a lazy source, the frame materialization
  // itself) never run. With the gate disabled this block compiles away to
  // a null check.
  if (gate_ != nullptr && gate_->ShouldSkip(source_->PeekContext(t))) {
    return StepSkippedFrame(t);
  }

  const double nan = std::numeric_limits<double>::quiet_NaN();

  // Observability prologue: instrumentation only ever READS run state, so
  // the enabled path stays bit-identical to the disabled one (enforced by
  // the obs_test matrix). All sim-domain spans timestamp on this stream's
  // own charged-cost clock; wall spans on the run's instrumented-wall
  // ledger — both monotone per track by construction.
  const bool obs_on = obs_.enabled();
  const int64_t frame_i64 = static_cast<int64_t>(t);
  const double sim0 = result_.charged_cost_ms;
  const double fault0 = result_.breakdown.fault_ms;

  // Mask open-breaker models out of the strategy's candidate arms. If
  // everything is open there is no arm left — fall back to the full pool
  // (equivalent to probing everything) rather than selecting nothing.
  EnsembleId healthy = 0;
  for (int i = 0; i < m_; ++i) {
    if (breakers_[static_cast<size_t>(i)].AllowsCallAt(t)) {
      healthy |= Singleton(i);
    }
  }
  if (healthy == 0) healthy = full_;
  // Overload-ladder ensemble shrink: restrict to the degradation mask when
  // it leaves at least one healthy model; an empty intersection means the
  // mask would starve the run, so health wins.
  if (degrade_mask_ != 0) {
    const EnsembleId shrunk = healthy & degrade_mask_;
    if (shrunk != 0) healthy = shrunk;
  }
  strategy_->SetEligibleModels(healthy);

  const double select_algo0 = obs_on ? algo_time_.total_seconds() : 0.0;
  EnsembleId selected;
  {
    ScopedTimer timer(&algo_time_);
    selected = strategy_->Select(t);
  }
  if (obs_on) {
    const double select_ms =
        (algo_time_.total_seconds() - select_algo0) * 1e3;
    obs_.CountMs(obs_ids_.algo_ms, select_ms);
    obs_.Span(MetricDomain::kWall, frame_i64, "select", wall_ledger_ms_,
              select_ms);
    wall_ledger_ms_ += select_ms;
  }
  if (selected == 0 || selected > num_masks_) {
    return Status::Internal("strategy selected an invalid ensemble mask");
  }

  // Stats after Select so a lazy source only touches processed frames.
  const FrameStats stats = source_->Stats(t);
  // The arm that actually ran: sources that predate fault accounting
  // report no availability, which means everything answered.
  const EnsembleId avail = stats.fault_aware ? stats.available_mask : full_;
  const EnsembleId realized = selected & avail;

  // Charged cost (Eq. 14; Eq. 12 during full-pool initialization):
  // every selected model once — failed calls included, their time was
  // spent — plus fusion overhead for each realized subset. Wasted time
  // moves from detector_ms to fault_ms; breakers see each member's
  // outcome.
  double frame_cost = 0.0;
  for (int i = 0; i < m_; ++i) {
    if (!ContainsModel(selected, i)) continue;
    const size_t idx = static_cast<size_t>(i);
    const double model_ms = (*stats.model_cost_ms)[idx];
    const double fault_i =
        stats.model_fault_ms != nullptr ? (*stats.model_fault_ms)[idx] : 0.0;
    frame_cost += model_ms;
    result_.breakdown.detector_ms += model_ms - fault_i;
    result_.breakdown.fault_ms += fault_i;
    RunResult::ModelAvailability& health = result_.model_availability[idx];
    ++health.frames_selected;
    health.fault_ms += fault_i;
    if (ContainsModel(avail, i)) {
      breakers_[idx].RecordSuccess(t);
    } else {
      ++health.frames_failed;
      if (obs_on) {
        const uint64_t opens_before = breakers_[idx].opens();
        breakers_[idx].RecordFailure(t);
        obs_.Count(obs_ids_.model_failures);
        if (breakers_[idx].opens() > opens_before) {
          obs_.Count(obs_ids_.breaker_opens);
          obs_.Instant(MetricDomain::kSimulated, frame_i64, "breaker_open",
                       sim0, "model", static_cast<double>(i));
        }
      } else {
        breakers_[idx].RecordFailure(t);
      }
    }
  }
  if (obs_on) {
    // The detect phase: every selected member's simulated inference
    // (faulted time included — it was spent on this frame).
    obs_.Span(MetricDomain::kSimulated, frame_i64, "detect", sim0,
              frame_cost);
  }

  // One pass over the *realized* arm's subset lattice: accumulate fusion
  // overhead and publish estimated rewards (information protocol — NaN
  // for masks whose outputs do not exist, including every mask touching
  // a failed member). ForEachSubset visits the realized mask first, so
  // its own evaluation is captured on the way.
  const double inv_max =
      stats.max_cost_ms > 0.0 ? 1.0 / stats.max_cost_ms : 0.0;
  est_score_.assign(num_masks_ + 1, nan);
  norm_cost_.assign(num_masks_ + 1, nan);
  double overhead = 0.0;
  MaskEvaluation sel_eval;
  if (realized != 0) {
    ForEachSubset(realized, [&](EnsembleId sub) {
      const MaskEvaluation e = source_->Eval(t, sub);
      if (sub == realized) sel_eval = e;
      overhead += e.fusion_overhead_ms;
      norm_cost_[sub] = e.cost_ms * inv_max;
      est_score_[sub] = options_.sc.Score(e.est_ap, norm_cost_[sub]);
    });
  }
  if (obs_on) {
    obs_.Span(MetricDomain::kSimulated, frame_i64, "fuse_eval",
              sim0 + frame_cost, overhead, "lattice_masks",
              realized != 0
                  ? static_cast<double>((1u << EnsembleSize(realized)) - 1)
                  : 0.0);
  }
  frame_cost += overhead;
  result_.breakdown.ensembling_ms += overhead;
  result_.charged_cost_ms += frame_cost;
  if (realized == 0) {
    ++result_.failed_frames;
  } else if (realized != selected) {
    ++result_.fallback_frames;
  }

  if (strategy_->UsesReferenceModel()) {
    result_.breakdown.reference_ms += stats.ref_cost_ms;
  }

  if (realized != 0) {
    FrameFeedback feedback;
    feedback.t = t;
    feedback.selected = selected;
    feedback.realized = realized;
    feedback.est_score = &est_score_;
    feedback.norm_cost = &norm_cost_;
    const double observe_algo0 = obs_on ? algo_time_.total_seconds() : 0.0;
    {
      ScopedTimer timer(&algo_time_);
      strategy_->Observe(feedback);
    }
    if (obs_on) {
      const double observe_ms =
          (algo_time_.total_seconds() - observe_algo0) * 1e3;
      obs_.CountMs(obs_ids_.algo_ms, observe_ms);
      obs_.Span(MetricDomain::kWall, frame_i64, "observe", wall_ledger_ms_,
                observe_ms);
      wall_ledger_ms_ += observe_ms;
    }
  }

  // Detect-frame gate ingest: the realized mask's fused boxes drive the
  // tracker, close the open skip episode (bandit feedback) and plan the
  // next one. Tracker upkeep on detect frames is charged to the ledger
  // like fusion overhead is — the fast path's bookkeeping is not free.
  if (gate_ != nullptr) {
    const DetectionList* fused =
        realized != 0 ? source_->FusedOutput(t, realized) : nullptr;
    gate_->ObserveDetections(fused != nullptr ? *fused : no_detections_,
                             static_cast<int64_t>(t));
    const double tracker_ms =
        SimulatedTrackerCostMs(fused != nullptr ? fused->size() : 0);
    result_.charged_cost_ms += tracker_ms;
    result_.breakdown.tracker_ms += tracker_ms;
    ++result_.skip.detect_frames;
    result_.skip.forced_detects = gate_->forced_detects();
    last_max_cost_ms_ = stats.max_cost_ms;
    if (obs_on) {
      obs_.CountMs(obs_ids_.tracker_ms, tracker_ms);
      obs_.Span(MetricDomain::kSimulated, frame_i64, "tracker",
                result_.charged_cost_ms - tracker_ms, tracker_ms);
    }
  }

  // Measurements (true scores; §5.5). A fully failed frame produced no
  // output: its true score and AP are zero by definition, not
  // Score(0, 0) (which would credit the cost term).
  const double sel_norm_cost =
      realized != 0 ? sel_eval.cost_ms * inv_max : 0.0;
  const double sel_true =
      realized != 0 ? options_.sc.Score(sel_eval.true_ap, sel_norm_cost)
                    : 0.0;
  if (options_.compute_regret) {
    result_.regret += BestTrueScore(t, inv_max) - sel_true;
  }
  result_.s_sum += sel_true;
  result_.avg_true_ap += sel_eval.true_ap;
  result_.avg_norm_cost += sel_norm_cost;
  ++result_.selection_counts[selected];
  ++result_.frames_processed;
  if (options_.record_cost_curve) {
    result_.cost_curve.emplace_back(result_.frames_processed,
                                    result_.charged_cost_ms);
  }
  if (obs_on) {
    obs_.Count(obs_ids_.frames);
    if (realized == 0) {
      obs_.Count(obs_ids_.frames_failed);
    } else if (realized != selected) {
      obs_.Count(obs_ids_.frames_fallback);
    }
    const double fault_delta = result_.breakdown.fault_ms - fault0;
    const double charged_delta = result_.charged_cost_ms - sim0;
    obs_.CountMs(obs_ids_.charged_ms, charged_delta);
    obs_.Observe(obs_ids_.frame_cost_hist, charged_delta);
    obs_.CountMs(obs_ids_.ensembling_ms, overhead);
    obs_.CountMs(obs_ids_.fault_ms, fault_delta);
    obs_.CountMs(obs_ids_.detector_ms,
                 (frame_cost - overhead) - fault_delta);
    if (strategy_->UsesReferenceModel()) {
      obs_.CountMs(obs_ids_.reference_ms, stats.ref_cost_ms);
    }
  }
  ++frames_this_invocation_;
  next_frame_ = t + 1;
  return FrameEpilogue(t);
}

Status EngineRun::StepSkippedFrame(size_t t) {
  // Coast the confirmed tracks one frame and serve them as this frame's
  // output. The ledger is charged only simulated tracker time — that is
  // the entire point of the fast path.
  const DetectionList& propagated = gate_->Propagate();
  const double tracker_ms = SimulatedTrackerCostMs(propagated.size());
  VQE_ASSIGN_OR_RETURN(const double true_ap,
                       source_->ScorePropagated(t, propagated));

  // Normalized cost against the LAST detect frame's normalizer: reading
  // this frame's own max_S c_{S|v} would materialize its detectors on a
  // lazy source. The two are within simulator noise of each other, and
  // the ĉ semantics ("share of the frame's priciest ensemble") carry over.
  const double norm_cost =
      last_max_cost_ms_ > 0.0 ? tracker_ms / last_max_cost_ms_ : 0.0;
  const double sel_true = options_.sc.Score(true_ap, norm_cost);

  result_.charged_cost_ms += tracker_ms;
  result_.breakdown.tracker_ms += tracker_ms;
  if (options_.compute_regret) {
    // Regret keeps honest books on skipped frames too: the baseline is
    // still the best detect-path ensemble. This reads Stats/Eval — full
    // materialization on a lazy source — mirroring the detect path's
    // "regret defeats laziness" caveat.
    const FrameStats stats = source_->Stats(t);
    const double inv_max =
        stats.max_cost_ms > 0.0 ? 1.0 / stats.max_cost_ms : 0.0;
    result_.regret += BestTrueScore(t, inv_max) - sel_true;
  }
  result_.s_sum += sel_true;
  result_.avg_true_ap += true_ap;
  result_.avg_norm_cost += norm_cost;
  ++result_.frames_processed;
  ++result_.skip.skipped_frames;
  result_.skip.propagated_ap_sum += true_ap;
  if (obs_.enabled()) {
    // The skip path charges only tracker time; its span starts where the
    // stream's sim clock stood before this frame.
    obs_.Count(obs_ids_.frames);
    obs_.Count(obs_ids_.frames_skipped);
    obs_.CountMs(obs_ids_.tracker_ms, tracker_ms);
    obs_.CountMs(obs_ids_.charged_ms, tracker_ms);
    obs_.Observe(obs_ids_.frame_cost_hist, tracker_ms);
    obs_.Span(MetricDomain::kSimulated, static_cast<int64_t>(t), "tracker",
              result_.charged_cost_ms - tracker_ms, tracker_ms);
  }
  if (options_.record_cost_curve) {
    result_.cost_curve.emplace_back(result_.frames_processed,
                                    result_.charged_cost_ms);
  }
  ++frames_this_invocation_;
  next_frame_ = t + 1;
  return FrameEpilogue(t);
}

void EngineRun::SetDegradation(int skip_boost, EnsembleId model_mask) {
  degrade_mask_ = model_mask & full_;
  if (gate_ != nullptr) gate_->SetSkipBoost(skip_boost);
}

void EngineRun::SetObs(const ObsHandle& obs) {
  obs_ = obs;
  if (obs_.metrics == nullptr) return;
  // Register (or look up) the engine's series once; the frame loop only
  // touches cached ids afterwards. Names are registry-global: counters
  // aggregate across streams, which keeps the simulated-domain values a
  // pure function of the seeded work — identical at any worker or shard
  // count.
  MetricsRegistry& reg = *obs_.metrics;
  const MetricDomain sim = MetricDomain::kSimulated;
  const MetricDomain wall = MetricDomain::kWall;
  obs_ids_.frames = reg.Counter("vqe_engine_frames_total", sim,
                                MetricUnit::kCount,
                                "Frames processed (detect + skip paths)");
  obs_ids_.frames_skipped =
      reg.Counter("vqe_engine_frames_skipped_total", sim, MetricUnit::kCount,
                  "Frames answered from tracker propagation");
  obs_ids_.frames_fallback =
      reg.Counter("vqe_engine_frames_fallback_total", sim, MetricUnit::kCount,
                  "Frames completed on a strict sub-mask after member faults");
  obs_ids_.frames_failed =
      reg.Counter("vqe_engine_frames_failed_total", sim, MetricUnit::kCount,
                  "Frames where every selected member failed");
  obs_ids_.detector_ms =
      reg.Counter("vqe_engine_detector_ms_total", sim, MetricUnit::kMs,
                  "Simulated camera-detector inference time");
  obs_ids_.reference_ms =
      reg.Counter("vqe_engine_reference_ms_total", sim, MetricUnit::kMs,
                  "Simulated reference (LiDAR) inference time");
  obs_ids_.ensembling_ms =
      reg.Counter("vqe_engine_ensembling_ms_total", sim, MetricUnit::kMs,
                  "Simulated box-fusion overhead");
  obs_ids_.fault_ms =
      reg.Counter("vqe_engine_fault_ms_total", sim, MetricUnit::kMs,
                  "Simulated time wasted on faults (failed calls, retries, "
                  "backoff)");
  obs_ids_.tracker_ms =
      reg.Counter("vqe_engine_tracker_ms_total", sim, MetricUnit::kMs,
                  "Simulated tracker time of the temporal fast path");
  obs_ids_.charged_ms =
      reg.Counter("vqe_engine_charged_cost_ms_total", sim, MetricUnit::kMs,
                  "Total budget-accountable simulated cost");
  obs_ids_.frame_cost_hist = reg.Histogram(
      "vqe_engine_frame_cost_ms", sim,
      {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0}, MetricUnit::kMs,
      "Per-frame charged simulated cost");
  obs_ids_.model_failures =
      reg.Counter("vqe_engine_model_call_failures_total", sim,
                  MetricUnit::kCount,
                  "Selected-member calls that failed after retries");
  obs_ids_.breaker_opens =
      reg.Counter("vqe_engine_breaker_opens_total", sim, MetricUnit::kCount,
                  "Circuit-breaker open transitions");
  obs_ids_.algo_ms =
      reg.Counter("vqe_engine_algorithm_ms_total", wall, MetricUnit::kMs,
                  "Wall-clock spent in strategy Select/Observe");
  obs_ids_.ckpt_writes =
      reg.Counter("vqe_engine_checkpoint_writes_total", sim,
                  MetricUnit::kCount, "Checkpoint generations written");
  obs_ids_.ckpt_write_ms =
      reg.Counter("vqe_engine_checkpoint_write_ms_total", wall, MetricUnit::kMs,
                  "Wall-clock spent serializing + durably writing snapshots");
}

Result<std::vector<uint8_t>> EngineRun::ExportSnapshot() const {
  if (finished_) {
    return Status::FailedPrecondition("ExportSnapshot on a finished run");
  }
  // include_source mirrors the checkpoint policy (default true): the lazy
  // memo is a cache, so results are identical either way — carrying it
  // just spares the migration target recomputation.
  return BuildEngineSnapshot(identity_->identity, next_frame_,
                             algo_time_.total_seconds(), result_, *strategy_,
                             breakers_, *source_,
                             options_.checkpoint.include_source, gate_.get(),
                             last_max_cost_ms_);
}

Status EngineRun::RestoreFromSnapshot(const SnapshotReader& snapshot) {
  if (finished_) {
    return Status::FailedPrecondition("RestoreFromSnapshot on a finished run");
  }
  if (frames_this_invocation_ > 0) {
    return Status::FailedPrecondition(
        "RestoreFromSnapshot requires a freshly created run (this one "
        "already stepped frames)");
  }
  double saved_algo_seconds = 0.0;
  VQE_RETURN_NOT_OK(RestoreEngineRun(
      snapshot, identity_->identity, num_masks_, strategy_, *source_,
      &breakers_, &result_, &next_frame_, &saved_algo_seconds,
      options_.checkpoint.include_source, gate_.get(), &last_max_cost_ms_));
  algo_time_.Add(saved_algo_seconds);
  return Status::OK();
}

double EngineRun::BestTrueScore(size_t t, double inv_max) {
  // The regret baseline max_S r_{S*|v}: the maximizer of any monotone
  // score lies on the frame's ⟨true_ap, cost⟩ Pareto frontier, so scan
  // only those masks when the source caches one. Sources without a
  // frontier (hand-built matrices, lazy evaluators) fall back to the
  // exhaustive O(2^m) scan — on a lazy source that materializes the
  // whole lattice, which is why compute_regret defaults off for lazy
  // throughput runs.
  double best_true = -std::numeric_limits<double>::infinity();
  const std::vector<EnsembleId>* frontier = source_->TrueFrontier(t);
  if (frontier != nullptr && !frontier->empty()) {
    for (EnsembleId s : *frontier) {
      const MaskEvaluation e = source_->Eval(t, s);
      const double r = options_.sc.Score(e.true_ap, e.cost_ms * inv_max);
      if (r > best_true) best_true = r;
    }
  } else {
    for (EnsembleId s = 1; s <= num_masks_; ++s) {
      const MaskEvaluation e = source_->Eval(t, s);
      const double r = options_.sc.Score(e.true_ap, e.cost_ms * inv_max);
      if (r > best_true) best_true = r;
    }
  }
  return best_true;
}

Status EngineRun::FrameEpilogue(size_t t) {
  // Snapshot the run every `every_frames` frames. Skipped after the last
  // frame: the run is about to finish and the result is returned anyway.
  if (ckpt_ != nullptr &&
      (t + 1) % options_.checkpoint.every_frames == 0 &&
      t + 1 < num_frames_) {
    Stopwatch watch;
    VQE_ASSIGN_OR_RETURN(
        std::vector<uint8_t> bytes,
        BuildEngineSnapshot(identity_->identity, t + 1,
                            algo_time_.total_seconds(), result_, *strategy_,
                            breakers_, *source_,
                            options_.checkpoint.include_source, gate_.get(),
                            last_max_cost_ms_));
    VQE_RETURN_NOT_OK(ckpt_->Write(next_generation_, bytes));
    ++next_generation_;
    ++result_.checkpoint.snapshots_written;
    const double write_ms = watch.ElapsedMillis();
    result_.checkpoint.checkpoint_write_ms += write_ms;
    if (obs_.enabled()) {
      obs_.Count(obs_ids_.ckpt_writes);
      obs_.CountMs(obs_ids_.ckpt_write_ms, write_ms);
      obs_.Span(MetricDomain::kWall, static_cast<int64_t>(t),
                "checkpoint_write", wall_ledger_ms_, write_ms);
      wall_ledger_ms_ += write_ms;
    }
  }

  // Crash injection for the resume tests: abort after this invocation has
  // processed `crash_after_frames` frames, *after* any checkpoint due at
  // this frame has been durably written (a real crash can land anywhere;
  // the harness aborts at the worst recoverable point — everything since
  // the last checkpoint is lost).
  if (options_.checkpoint.crash_after_frames > 0 &&
      frames_this_invocation_ >= options_.checkpoint.crash_after_frames &&
      t + 1 < num_frames_) {
    return Status::Aborted("crash injection after frame " +
                           std::to_string(t));
  }
  return Status::OK();
}

Result<RunResult> EngineRun::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice on an EngineRun");
  }
  finished_ = true;
  if (result_.frames_processed > 0) {
    const double n = static_cast<double>(result_.frames_processed);
    result_.avg_true_ap /= n;
    result_.avg_norm_cost /= n;
  }
  for (int i = 0; i < m_; ++i) {
    result_.model_availability[static_cast<size_t>(i)].breaker_opens =
        breakers_[static_cast<size_t>(i)].opens();
  }
  result_.breakdown.algorithm_ms = algo_time_.total_seconds() * 1e3;
  return std::move(result_);
}

Result<RunResult> RunStrategy(EvaluationSource& source,
                              SelectionStrategy* strategy,
                              const EngineOptions& options) {
  VQE_ASSIGN_OR_RETURN(std::unique_ptr<EngineRun> run,
                       EngineRun::Create(source, strategy, options));
  while (!run->done()) {
    VQE_RETURN_NOT_OK(run->StepFrame());
  }
  return run->Finish();
}

Result<RunResult> RunStrategy(const FrameMatrix& matrix,
                              SelectionStrategy* strategy,
                              const EngineOptions& options) {
  if (matrix.num_models < 1 || matrix.num_models > kMaxPoolSize) {
    return Status::InvalidArgument("matrix has invalid num_models");
  }
  MatrixEvaluationSource source(matrix);
  return RunStrategy(source, strategy, options);
}

}  // namespace vqe
