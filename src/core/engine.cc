#include "core/engine.h"

#include <cmath>
#include <limits>

#include "common/stopwatch.h"

namespace vqe {

Status EngineOptions::Validate() const {
  VQE_RETURN_NOT_OK(sc.Validate());
  if (budget_ms < 0.0) {
    return Status::InvalidArgument("budget_ms must be >= 0");
  }
  return Status::OK();
}

Result<RunResult> RunStrategy(const FrameMatrix& matrix,
                              SelectionStrategy* strategy,
                              const EngineOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  if (strategy == nullptr) {
    return Status::InvalidArgument("strategy is null");
  }
  if (matrix.num_models < 1 || matrix.num_models > kMaxPoolSize) {
    return Status::InvalidArgument("matrix has invalid num_models");
  }

  const uint32_t num_masks = matrix.num_ensembles();
  const OracleView oracle(&matrix, options.sc);

  StrategyContext ctx;
  ctx.num_models = matrix.num_models;
  ctx.num_frames = matrix.size();
  ctx.sc = options.sc;
  ctx.seed = options.strategy_seed;
  ctx.oracle = &oracle;

  TimeAccumulator algo_time;
  {
    ScopedTimer timer(&algo_time);
    strategy->BeginVideo(ctx);
  }

  RunResult result;
  result.selection_counts.assign(num_masks + 1, 0);

  std::vector<double> est_score(num_masks + 1);
  std::vector<double> norm_cost(num_masks + 1);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  for (size_t t = 0; t < matrix.size(); ++t) {
    // Alg. 2 line 6: proceed only while C <= B.
    if (options.budget_ms > 0.0 &&
        result.charged_cost_ms > options.budget_ms) {
      break;
    }
    const FrameEvaluation& fe = matrix.frames[t];

    EnsembleId selected;
    {
      ScopedTimer timer(&algo_time);
      selected = strategy->Select(t);
    }
    if (selected == 0 || selected > num_masks) {
      return Status::Internal("strategy selected an invalid ensemble mask");
    }

    // Charged cost (Eq. 14; Eq. 12 during full-pool initialization):
    // every selected model once, plus fusion overhead for each subset.
    double frame_cost = 0.0;
    for (int i = 0; i < matrix.num_models; ++i) {
      if (ContainsModel(selected, i)) {
        frame_cost += fe.model_cost_ms[static_cast<size_t>(i)];
        result.breakdown.detector_ms +=
            fe.model_cost_ms[static_cast<size_t>(i)];
      }
    }
    double overhead = 0.0;
    ForEachSubset(selected, [&](EnsembleId sub) {
      overhead += fe.fusion_overhead_ms[sub];
    });
    frame_cost += overhead;
    result.breakdown.ensembling_ms += overhead;
    result.charged_cost_ms += frame_cost;

    if (strategy->UsesReferenceModel()) {
      result.breakdown.reference_ms += fe.ref_cost_ms;
    }

    // Estimated rewards for subsets of the selection; NaN elsewhere
    // (information protocol — those outputs do not exist).
    const double inv_max =
        fe.max_cost_ms > 0.0 ? 1.0 / fe.max_cost_ms : 0.0;
    est_score.assign(num_masks + 1, nan);
    norm_cost.assign(num_masks + 1, nan);
    ForEachSubset(selected, [&](EnsembleId sub) {
      norm_cost[sub] = fe.cost_ms[sub] * inv_max;
      est_score[sub] = options.sc.Score(fe.est_ap[sub], norm_cost[sub]);
    });

    FrameFeedback feedback;
    feedback.t = t;
    feedback.selected = selected;
    feedback.est_score = &est_score;
    feedback.norm_cost = &norm_cost;
    {
      ScopedTimer timer(&algo_time);
      strategy->Observe(feedback);
    }

    // Measurements (true scores; §5.5).
    const double sel_norm_cost = fe.cost_ms[selected] * inv_max;
    const double sel_true =
        options.sc.Score(fe.true_ap[selected], sel_norm_cost);
    // The regret baseline max_S r_{S*|v}: the maximizer of any monotone
    // score lies on the frame's cached ⟨true_ap, cost⟩ Pareto frontier, so
    // scan only those masks. Hand-built matrices without the cache fall
    // back to the exhaustive O(2^m) scan.
    double best_true = -std::numeric_limits<double>::infinity();
    if (!fe.best_true_candidates.empty()) {
      for (EnsembleId s : fe.best_true_candidates) {
        const double r =
            options.sc.Score(fe.true_ap[s], fe.cost_ms[s] * inv_max);
        if (r > best_true) best_true = r;
      }
    } else {
      for (EnsembleId s = 1; s <= num_masks; ++s) {
        const double r =
            options.sc.Score(fe.true_ap[s], fe.cost_ms[s] * inv_max);
        if (r > best_true) best_true = r;
      }
    }
    result.s_sum += sel_true;
    result.regret += best_true - sel_true;
    result.avg_true_ap += fe.true_ap[selected];
    result.avg_norm_cost += sel_norm_cost;
    ++result.selection_counts[selected];
    ++result.frames_processed;
    if (options.record_cost_curve) {
      result.cost_curve.emplace_back(result.frames_processed,
                                     result.charged_cost_ms);
    }
  }

  if (result.frames_processed > 0) {
    const double n = static_cast<double>(result.frames_processed);
    result.avg_true_ap /= n;
    result.avg_norm_cost /= n;
  }
  result.breakdown.algorithm_ms = algo_time.total_seconds() * 1e3;
  return result;
}

}  // namespace vqe
