#include "core/engine.h"

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "common/stopwatch.h"
#include "core/engine_snapshot.h"
#include "snapshot/snapshot.h"

namespace vqe {

Status EngineOptions::Validate() const {
  VQE_RETURN_NOT_OK(sc.Validate());
  if (budget_ms < 0.0) {
    return Status::InvalidArgument("budget_ms must be >= 0");
  }
  VQE_RETURN_NOT_OK(checkpoint.Validate());
  return breaker.Validate();
}

namespace {

/// Serializes the complete resumable state of a run into a snapshot file.
Result<std::vector<uint8_t>> BuildEngineSnapshot(
    const EngineRunIdentity& identity, size_t next_frame, double algo_seconds,
    const RunResult& result, const SelectionStrategy& strategy,
    const std::vector<CircuitBreaker>& breakers, const EvaluationSource& source,
    bool include_source) {
  SnapshotWriter snap;
  WriteEngineIdentity(snap.AddSection(kEngineMetaSection), identity);
  {
    ByteWriter& w = snap.AddSection(kEngineCursorSection);
    w.U64(next_frame);
    w.F64(algo_seconds);
  }
  WriteRunResult(snap.AddSection(kEngineResultSection), result);
  VQE_RETURN_NOT_OK(strategy.SaveState(snap.AddSection(kStrategySection)));
  {
    ByteWriter& w = snap.AddSection(kBreakersSection);
    w.U64(breakers.size());
    for (const CircuitBreaker& b : breakers) {
      VQE_RETURN_NOT_OK(b.SaveState(w));
    }
  }
  if (include_source) {
    VQE_RETURN_NOT_OK(source.SaveState(snap.AddSection(kSourceSection)));
  }
  return snap.Finish();
}

/// Overlays a validated snapshot onto a freshly initialized run. The
/// identity must match (FailedPrecondition otherwise — the checkpoint
/// belongs to a different configuration); structural problems inside a
/// CRC-valid section return DataLoss.
Status RestoreEngineRun(const SnapshotReader& snap,
                        const EngineRunIdentity& expected, uint32_t num_masks,
                        SelectionStrategy* strategy, EvaluationSource& source,
                        std::vector<CircuitBreaker>* breakers,
                        RunResult* result, size_t* next_frame,
                        double* algo_seconds, bool include_source) {
  VQE_ASSIGN_OR_RETURN(ByteReader meta, snap.Section(kEngineMetaSection));
  EngineRunIdentity saved;
  VQE_RETURN_NOT_OK(ReadEngineIdentity(meta, &saved));
  VQE_RETURN_NOT_OK(meta.ExpectEnd());
  VQE_RETURN_NOT_OK(saved.ExpectMatches(expected));

  VQE_ASSIGN_OR_RETURN(ByteReader cursor, snap.Section(kEngineCursorSection));
  uint64_t frame = 0;
  VQE_RETURN_NOT_OK(cursor.U64(&frame));
  VQE_RETURN_NOT_OK(cursor.F64(algo_seconds));
  VQE_RETURN_NOT_OK(cursor.ExpectEnd());
  if (frame >= expected.num_frames) {
    return Status::DataLoss("checkpoint cursor beyond end of video");
  }

  VQE_ASSIGN_OR_RETURN(ByteReader res, snap.Section(kEngineResultSection));
  RunResult restored;
  VQE_RETURN_NOT_OK(ReadRunResult(res, &restored));
  VQE_RETURN_NOT_OK(res.ExpectEnd());
  if (restored.selection_counts.size() != num_masks + 1 ||
      restored.model_availability.size() !=
          static_cast<size_t>(expected.num_models)) {
    return Status::DataLoss("checkpoint result shape mismatch");
  }

  VQE_ASSIGN_OR_RETURN(ByteReader strat, snap.Section(kStrategySection));
  VQE_RETURN_NOT_OK(strategy->RestoreState(strat));
  VQE_RETURN_NOT_OK(strat.ExpectEnd());

  VQE_ASSIGN_OR_RETURN(ByteReader brk, snap.Section(kBreakersSection));
  uint64_t breaker_count = 0;
  VQE_RETURN_NOT_OK(brk.U64(&breaker_count));
  if (breaker_count != breakers->size()) {
    return Status::DataLoss("checkpoint breaker count mismatch");
  }
  for (CircuitBreaker& b : *breakers) {
    VQE_RETURN_NOT_OK(b.RestoreState(brk));
  }
  VQE_RETURN_NOT_OK(brk.ExpectEnd());

  if (include_source && snap.HasSection(kSourceSection)) {
    VQE_ASSIGN_OR_RETURN(ByteReader src, snap.Section(kSourceSection));
    VQE_RETURN_NOT_OK(source.RestoreState(src));
    VQE_RETURN_NOT_OK(src.ExpectEnd());
  }

  const RunResult::CheckpointReport report = result->checkpoint;
  *result = std::move(restored);
  result->checkpoint = report;  // per-invocation, never restored
  *next_frame = static_cast<size_t>(frame);
  return Status::OK();
}

}  // namespace

Result<RunResult> RunStrategy(EvaluationSource& source,
                              SelectionStrategy* strategy,
                              const EngineOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  if (strategy == nullptr) {
    return Status::InvalidArgument("strategy is null");
  }
  if (source.num_models() < 1 || source.num_models() > kMaxPoolSize) {
    return Status::InvalidArgument("source has invalid num_models");
  }

  const uint32_t num_masks = source.num_ensembles();
  const OracleView oracle(&source, options.sc);

  StrategyContext ctx;
  ctx.num_models = source.num_models();
  ctx.num_frames = source.num_frames();
  ctx.sc = options.sc;
  ctx.seed = options.strategy_seed;
  ctx.oracle = &oracle;

  TimeAccumulator algo_time;
  {
    ScopedTimer timer(&algo_time);
    strategy->BeginVideo(ctx);
  }

  RunResult result;
  result.regret_available = options.compute_regret;
  result.selection_counts.assign(num_masks + 1, 0);

  const int m = source.num_models();
  const EnsembleId full = FullEnsemble(m);
  result.model_availability.assign(static_cast<size_t>(m), {});
  // One breaker per model, driven by the outcomes of selected-member calls
  // (the information protocol: the engine never peeks at models it did not
  // run). All state advances on the deterministic frame clock.
  std::vector<CircuitBreaker> breakers(static_cast<size_t>(m),
                                       CircuitBreaker(options.breaker));

  std::vector<double> est_score(num_masks + 1);
  std::vector<double> norm_cost(num_masks + 1);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  // Checkpointing: fingerprint this configuration, then try to resume from
  // the newest good generation. A missing directory or no snapshots means a
  // fresh start; a snapshot from a *different* configuration is an error
  // (resuming it would silently change results).
  EngineRunIdentity identity;
  identity.strategy_name = strategy->name();
  identity.num_models = m;
  identity.num_frames = source.num_frames();
  identity.strategy_seed = options.strategy_seed;
  identity.budget_ms = options.budget_ms;
  identity.sc = options.sc;
  identity.compute_regret = options.compute_regret;
  identity.record_cost_curve = options.record_cost_curve;
  identity.breaker = options.breaker;

  size_t start_frame = 0;
  uint64_t next_generation = 1;
  std::unique_ptr<CheckpointManager> ckpt;
  if (options.checkpoint.enabled()) {
    ckpt = std::make_unique<CheckpointManager>(
        options.checkpoint.directory, options.checkpoint.keep_generations);
    if (options.checkpoint.resume) {
      Result<CheckpointManager::Loaded> loaded = ckpt->LoadLatestGood();
      if (loaded.ok()) {
        result.checkpoint.generations_rejected = loaded->rejected;
        double saved_algo_seconds = 0.0;
        VQE_RETURN_NOT_OK(RestoreEngineRun(
            loaded->snapshot, identity, num_masks, strategy, source, &breakers,
            &result, &start_frame, &saved_algo_seconds,
            options.checkpoint.include_source));
        algo_time.Add(saved_algo_seconds);
        result.checkpoint.resumed = true;
        result.checkpoint.resumed_from_frame = start_frame;
        next_generation = loaded->sequence + 1;
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        return loaded.status();
      }
    }
  }
  size_t frames_this_invocation = 0;

  for (size_t t = start_frame; t < source.num_frames(); ++t) {
    // Alg. 2 line 6: proceed only while C <= B.
    if (options.budget_ms > 0.0 &&
        result.charged_cost_ms > options.budget_ms) {
      break;
    }

    // Mask open-breaker models out of the strategy's candidate arms. If
    // everything is open there is no arm left — fall back to the full pool
    // (equivalent to probing everything) rather than selecting nothing.
    EnsembleId healthy = 0;
    for (int i = 0; i < m; ++i) {
      if (breakers[static_cast<size_t>(i)].AllowsCallAt(t)) {
        healthy |= Singleton(i);
      }
    }
    if (healthy == 0) healthy = full;
    strategy->SetEligibleModels(healthy);

    EnsembleId selected;
    {
      ScopedTimer timer(&algo_time);
      selected = strategy->Select(t);
    }
    if (selected == 0 || selected > num_masks) {
      return Status::Internal("strategy selected an invalid ensemble mask");
    }

    // Stats after Select so a lazy source only touches processed frames.
    const FrameStats stats = source.Stats(t);
    // The arm that actually ran: sources that predate fault accounting
    // report no availability, which means everything answered.
    const EnsembleId avail = stats.fault_aware ? stats.available_mask : full;
    const EnsembleId realized = selected & avail;

    // Charged cost (Eq. 14; Eq. 12 during full-pool initialization):
    // every selected model once — failed calls included, their time was
    // spent — plus fusion overhead for each realized subset. Wasted time
    // moves from detector_ms to fault_ms; breakers see each member's
    // outcome.
    double frame_cost = 0.0;
    for (int i = 0; i < m; ++i) {
      if (!ContainsModel(selected, i)) continue;
      const size_t idx = static_cast<size_t>(i);
      const double model_ms = (*stats.model_cost_ms)[idx];
      const double fault_i =
          stats.model_fault_ms != nullptr ? (*stats.model_fault_ms)[idx] : 0.0;
      frame_cost += model_ms;
      result.breakdown.detector_ms += model_ms - fault_i;
      result.breakdown.fault_ms += fault_i;
      RunResult::ModelAvailability& health = result.model_availability[idx];
      ++health.frames_selected;
      health.fault_ms += fault_i;
      if (ContainsModel(avail, i)) {
        breakers[idx].RecordSuccess(t);
      } else {
        ++health.frames_failed;
        breakers[idx].RecordFailure(t);
      }
    }

    // One pass over the *realized* arm's subset lattice: accumulate fusion
    // overhead and publish estimated rewards (information protocol — NaN
    // for masks whose outputs do not exist, including every mask touching
    // a failed member). ForEachSubset visits the realized mask first, so
    // its own evaluation is captured on the way.
    const double inv_max =
        stats.max_cost_ms > 0.0 ? 1.0 / stats.max_cost_ms : 0.0;
    est_score.assign(num_masks + 1, nan);
    norm_cost.assign(num_masks + 1, nan);
    double overhead = 0.0;
    MaskEvaluation sel_eval;
    if (realized != 0) {
      ForEachSubset(realized, [&](EnsembleId sub) {
        const MaskEvaluation e = source.Eval(t, sub);
        if (sub == realized) sel_eval = e;
        overhead += e.fusion_overhead_ms;
        norm_cost[sub] = e.cost_ms * inv_max;
        est_score[sub] = options.sc.Score(e.est_ap, norm_cost[sub]);
      });
    }
    frame_cost += overhead;
    result.breakdown.ensembling_ms += overhead;
    result.charged_cost_ms += frame_cost;
    if (realized == 0) {
      ++result.failed_frames;
    } else if (realized != selected) {
      ++result.fallback_frames;
    }

    if (strategy->UsesReferenceModel()) {
      result.breakdown.reference_ms += stats.ref_cost_ms;
    }

    if (realized != 0) {
      FrameFeedback feedback;
      feedback.t = t;
      feedback.selected = selected;
      feedback.realized = realized;
      feedback.est_score = &est_score;
      feedback.norm_cost = &norm_cost;
      ScopedTimer timer(&algo_time);
      strategy->Observe(feedback);
    }

    // Measurements (true scores; §5.5). A fully failed frame produced no
    // output: its true score and AP are zero by definition, not
    // Score(0, 0) (which would credit the cost term).
    const double sel_norm_cost =
        realized != 0 ? sel_eval.cost_ms * inv_max : 0.0;
    const double sel_true =
        realized != 0 ? options.sc.Score(sel_eval.true_ap, sel_norm_cost)
                      : 0.0;
    if (options.compute_regret) {
      // The regret baseline max_S r_{S*|v}: the maximizer of any monotone
      // score lies on the frame's ⟨true_ap, cost⟩ Pareto frontier, so scan
      // only those masks when the source caches one. Sources without a
      // frontier (hand-built matrices, lazy evaluators) fall back to the
      // exhaustive O(2^m) scan — on a lazy source that materializes the
      // whole lattice, which is why compute_regret defaults off for lazy
      // throughput runs.
      double best_true = -std::numeric_limits<double>::infinity();
      const std::vector<EnsembleId>* frontier = source.TrueFrontier(t);
      if (frontier != nullptr && !frontier->empty()) {
        for (EnsembleId s : *frontier) {
          const MaskEvaluation e = source.Eval(t, s);
          const double r = options.sc.Score(e.true_ap, e.cost_ms * inv_max);
          if (r > best_true) best_true = r;
        }
      } else {
        for (EnsembleId s = 1; s <= num_masks; ++s) {
          const MaskEvaluation e = source.Eval(t, s);
          const double r = options.sc.Score(e.true_ap, e.cost_ms * inv_max);
          if (r > best_true) best_true = r;
        }
      }
      result.regret += best_true - sel_true;
    }
    result.s_sum += sel_true;
    result.avg_true_ap += sel_eval.true_ap;
    result.avg_norm_cost += sel_norm_cost;
    ++result.selection_counts[selected];
    ++result.frames_processed;
    if (options.record_cost_curve) {
      result.cost_curve.emplace_back(result.frames_processed,
                                     result.charged_cost_ms);
    }
    ++frames_this_invocation;

    // Snapshot the run every `every_frames` frames. Skipped after the last
    // frame: the run is about to finish and the result is returned anyway.
    if (ckpt != nullptr &&
        (t + 1) % options.checkpoint.every_frames == 0 &&
        t + 1 < source.num_frames()) {
      Stopwatch watch;
      VQE_ASSIGN_OR_RETURN(
          std::vector<uint8_t> bytes,
          BuildEngineSnapshot(identity, t + 1, algo_time.total_seconds(),
                              result, *strategy, breakers, source,
                              options.checkpoint.include_source));
      VQE_RETURN_NOT_OK(ckpt->Write(next_generation, bytes));
      ++next_generation;
      ++result.checkpoint.snapshots_written;
      result.checkpoint.checkpoint_write_ms += watch.ElapsedMillis();
    }

    // Crash injection for the resume tests: abort after this invocation has
    // processed `crash_after_frames` frames, *after* any checkpoint due at
    // this frame has been durably written (a real crash can land anywhere;
    // the harness aborts at the worst recoverable point — everything since
    // the last checkpoint is lost).
    if (options.checkpoint.crash_after_frames > 0 &&
        frames_this_invocation >= options.checkpoint.crash_after_frames &&
        t + 1 < source.num_frames()) {
      return Status::Aborted("crash injection after frame " +
                             std::to_string(t));
    }
  }

  if (result.frames_processed > 0) {
    const double n = static_cast<double>(result.frames_processed);
    result.avg_true_ap /= n;
    result.avg_norm_cost /= n;
  }
  for (int i = 0; i < m; ++i) {
    result.model_availability[static_cast<size_t>(i)].breaker_opens =
        breakers[static_cast<size_t>(i)].opens();
  }
  result.breakdown.algorithm_ms = algo_time.total_seconds() * 1e3;
  return result;
}

Result<RunResult> RunStrategy(const FrameMatrix& matrix,
                              SelectionStrategy* strategy,
                              const EngineOptions& options) {
  if (matrix.num_models < 1 || matrix.num_models > kMaxPoolSize) {
    return Status::InvalidArgument("matrix has invalid num_models");
  }
  MatrixEvaluationSource source(matrix);
  return RunStrategy(source, strategy, options);
}

}  // namespace vqe
