// Frame evaluation matrix: for every frame of a sampled video and every
// candidate ensemble, the estimated AP (vs. the reference model), the true
// AP (vs. ground truth — used only for measurement/oracles, never shown to
// the online algorithms), and the simulated costs of Equation (1).
//
// Building the matrix materializes each model's detections once per frame
// and fuses every ensemble from the cached outputs — exactly the reuse MES
// exploits in Alg. 1 lines 9–10 — so the per-ensemble *charged* costs are
// the paper's: c_{S|v} = Σ_{M∈S} c_{M|v} + c^e_{S|v}.

#ifndef VQE_CORE_FRAME_MATRIX_H_
#define VQE_CORE_FRAME_MATRIX_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/ensemble_id.h"
#include "detection/ap.h"
#include "fusion/ensemble_method.h"
#include "models/model_zoo.h"
#include "runtime/retry.h"
#include "sim/video.h"

namespace vqe {

/// Options for matrix construction.
struct MatrixOptions {
  ApOptions ap;
  /// Reference detections below this confidence are dropped before being
  /// used as pseudo-ground-truth (filters LiDAR clutter).
  double ref_confidence_threshold = 0.5;
  FusionKind fusion = FusionKind::kWbf;
  FusionOptions fusion_options;
  /// Worker threads for frame-level parallelism. 0 = share the process
  /// pool (degrades to serial when nested inside trial-level parallelism);
  /// 1 = always serial; n = up to n workers. Frames are independent pure
  /// functions of (frame, trial_seed), so the matrix is bit-identical for
  /// every setting.
  int parallelism = 0;
  /// Deadline/retry policy for each detector call (runtime/retry.h). The
  /// default (one attempt, no deadline) reproduces the pre-runtime behavior
  /// bit-for-bit. Shared by the eager build and the lazy evaluator so both
  /// backends see identical call outcomes.
  RetryPolicy retry;
  /// Keep the per-frame ground truth and every mask's fused DetectionList
  /// in the matrix (FrameEvaluation::{gt_objects, fused}) so the eager
  /// backend can serve the temporal skip gate: the gate ingests the
  /// realized mask's fused boxes into its tracker and scores propagated
  /// boxes against ground truth without re-running anything. Off by
  /// default — it multiplies matrix memory by the lattice's box count and
  /// only skip-enabled eager runs read it. In-memory only: the matrix
  /// serializer does not persist these fields.
  bool keep_temporal_outputs = false;

  Status Validate() const;
};

/// Per-frame evaluation of all ensembles. Vectors are indexed by
/// EnsembleId (index 0 unused).
struct FrameEvaluation {
  SceneContext context = SceneContext::kClear;
  /// AP of the fused output vs. the reference model (what MES observes).
  std::vector<double> est_ap;
  /// AP vs. ground truth (measurement/oracle only).
  std::vector<double> true_ap;
  /// Full ensemble cost per Eq. (1), ms.
  std::vector<double> cost_ms;
  /// Fusion-only overhead c^e_{S|v}, ms.
  std::vector<double> fusion_overhead_ms;
  /// Per-model inference cost c_{M_i|v}, ms (size m).
  std::vector<double> model_cost_ms;
  /// Reference-model inference cost on this frame, ms.
  double ref_cost_ms = 0.0;
  /// max_S c_{S|v}: the normalizer of ĉ (§5.4).
  double max_cost_ms = 0.0;
  /// Masks on this frame's ⟨true_ap, cost_ms⟩ Pareto frontier, ascending by
  /// cost. Every scoring function that rises with AP and falls with cost
  /// attains its per-frame maximum true score on one of these, so the
  /// engine's oracle scan is O(|frontier|) instead of O(2^m). Empty means
  /// "not cached: scan every mask" (hand-built matrices in tests).
  std::vector<EnsembleId> best_true_candidates;
  /// Models whose detector call succeeded on this frame (after retries).
  /// Meaningful only when fault_aware; a selected mask degrades to
  /// `selected & available_mask` in the engine.
  EnsembleId available_mask = 0;
  /// Wasted per-model time: failed attempts + backoff (size m when
  /// fault_aware, else empty). Included in model_cost_ms; the engine splits
  /// it back out into TimeBreakdown.fault_ms.
  std::vector<double> model_fault_ms;
  /// True for evaluations produced by the fault-aware pipeline. Hand-built
  /// matrices in tests leave it false, and the engine then treats every
  /// model as available.
  bool fault_aware = false;
  /// Populated only under MatrixOptions::keep_temporal_outputs: the
  /// frame's ground truth and each mask's fused output (indexed by
  /// EnsembleId, index 0 unused), for the temporal skip gate.
  GroundTruthList gt_objects;
  std::vector<DetectionList> fused;
};

/// The whole evaluation matrix for one (video, trial) pair.
struct FrameMatrix {
  int num_models = 0;
  std::vector<std::string> model_names;
  std::vector<FrameEvaluation> frames;
  /// AP options the matrix was scored with; the temporal skip path reuses
  /// them to score propagated detections on the same scale.
  ApOptions ap;
  /// True when frames carry gt_objects/fused (keep_temporal_outputs).
  bool temporal_outputs = false;

  size_t size() const { return frames.size(); }
  uint32_t num_ensembles() const { return NumEnsembles(num_models); }
};

/// Builds the matrix by running every detector and the reference model on
/// every frame (detections drawn from the trial's noise streams) and fusing
/// every candidate ensemble from the cached per-model outputs.
Result<FrameMatrix> BuildFrameMatrix(const Video& video,
                                     const DetectorPool& pool,
                                     uint64_t trial_seed,
                                     const MatrixOptions& options = {});

/// Average true AP per ensemble over the matrix (ā_S of Figure 3).
std::vector<double> AverageTrueApPerEnsemble(const FrameMatrix& matrix);

/// Average normalized cost per ensemble over the matrix (ĉ_S of Figure 3).
std::vector<double> AverageNormCostPerEnsemble(const FrameMatrix& matrix);

}  // namespace vqe

#endif  // VQE_CORE_FRAME_MATRIX_H_
