// Shared per-frame evaluation kernel: runs every detector and the
// reference model on one frame, caches their outputs and the per-class
// ground-truth indexes, and evaluates any ensemble mask on demand. Both
// the eager BuildFrameMatrix (which materializes all 2^m − 1 masks) and
// the LazyFrameEvaluator (which materializes only what a strategy touches)
// run their mask evaluations through this one code path, so lazy and eager
// results are bit-identical *by construction*, not by parallel maintenance
// of two arithmetic pipelines.

#ifndef VQE_CORE_FRAME_EVAL_H_
#define VQE_CORE_FRAME_EVAL_H_

#include <vector>

#include "core/ensemble_id.h"
#include "core/frame_matrix.h"
#include "detection/ap.h"
#include "detection/frame_soa.h"
#include "fusion/ensemble_method.h"
#include "fusion/iou_cache.h"
#include "models/model_zoo.h"
#include "sim/video.h"

namespace vqe {

/// Simulated box-fusion overhead c^e: a fixed dispatch cost plus a per-box
/// term. Kept ≪ any model's inference cost, per the paper's assumption.
/// The single definition shared by matrix construction, the lazy
/// evaluator, and the online query executor.
inline double SimulatedFusionOverheadMs(size_t num_input_boxes) {
  return 0.01 + 0.002 * static_cast<double>(num_input_boxes);
}

/// One mask's evaluation on one frame — the ⟨est_ap, true_ap, cost,
/// fusion_overhead⟩ cell of the frame matrix.
struct MaskEvaluation {
  /// AP of the fused output vs. the reference model (what MES observes).
  double est_ap = 0.0;
  /// AP vs. ground truth (measurement/oracle only).
  double true_ap = 0.0;
  /// Full ensemble cost per Eq. (1), ms.
  double cost_ms = 0.0;
  /// Fusion-only overhead c^e_{S|v}, ms.
  double fusion_overhead_ms = 0.0;
};

/// All per-frame state the mask loop reuses: cached per-model detections
/// and costs, the reference pseudo-ground-truth index, the true
/// ground-truth index, and (when the fusion method consumes it) the
/// pairwise-IoU tile over the cached detections.
///
/// Not thread-safe: Evaluate reuses a scratch buffer. Parallel callers
/// build one context per frame (frames are independent pure functions of
/// (frame, trial_seed), which is what makes the parallel eager build
/// bit-identical for any worker count).
class FrameEvalContext {
 public:
  /// Runs all m detectors and the reference model on `frame`. `pool`,
  /// `options` and `fusion` must outlive the context.
  FrameEvalContext(const VideoFrame& frame, const DetectorPool& pool,
                   uint64_t trial_seed, const MatrixOptions& options,
                   const EnsembleMethod& fusion);

  int num_models() const { return static_cast<int>(model_out_.size()); }
  const std::vector<double>& model_cost_ms() const { return model_cost_ms_; }
  double ref_cost_ms() const { return ref_cost_ms_; }

  /// Models whose call succeeded on this frame (after the retry policy in
  /// MatrixOptions ran its course). Full when nothing failed.
  EnsembleId available_mask() const { return available_mask_; }
  /// Per-model wasted time (failed attempts + backoff); part of
  /// model_cost_ms, split out so callers can report fault time separately.
  const std::vector<double>& model_fault_ms() const { return model_fault_ms_; }
  bool model_ok(int i) const {
    return model_ok_[static_cast<size_t>(i)] != 0;
  }

  /// c_{M|v} of the full pool: Σ over all models (ascending index) plus
  /// the fusion overhead of every cached box. Bit-identical to
  /// Evaluate(FullEnsemble(m)).cost_ms without fusing anything, and equal
  /// to max_S c_{S|v}: every accumulator folds non-negative terms in the
  /// same ascending-index order, and IEEE round-to-nearest folds of
  /// non-negative terms are monotone under term inclusion, so no subset's
  /// rounded sum can exceed the full pool's.
  double FullEnsembleCostMs() const;

  /// Fuses and scores one mask from the cached outputs. When `fused_out`
  /// is non-null it receives the fused detection list.
  ///
  /// Steady-state allocation-free: the fused output lands in a reused
  /// member buffer (warmed to the frame's total box count at
  /// construction), fusion/scoring scratch lives in the calling thread's
  /// FrameArena, and the per-frame IoU tile was built up front.
  MaskEvaluation Evaluate(EnsembleId mask, DetectionList* fused_out = nullptr);

  /// The frame's SoA detection store (empty unless the fusion method
  /// consumes the IoU cache, which is when the tile kernel needs it).
  const FrameSoA& soa() const { return soa_; }

 private:
  const MatrixOptions* options_;
  const EnsembleMethod* fusion_;
  std::vector<DetectionList> model_out_;
  std::vector<double> model_cost_ms_;
  std::vector<double> model_fault_ms_;
  std::vector<uint8_t> model_ok_;
  EnsembleId available_mask_ = 0;
  double ref_cost_ms_ = 0.0;
  GroundTruthIndex ref_index_;
  GroundTruthIndex gt_index_;
  FrameSoA soa_;
  PairwiseIouCache iou_cache_;
  std::vector<const DetectionList*> inputs_;  // scratch for Evaluate
  DetectionList fused_scratch_;               // reused fused-output buffer
};

}  // namespace vqe

#endif  // VQE_CORE_FRAME_EVAL_H_
