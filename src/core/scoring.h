// The scoring mechanism of §2.2/§5.4: a tunable aggregate of accuracy and
// normalized inference time,
//
//   r_{S|v} = w1 · log2(a_{S|v} + 1) + w2 · log2(2 − ĉ_{S|v}),
//
// with w1 + w2 = 1 and ĉ = c / c_max normalized per frame. The score is in
// [0, 1], rises with AP and falls with cost — the two criteria of §2.2.

#ifndef VQE_CORE_SCORING_H_
#define VQE_CORE_SCORING_H_

#include <cmath>

#include "common/status.h"

namespace vqe {

/// The functional form of the aggregate score. §2.2 only requires positive
/// correlation with AP, negative with cost, and a [0, 1] range — both forms
/// below satisfy the criteria, and the algorithms are agnostic to the
/// choice (bench_scoring_forms demonstrates this).
enum class ScoreForm {
  /// The paper's experimental choice (Equation 30):
  /// w1·log2(ap + 1) + w2·log2(2 − ĉ). Concave in both arguments.
  kLogarithmic,
  /// The simplest compliant alternative: w1·ap + w2·(1 − ĉ).
  kLinear,
};

/// The paper's experimental scoring function (Equation 30 by default). Any
/// function satisfying the §2.2 criteria may replace it; the algorithms
/// only consume Score() values.
struct ScoringFunction {
  /// Weight of the accuracy component.
  double w1 = 0.5;
  /// Weight of the (inverse) cost component.
  double w2 = 0.5;
  ScoreForm form = ScoreForm::kLogarithmic;

  /// The aggregate score; ap and norm_cost are clamped into [0, 1]
  /// defensively.
  double Score(double ap, double norm_cost) const {
    const double a = ap < 0.0 ? 0.0 : (ap > 1.0 ? 1.0 : ap);
    const double c = norm_cost < 0.0 ? 0.0 : (norm_cost > 1.0 ? 1.0 : norm_cost);
    if (form == ScoreForm::kLinear) {
      return w1 * a + w2 * (1.0 - c);
    }
    return w1 * std::log2(a + 1.0) + w2 * std::log2(2.0 - c);
  }

  /// Weights must be non-negative and sum to 1 (§5.4).
  Status Validate() const {
    if (w1 < 0.0 || w2 < 0.0) {
      return Status::InvalidArgument("scoring weights must be non-negative");
    }
    if (std::fabs(w1 + w2 - 1.0) > 1e-9) {
      return Status::InvalidArgument("scoring weights must sum to 1");
    }
    return Status::OK();
  }
};

}  // namespace vqe

#endif  // VQE_CORE_SCORING_H_
