// D-MES: discounted-UCB ensemble selection — an extension of the paper.
//
// SW-MES (§3.3) adapts to concept drift by hard-truncating history to a
// λ-frame window. Garivier & Moulines's companion policy, *discounted* UCB
// (D-UCB, reference [28] of the paper), instead decays past rewards
// geometrically: after each frame every arm's accumulated count and reward
// are multiplied by a discount factor ρ < 1, giving an exponentially-
// weighted history with effective horizon 1/(1−ρ). The decay is smooth, so
// recent evidence dominates without the cliff-edge forgetting of a window.
// We pair it with the same subset-update structure as MES.

#ifndef VQE_CORE_DUCB_H_
#define VQE_CORE_DUCB_H_

#include <vector>

#include "common/status.h"
#include "core/strategy.h"

namespace vqe {

/// Tuning of D-MES.
struct DucbOptions {
  /// γ: initialization frames, as in MES.
  size_t gamma = 10;
  /// Discount factor ρ in (0, 1). Effective horizon ≈ 1/(1−ρ); the default
  /// matches SW-MES's default window of ~450 frames.
  double discount = 0.99778;
  /// Exploration-bonus multiplier (see MesOptions::exploration_scale).
  double exploration_scale = 0.05;
  /// Full-pool probe spacing in frames (0 disables). Probes refresh every
  /// arm's discounted statistics in one frame via subset updates, exactly
  /// as in SW-MES.
  size_t probe_interval = 56;

  Status Validate() const {
    if (gamma < 1) return Status::InvalidArgument("gamma must be >= 1");
    if (discount <= 0.0 || discount >= 1.0) {
      return Status::InvalidArgument("discount must be in (0, 1)");
    }
    if (exploration_scale <= 0.0) {
      return Status::InvalidArgument("exploration_scale must be positive");
    }
    return Status::OK();
  }

  /// Effective memory length 1/(1−ρ).
  double EffectiveHorizon() const { return 1.0 / (1.0 - discount); }

  /// The ρ whose effective horizon matches a window of `frames`.
  static double DiscountForHorizon(double frames) {
    return frames <= 1.0 ? 0.5 : 1.0 - 1.0 / frames;
  }
};

/// Discounted-UCB ensemble selection (D-MES).
class DucbMesStrategy : public SelectionStrategy {
 public:
  explicit DucbMesStrategy(DucbOptions options = {});

  const std::string& name() const override { return name_; }
  void BeginVideo(const StrategyContext& ctx) override;
  EnsembleId Select(size_t t) override;
  void Observe(const FrameFeedback& feedback) override;
  Status SaveState(ByteWriter& writer) const override;
  Status RestoreState(ByteReader& reader) override;

  /// Discounted pull count of an arm (diagnostics).
  double DiscountedCount(EnsembleId s) const { return count_[s]; }
  /// Discounted mean reward of an arm (0 when unobserved).
  double DiscountedMean(EnsembleId s) const {
    return count_[s] > 0.0 ? sum_[s] / count_[s] : 0.0;
  }

 private:
  DucbOptions options_;
  std::string name_;
  int num_models_ = 0;
  size_t last_probe_ = 0;
  std::vector<double> count_;  // discounted T_S
  std::vector<double> sum_;    // discounted reward sums
};

}  // namespace vqe

#endif  // VQE_CORE_DUCB_H_
