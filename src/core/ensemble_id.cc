#include "core/ensemble_id.h"

namespace vqe {

std::vector<EnsembleId> AllEnsembles(int m) {
  std::vector<EnsembleId> out;
  const EnsembleId full = FullEnsemble(m);
  out.reserve(full);
  for (EnsembleId id = 1; id <= full; ++id) out.push_back(id);
  return out;
}

std::vector<EnsembleId> SubsetsOf(EnsembleId mask) {
  std::vector<EnsembleId> out;
  ForEachSubset(mask, [&](EnsembleId sub) { out.push_back(sub); });
  return out;
}

std::vector<int> EnsembleModels(EnsembleId id) {
  std::vector<int> out;
  for (int i = 0; i < kMaxPoolSize; ++i) {
    if (ContainsModel(id, i)) out.push_back(i);
  }
  return out;
}

std::string EnsembleName(EnsembleId id,
                         const std::vector<std::string>& model_names) {
  std::string out = "{";
  bool first = true;
  for (int i : EnsembleModels(id)) {
    if (!first) out += ", ";
    first = false;
    if (i < static_cast<int>(model_names.size())) {
      out += model_names[static_cast<size_t>(i)];
    } else {
      out += "M" + std::to_string(i);
    }
  }
  out += "}";
  return out;
}

}  // namespace vqe
