#include "core/frame_eval.h"

#include <utility>

#include "runtime/retry.h"

namespace vqe {

FrameEvalContext::FrameEvalContext(const VideoFrame& frame,
                                   const DetectorPool& pool,
                                   uint64_t trial_seed,
                                   const MatrixOptions& options,
                                   const EnsembleMethod& fusion)
    : options_(&options), fusion_(&fusion) {
  const size_t m = pool.detectors.size();
  model_out_.resize(m);
  model_cost_ms_.resize(m);
  model_fault_ms_.assign(m, 0.0);
  model_ok_.assign(m, 0);
  // Materialize per-model outputs once (the reuse of Alg. 1 lines 9-10),
  // each call routed through the deadline/retry choke point. The default
  // policy on a plain detector reduces to Detect + InferenceCostMs in the
  // historical order, so no-fault runs stay bit-identical. A failed call
  // contributes an empty output and only wasted time — the mask lattice
  // over the surviving models stays fully evaluable.
  for (size_t i = 0; i < m; ++i) {
    DetectorCallOutcome call =
        DetectWithRetries(*pool.detectors[i], frame, trial_seed,
                          options.retry);
    model_cost_ms_[i] = call.charged_ms();
    model_fault_ms_[i] = call.fault_ms;
    if (call.ok()) {
      model_out_[i] = std::move(call.detections);
      model_ok_[i] = 1;
      available_mask_ |= Singleton(static_cast<int>(i));
    }
  }
  const DetectionList ref_out = pool.reference->Detect(frame, trial_seed);
  ref_cost_ms_ = pool.reference->InferenceCostMs(frame, trial_seed);
  const GroundTruthList ref_gt =
      DetectionsAsGroundTruth(ref_out, options.ref_confidence_threshold);

  // Per-frame invariants of the mask loop, built once and reused across
  // every evaluation.
  ref_index_ = BuildGroundTruthIndex(ref_gt);
  gt_index_ = BuildGroundTruthIndex(frame.objects);
  // The SoA store is built for every fusion method: its per-class,
  // presorted pools feed the grouped flatten of all 2^m − 1 mask
  // evaluations. The pairwise-IoU tile on top of it pays off only for
  // methods whose IoU queries are raw-pair (NMS family, NMW, Consensus);
  // WBF queries derived cluster boxes, so the tile would be pure
  // construction overhead there.
  const int num_ids = AssignFrameDetIds(model_out_);
  soa_ = FrameSoA(model_out_, num_ids);
  if (fusion.ConsumesIouCache()) {
    iou_cache_ = PairwiseIouCache(soa_);
  }
  inputs_.reserve(m);
  // Warm the reused fused-output buffer: no fusion method emits more
  // boxes than it was given, so the mask loop never regrows it.
  size_t total_boxes = 0;
  for (const auto& out : model_out_) total_boxes += out.size();
  fused_scratch_.reserve(total_boxes);
}

double FrameEvalContext::FullEnsembleCostMs() const {
  size_t num_boxes = 0;
  double model_cost = 0.0;
  for (size_t i = 0; i < model_out_.size(); ++i) {
    num_boxes += model_out_[i].size();
    model_cost += model_cost_ms_[i];
  }
  return model_cost + SimulatedFusionOverheadMs(num_boxes);
}

MaskEvaluation FrameEvalContext::Evaluate(EnsembleId mask,
                                          DetectionList* fused_out) {
  inputs_.clear();
  size_t num_boxes = 0;
  double model_cost = 0.0;
  const int m = num_models();
  for (int i = 0; i < m; ++i) {
    if (!ContainsModel(mask, i)) continue;
    const DetectionList& out_i = model_out_[static_cast<size_t>(i)];
    inputs_.push_back(&out_i);
    num_boxes += out_i.size();
    model_cost += model_cost_ms_[static_cast<size_t>(i)];
  }
  fusion_->FuseInto(DetectionListSpan(inputs_),
                    iou_cache_.enabled() ? &iou_cache_ : nullptr, &soa_,
                    &fused_scratch_);

  MaskEvaluation e;
  e.fusion_overhead_ms = SimulatedFusionOverheadMs(num_boxes);
  e.cost_ms = model_cost + e.fusion_overhead_ms;
  e.est_ap = FrameMeanAp(fused_scratch_, ref_index_, options_->ap);
  e.true_ap = FrameMeanAp(fused_scratch_, gt_index_, options_->ap);
  if (fused_out != nullptr) *fused_out = fused_scratch_;
  return e;
}

}  // namespace vqe
