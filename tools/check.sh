#!/usr/bin/env sh
# Repo verification gate: tier-1 tests plus sanitizer passes over the
# concurrency- and aliasing-sensitive suites.
#
#   tools/check.sh          # tier-1 only (what CI gates on)
#   tools/check.sh --full   # + ASan, TSan and UBSan configs of the
#                           #   sensitive tests
#
# The sanitizer passes rebuild into build-asan/, build-tsan/ and
# build-ubsan/ (all .gitignore'd) and run the suites that exercise the
# shared thread pool, the chunked ParallelFor scheduler, the pairwise-IoU
# tile shared across fusion calls, lazy-vs-eager evaluation equivalence,
# the fault-tolerant detector runtime (retry/breaker/degradation), the
# snapshot/checkpoint stack (hostile-byte parsing plus the crash-resume
# matrix) — corrupt snapshots must fail with a clean Status, never UB —
# and the serving layer (scheduler rounds stepping sessions in parallel,
# cross-stream batch coalescing, the thread pool shutdown contract), plus
# the temporal skip gate (tracker propagation, skip-policy snapshots, and
# the skip-enabled crash-resume and disabled-path invariants), plus the
# sharded fleet (shard threads, live migration payloads, scripted chaos —
# coordinator/shard queue handshakes must be race-free under TSan and a
# corrupted payload must reject with a clean Status under every
# sanitizer), plus the overload controller and trace-driven workload
# engine (hostile trace corpus, degradation-ladder determinism, and
# concurrent breaker-registry publication under TSan), plus the
# observability plane (lock-free metrics/trace recording from worker
# threads, fingerprint determinism, exporter validation — obs-enabled
# runs must stay bit-identical and race-free under every sanitizer).

set -eu

cd "$(dirname "$0")/.."

run_tier1() {
  cmake -B build -S . >/dev/null
  cmake --build build -j
  ctest --test-dir build -L tier1 --output-on-failure -j 4
}

run_perf_smoke() {
  # Tiny-config run of the matrix-build bench. Wall-clock numbers are not
  # gated — CI machines are too noisy for that — but the bench's exit code
  # reflects its bit-identity verdicts: the optimized kernels (SoA IoU
  # tile, arena-backed fusion), the serial/parallel matrices and the
  # eager/lazy strategy runs must all reproduce their reference paths
  # exactly. Runs from the bench directory so BENCH_matrix_build.json
  # lands next to the binary, not in the repo root.
  (cd build/bench && VQE_BENCH_TRIALS=2 VQE_BENCH_FRAMES=40 \
    ./bench_matrix_build)
  # Same contract for the serving bench: its exit code gates only on
  # bit-identity — served streams equal to solo runs, skip_budget=0 rows
  # equal to the no-skip baseline, skip-enabled served streams equal to
  # their solo counterparts, and every fleet stream (16 streams over
  # 1/2/4/8 shards, clean and under the migrate-then-kill chaos script)
  # equal to its solo run. Throughput numbers are reported, not gated.
  (cd build/bench && VQE_BENCH_TRIALS=2 VQE_BENCH_FRAMES=120 \
    ./bench_serve)
}

run_fleet_chaos_smoke() {
  # Replay the scripted chaos matrix in the plain build (the sanitizer
  # passes replay it again under ASan/TSan/UBSan with --full): shard
  # kills, mid-video migrations and corrupted payloads across backends
  # and worker counts, every completing stream bit-identical to solo.
  ./build/tests/fleet_test \
    --gtest_filter='ShardedServerTest.*:SchedulerMigrationTest.*'
}

run_overload_storm_smoke() {
  # Trace-driven overload storm: heavy-tailed arrivals over a diurnal
  # peak with an error storm and a latency-spike storm, SLO-aware
  # degradation ladder enabled. The bench's exit code gates its seven
  # verdicts (plan + ladder determinism across worker counts, the ladder
  # stepping and fully recovering, the interactive SLO held, all
  # shedding landing on batch, and disabled-controller bit-identity).
  (cd build/bench && ./bench_workload)
}

run_obs_smoke() {
  # Observability smoke: instrumented bench runs must emit Chrome trace
  # JSON that the in-repo validator accepts, and the benches' exit codes
  # keep gating their bit-identity verdicts with obs ENABLED on the
  # instrumented configs — i.e. tracing a run never changes its results.
  # The workload bench also replays the multi-day diurnal trace file
  # (three day/night cycles + gradual drift) and gates its shape,
  # drift-ramp and worker-count-determinism verdicts.
  (cd build/bench && VQE_BENCH_TRIALS=2 VQE_BENCH_FRAMES=120 \
    ./bench_serve --trace-out BENCH_serve_trace.json)
  (cd build/bench && ./bench_workload \
    --trace ../../bench/traces/diurnal_multiday.vqework \
    --trace-out BENCH_workload_trace.json)
}

run_sanitizer() {
  san="$1"
  dir="build-$2"
  cmake -B "$dir" -S . -DVQE_SANITIZE="$san" >/dev/null
  cmake --build "$dir" -j --target \
    thread_pool_test determinism_test fusion_test lazy_eval_test \
    runtime_test snapshot_test resume_test serialization_test serve_test \
    fleet_test temporal_test tracker_test workload_test obs_test
  ctest --test-dir "$dir" --output-on-failure -j 4 \
    -R "ThreadPool|ParallelFor|ResolveWorkers|Determinism|LazyEval|FusionProperty|FaultInjection|RetryTest|CircuitBreaker|ResilientDetector|EngineFaultTolerance|ExperimentFault|Wire|Crc32|SnapshotContainer|CheckpointManager|CheckpointPolicy|ArmStatsSnapshot|SlidingWindowSnapshot|CircuitBreakerSnapshot|RunResultSnapshot|EngineIdentity|RngSnapshot|CrashMatrix|ResumeTest|QueryResume|Serialization|Serve|StreamScheduler|StreamSession|BatchDispatcher|BreakerRegistry|PriorityClass|TimeBreakdown|MigrationPayload|SessionImplant|SchedulerMigration|FleetOptions|ChaosScript|ShardedServer|SkipOptions|SkipPolicy|Difficulty|TrackPropagator|TemporalEngine|TemporalQuery|TrackerCoast|TrackerOptions|TrackerTest|Workload|Overload|SamplePercentile|EngineDegradation|TemporalGateBoost|MetricsRegistry|TraceRecorder|ChromeTraceValidator|MetricsText|ObsIdentity|ObsServe|ObsFleet|ObsCheckpoint|ObsExport|EngineSteadyState"
}

run_tier1
run_perf_smoke
run_fleet_chaos_smoke
run_overload_storm_smoke
run_obs_smoke

if [ "${1:-}" = "--full" ]; then
  run_sanitizer address asan
  run_sanitizer thread tsan
  run_sanitizer undefined ubsan
fi

echo "check.sh: all requested checks passed"
