file(REMOVE_RECURSE
  "CMakeFiles/matching_ap_test.dir/matching_ap_test.cc.o"
  "CMakeFiles/matching_ap_test.dir/matching_ap_test.cc.o.d"
  "matching_ap_test"
  "matching_ap_test.pdb"
  "matching_ap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_ap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
