# Empty compiler generated dependencies file for ensemble_id_test.
# This may be replaced when dependencies are built.
