file(REMOVE_RECURSE
  "CMakeFiles/ensemble_id_test.dir/ensemble_id_test.cc.o"
  "CMakeFiles/ensemble_id_test.dir/ensemble_id_test.cc.o.d"
  "ensemble_id_test"
  "ensemble_id_test.pdb"
  "ensemble_id_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
