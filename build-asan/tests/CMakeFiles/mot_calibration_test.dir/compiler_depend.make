# Empty compiler generated dependencies file for mot_calibration_test.
# This may be replaced when dependencies are built.
