file(REMOVE_RECURSE
  "CMakeFiles/mot_calibration_test.dir/mot_calibration_test.cc.o"
  "CMakeFiles/mot_calibration_test.dir/mot_calibration_test.cc.o.d"
  "mot_calibration_test"
  "mot_calibration_test.pdb"
  "mot_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mot_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
