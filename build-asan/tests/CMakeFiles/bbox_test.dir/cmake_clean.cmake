file(REMOVE_RECURSE
  "CMakeFiles/bbox_test.dir/bbox_test.cc.o"
  "CMakeFiles/bbox_test.dir/bbox_test.cc.o.d"
  "bbox_test"
  "bbox_test.pdb"
  "bbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
