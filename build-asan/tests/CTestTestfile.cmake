# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/common_test[1]_include.cmake")
include("/root/repo/build-asan/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build-asan/tests/bbox_test[1]_include.cmake")
include("/root/repo/build-asan/tests/matching_ap_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fusion_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/models_test[1]_include.cmake")
include("/root/repo/build-asan/tests/ensemble_id_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_test[1]_include.cmake")
include("/root/repo/build-asan/tests/strategy_test[1]_include.cmake")
include("/root/repo/build-asan/tests/query_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-asan/tests/tracker_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mot_calibration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/protocol_test[1]_include.cmake")
include("/root/repo/build-asan/tests/determinism_test[1]_include.cmake")
include("/root/repo/build-asan/tests/serialization_test[1]_include.cmake")
