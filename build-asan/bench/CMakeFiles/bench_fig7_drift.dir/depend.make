# Empty dependencies file for bench_fig7_drift.
# This may be replaced when dependencies are built.
