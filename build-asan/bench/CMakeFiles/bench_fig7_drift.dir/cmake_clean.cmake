file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_drift.dir/bench_fig7_drift.cc.o"
  "CMakeFiles/bench_fig7_drift.dir/bench_fig7_drift.cc.o.d"
  "bench_fig7_drift"
  "bench_fig7_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
