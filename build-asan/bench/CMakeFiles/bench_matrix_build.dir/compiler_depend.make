# Empty compiler generated dependencies file for bench_matrix_build.
# This may be replaced when dependencies are built.
