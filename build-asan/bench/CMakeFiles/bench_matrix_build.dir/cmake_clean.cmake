file(REMOVE_RECURSE
  "CMakeFiles/bench_matrix_build.dir/bench_matrix_build.cc.o"
  "CMakeFiles/bench_matrix_build.dir/bench_matrix_build.cc.o.d"
  "bench_matrix_build"
  "bench_matrix_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matrix_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
