# Empty dependencies file for bench_fig13_overhead.
# This may be replaced when dependencies are built.
