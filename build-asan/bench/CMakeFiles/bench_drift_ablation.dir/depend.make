# Empty dependencies file for bench_drift_ablation.
# This may be replaced when dependencies are built.
