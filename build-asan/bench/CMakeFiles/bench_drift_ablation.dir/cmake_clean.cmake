file(REMOVE_RECURSE
  "CMakeFiles/bench_drift_ablation.dir/bench_drift_ablation.cc.o"
  "CMakeFiles/bench_drift_ablation.dir/bench_drift_ablation.cc.o.d"
  "bench_drift_ablation"
  "bench_drift_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drift_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
