file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_gamma.dir/bench_fig12_gamma.cc.o"
  "CMakeFiles/bench_fig12_gamma.dir/bench_fig12_gamma.cc.o.d"
  "bench_fig12_gamma"
  "bench_fig12_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
