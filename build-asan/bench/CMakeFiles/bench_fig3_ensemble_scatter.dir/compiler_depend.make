# Empty compiler generated dependencies file for bench_fig3_ensemble_scatter.
# This may be replaced when dependencies are built.
