file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ensemble_scatter.dir/bench_fig3_ensemble_scatter.cc.o"
  "CMakeFiles/bench_fig3_ensemble_scatter.dir/bench_fig3_ensemble_scatter.cc.o.d"
  "bench_fig3_ensemble_scatter"
  "bench_fig3_ensemble_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ensemble_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
