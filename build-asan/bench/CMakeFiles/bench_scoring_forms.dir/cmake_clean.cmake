file(REMOVE_RECURSE
  "CMakeFiles/bench_scoring_forms.dir/bench_scoring_forms.cc.o"
  "CMakeFiles/bench_scoring_forms.dir/bench_scoring_forms.cc.o.d"
  "bench_scoring_forms"
  "bench_scoring_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scoring_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
