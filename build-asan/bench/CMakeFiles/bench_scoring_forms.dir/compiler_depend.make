# Empty compiler generated dependencies file for bench_scoring_forms.
# This may be replaced when dependencies are built.
