# Empty compiler generated dependencies file for bench_fusion_methods.
# This may be replaced when dependencies are built.
