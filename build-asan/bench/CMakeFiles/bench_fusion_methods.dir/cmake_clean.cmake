file(REMOVE_RECURSE
  "CMakeFiles/bench_fusion_methods.dir/bench_fusion_methods.cc.o"
  "CMakeFiles/bench_fusion_methods.dir/bench_fusion_methods.cc.o.d"
  "bench_fusion_methods"
  "bench_fusion_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fusion_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
