file(REMOVE_RECURSE
  "CMakeFiles/bench_pareto_frontier.dir/bench_pareto_frontier.cc.o"
  "CMakeFiles/bench_pareto_frontier.dir/bench_pareto_frontier.cc.o.d"
  "bench_pareto_frontier"
  "bench_pareto_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pareto_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
