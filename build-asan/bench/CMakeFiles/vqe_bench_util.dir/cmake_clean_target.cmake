file(REMOVE_RECURSE
  "libvqe_bench_util.a"
)
