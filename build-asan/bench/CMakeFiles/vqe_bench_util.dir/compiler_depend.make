# Empty compiler generated dependencies file for vqe_bench_util.
# This may be replaced when dependencies are built.
