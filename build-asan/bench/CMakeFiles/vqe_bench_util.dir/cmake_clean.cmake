file(REMOVE_RECURSE
  "CMakeFiles/vqe_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/vqe_bench_util.dir/bench_util.cc.o.d"
  "libvqe_bench_util.a"
  "libvqe_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
