# Empty dependencies file for bench_table4_lrbp.
# This may be replaced when dependencies are built.
