file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lrbp.dir/bench_table4_lrbp.cc.o"
  "CMakeFiles/bench_table4_lrbp.dir/bench_table4_lrbp.cc.o.d"
  "bench_table4_lrbp"
  "bench_table4_lrbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lrbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
