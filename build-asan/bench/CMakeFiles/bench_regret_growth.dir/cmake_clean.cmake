file(REMOVE_RECURSE
  "CMakeFiles/bench_regret_growth.dir/bench_regret_growth.cc.o"
  "CMakeFiles/bench_regret_growth.dir/bench_regret_growth.cc.o.d"
  "bench_regret_growth"
  "bench_regret_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regret_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
