# Empty compiler generated dependencies file for bench_regret_growth.
# This may be replaced when dependencies are built.
