
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_regret_growth.cc" "bench/CMakeFiles/bench_regret_growth.dir/bench_regret_growth.cc.o" "gcc" "bench/CMakeFiles/bench_regret_growth.dir/bench_regret_growth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/bench/CMakeFiles/vqe_bench_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/vqe_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/models/CMakeFiles/vqe_models.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fusion/CMakeFiles/vqe_fusion.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/vqe_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/detection/CMakeFiles/vqe_detection.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/vqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
