# Empty compiler generated dependencies file for bench_fig11_pool_size.
# This may be replaced when dependencies are built.
