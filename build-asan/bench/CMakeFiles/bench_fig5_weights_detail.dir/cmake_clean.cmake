file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_weights_detail.dir/bench_fig5_weights_detail.cc.o"
  "CMakeFiles/bench_fig5_weights_detail.dir/bench_fig5_weights_detail.cc.o.d"
  "bench_fig5_weights_detail"
  "bench_fig5_weights_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_weights_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
