# Empty compiler generated dependencies file for bench_fig5_weights_detail.
# This may be replaced when dependencies are built.
