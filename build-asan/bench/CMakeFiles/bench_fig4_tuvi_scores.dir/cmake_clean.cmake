file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_tuvi_scores.dir/bench_fig4_tuvi_scores.cc.o"
  "CMakeFiles/bench_fig4_tuvi_scores.dir/bench_fig4_tuvi_scores.cc.o.d"
  "bench_fig4_tuvi_scores"
  "bench_fig4_tuvi_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tuvi_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
