# Empty compiler generated dependencies file for bench_fig4_tuvi_scores.
# This may be replaced when dependencies are built.
