# Empty dependencies file for bench_fig6_tcvi_budget.
# This may be replaced when dependencies are built.
