# Empty compiler generated dependencies file for bench_fig10_selection_dist.
# This may be replaced when dependencies are built.
