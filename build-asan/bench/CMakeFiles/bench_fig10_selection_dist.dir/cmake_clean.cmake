file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_selection_dist.dir/bench_fig10_selection_dist.cc.o"
  "CMakeFiles/bench_fig10_selection_dist.dir/bench_fig10_selection_dist.cc.o.d"
  "bench_fig10_selection_dist"
  "bench_fig10_selection_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_selection_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
