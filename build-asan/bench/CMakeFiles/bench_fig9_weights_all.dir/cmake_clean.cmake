file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_weights_all.dir/bench_fig9_weights_all.cc.o"
  "CMakeFiles/bench_fig9_weights_all.dir/bench_fig9_weights_all.cc.o.d"
  "bench_fig9_weights_all"
  "bench_fig9_weights_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_weights_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
