# Empty dependencies file for bench_fig9_weights_all.
# This may be replaced when dependencies are built.
