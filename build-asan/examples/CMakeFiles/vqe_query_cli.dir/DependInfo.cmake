
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/vqe_query_cli.cpp" "examples/CMakeFiles/vqe_query_cli.dir/vqe_query_cli.cpp.o" "gcc" "examples/CMakeFiles/vqe_query_cli.dir/vqe_query_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/query/CMakeFiles/vqe_query.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/vqe_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/models/CMakeFiles/vqe_models.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fusion/CMakeFiles/vqe_fusion.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/vqe_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/track/CMakeFiles/vqe_track.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/detection/CMakeFiles/vqe_detection.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/vqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
