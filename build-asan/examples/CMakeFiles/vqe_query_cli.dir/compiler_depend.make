# Empty compiler generated dependencies file for vqe_query_cli.
# This may be replaced when dependencies are built.
