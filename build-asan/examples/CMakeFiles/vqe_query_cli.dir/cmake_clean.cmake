file(REMOVE_RECURSE
  "CMakeFiles/vqe_query_cli.dir/vqe_query_cli.cpp.o"
  "CMakeFiles/vqe_query_cli.dir/vqe_query_cli.cpp.o.d"
  "vqe_query_cli"
  "vqe_query_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_query_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
