file(REMOVE_RECURSE
  "CMakeFiles/surveillance_query.dir/surveillance_query.cpp.o"
  "CMakeFiles/surveillance_query.dir/surveillance_query.cpp.o.d"
  "surveillance_query"
  "surveillance_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveillance_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
