# Empty compiler generated dependencies file for surveillance_query.
# This may be replaced when dependencies are built.
