# Empty compiler generated dependencies file for track_analytics.
# This may be replaced when dependencies are built.
