file(REMOVE_RECURSE
  "CMakeFiles/track_analytics.dir/track_analytics.cpp.o"
  "CMakeFiles/track_analytics.dir/track_analytics.cpp.o.d"
  "track_analytics"
  "track_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
