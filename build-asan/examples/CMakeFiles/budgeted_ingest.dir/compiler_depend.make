# Empty compiler generated dependencies file for budgeted_ingest.
# This may be replaced when dependencies are built.
