file(REMOVE_RECURSE
  "CMakeFiles/budgeted_ingest.dir/budgeted_ingest.cpp.o"
  "CMakeFiles/budgeted_ingest.dir/budgeted_ingest.cpp.o.d"
  "budgeted_ingest"
  "budgeted_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budgeted_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
