file(REMOVE_RECURSE
  "CMakeFiles/vqe_sim.dir/dataset.cc.o"
  "CMakeFiles/vqe_sim.dir/dataset.cc.o.d"
  "CMakeFiles/vqe_sim.dir/object_classes.cc.o"
  "CMakeFiles/vqe_sim.dir/object_classes.cc.o.d"
  "CMakeFiles/vqe_sim.dir/scene_context.cc.o"
  "CMakeFiles/vqe_sim.dir/scene_context.cc.o.d"
  "CMakeFiles/vqe_sim.dir/scene_generator.cc.o"
  "CMakeFiles/vqe_sim.dir/scene_generator.cc.o.d"
  "CMakeFiles/vqe_sim.dir/serialization.cc.o"
  "CMakeFiles/vqe_sim.dir/serialization.cc.o.d"
  "CMakeFiles/vqe_sim.dir/video.cc.o"
  "CMakeFiles/vqe_sim.dir/video.cc.o.d"
  "libvqe_sim.a"
  "libvqe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
