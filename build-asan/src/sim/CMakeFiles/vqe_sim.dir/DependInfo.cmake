
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dataset.cc" "src/sim/CMakeFiles/vqe_sim.dir/dataset.cc.o" "gcc" "src/sim/CMakeFiles/vqe_sim.dir/dataset.cc.o.d"
  "/root/repo/src/sim/object_classes.cc" "src/sim/CMakeFiles/vqe_sim.dir/object_classes.cc.o" "gcc" "src/sim/CMakeFiles/vqe_sim.dir/object_classes.cc.o.d"
  "/root/repo/src/sim/scene_context.cc" "src/sim/CMakeFiles/vqe_sim.dir/scene_context.cc.o" "gcc" "src/sim/CMakeFiles/vqe_sim.dir/scene_context.cc.o.d"
  "/root/repo/src/sim/scene_generator.cc" "src/sim/CMakeFiles/vqe_sim.dir/scene_generator.cc.o" "gcc" "src/sim/CMakeFiles/vqe_sim.dir/scene_generator.cc.o.d"
  "/root/repo/src/sim/serialization.cc" "src/sim/CMakeFiles/vqe_sim.dir/serialization.cc.o" "gcc" "src/sim/CMakeFiles/vqe_sim.dir/serialization.cc.o.d"
  "/root/repo/src/sim/video.cc" "src/sim/CMakeFiles/vqe_sim.dir/video.cc.o" "gcc" "src/sim/CMakeFiles/vqe_sim.dir/video.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/detection/CMakeFiles/vqe_detection.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/vqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
