file(REMOVE_RECURSE
  "libvqe_sim.a"
)
