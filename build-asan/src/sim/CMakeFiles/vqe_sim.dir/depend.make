# Empty dependencies file for vqe_sim.
# This may be replaced when dependencies are built.
