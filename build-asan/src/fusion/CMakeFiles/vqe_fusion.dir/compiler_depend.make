# Empty compiler generated dependencies file for vqe_fusion.
# This may be replaced when dependencies are built.
