file(REMOVE_RECURSE
  "CMakeFiles/vqe_fusion.dir/consensus.cc.o"
  "CMakeFiles/vqe_fusion.dir/consensus.cc.o.d"
  "CMakeFiles/vqe_fusion.dir/fusion_internal.cc.o"
  "CMakeFiles/vqe_fusion.dir/fusion_internal.cc.o.d"
  "CMakeFiles/vqe_fusion.dir/nms.cc.o"
  "CMakeFiles/vqe_fusion.dir/nms.cc.o.d"
  "CMakeFiles/vqe_fusion.dir/nmw.cc.o"
  "CMakeFiles/vqe_fusion.dir/nmw.cc.o.d"
  "CMakeFiles/vqe_fusion.dir/registry.cc.o"
  "CMakeFiles/vqe_fusion.dir/registry.cc.o.d"
  "CMakeFiles/vqe_fusion.dir/wbf.cc.o"
  "CMakeFiles/vqe_fusion.dir/wbf.cc.o.d"
  "libvqe_fusion.a"
  "libvqe_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
