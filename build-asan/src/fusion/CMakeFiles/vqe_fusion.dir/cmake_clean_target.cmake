file(REMOVE_RECURSE
  "libvqe_fusion.a"
)
