file(REMOVE_RECURSE
  "CMakeFiles/vqe_common.dir/math_util.cc.o"
  "CMakeFiles/vqe_common.dir/math_util.cc.o.d"
  "CMakeFiles/vqe_common.dir/status.cc.o"
  "CMakeFiles/vqe_common.dir/status.cc.o.d"
  "CMakeFiles/vqe_common.dir/strings.cc.o"
  "CMakeFiles/vqe_common.dir/strings.cc.o.d"
  "CMakeFiles/vqe_common.dir/table_printer.cc.o"
  "CMakeFiles/vqe_common.dir/table_printer.cc.o.d"
  "CMakeFiles/vqe_common.dir/thread_pool.cc.o"
  "CMakeFiles/vqe_common.dir/thread_pool.cc.o.d"
  "libvqe_common.a"
  "libvqe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
