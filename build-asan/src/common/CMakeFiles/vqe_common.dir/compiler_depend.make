# Empty compiler generated dependencies file for vqe_common.
# This may be replaced when dependencies are built.
