file(REMOVE_RECURSE
  "libvqe_common.a"
)
