file(REMOVE_RECURSE
  "libvqe_track.a"
)
