file(REMOVE_RECURSE
  "CMakeFiles/vqe_track.dir/mot_metrics.cc.o"
  "CMakeFiles/vqe_track.dir/mot_metrics.cc.o.d"
  "CMakeFiles/vqe_track.dir/tracker.cc.o"
  "CMakeFiles/vqe_track.dir/tracker.cc.o.d"
  "libvqe_track.a"
  "libvqe_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
