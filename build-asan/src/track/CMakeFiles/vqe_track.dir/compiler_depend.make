# Empty compiler generated dependencies file for vqe_track.
# This may be replaced when dependencies are built.
