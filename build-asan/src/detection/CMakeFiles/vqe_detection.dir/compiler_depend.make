# Empty compiler generated dependencies file for vqe_detection.
# This may be replaced when dependencies are built.
