file(REMOVE_RECURSE
  "CMakeFiles/vqe_detection.dir/ap.cc.o"
  "CMakeFiles/vqe_detection.dir/ap.cc.o.d"
  "CMakeFiles/vqe_detection.dir/coco_eval.cc.o"
  "CMakeFiles/vqe_detection.dir/coco_eval.cc.o.d"
  "CMakeFiles/vqe_detection.dir/detection.cc.o"
  "CMakeFiles/vqe_detection.dir/detection.cc.o.d"
  "CMakeFiles/vqe_detection.dir/matching.cc.o"
  "CMakeFiles/vqe_detection.dir/matching.cc.o.d"
  "libvqe_detection.a"
  "libvqe_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
