file(REMOVE_RECURSE
  "libvqe_detection.a"
)
