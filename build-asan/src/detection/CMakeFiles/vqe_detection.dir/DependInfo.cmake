
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detection/ap.cc" "src/detection/CMakeFiles/vqe_detection.dir/ap.cc.o" "gcc" "src/detection/CMakeFiles/vqe_detection.dir/ap.cc.o.d"
  "/root/repo/src/detection/coco_eval.cc" "src/detection/CMakeFiles/vqe_detection.dir/coco_eval.cc.o" "gcc" "src/detection/CMakeFiles/vqe_detection.dir/coco_eval.cc.o.d"
  "/root/repo/src/detection/detection.cc" "src/detection/CMakeFiles/vqe_detection.dir/detection.cc.o" "gcc" "src/detection/CMakeFiles/vqe_detection.dir/detection.cc.o.d"
  "/root/repo/src/detection/matching.cc" "src/detection/CMakeFiles/vqe_detection.dir/matching.cc.o" "gcc" "src/detection/CMakeFiles/vqe_detection.dir/matching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/vqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
