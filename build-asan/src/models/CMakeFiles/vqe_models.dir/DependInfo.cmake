
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/calibration.cc" "src/models/CMakeFiles/vqe_models.dir/calibration.cc.o" "gcc" "src/models/CMakeFiles/vqe_models.dir/calibration.cc.o.d"
  "/root/repo/src/models/detector_profile.cc" "src/models/CMakeFiles/vqe_models.dir/detector_profile.cc.o" "gcc" "src/models/CMakeFiles/vqe_models.dir/detector_profile.cc.o.d"
  "/root/repo/src/models/model_zoo.cc" "src/models/CMakeFiles/vqe_models.dir/model_zoo.cc.o" "gcc" "src/models/CMakeFiles/vqe_models.dir/model_zoo.cc.o.d"
  "/root/repo/src/models/reference_detector.cc" "src/models/CMakeFiles/vqe_models.dir/reference_detector.cc.o" "gcc" "src/models/CMakeFiles/vqe_models.dir/reference_detector.cc.o.d"
  "/root/repo/src/models/simulated_detector.cc" "src/models/CMakeFiles/vqe_models.dir/simulated_detector.cc.o" "gcc" "src/models/CMakeFiles/vqe_models.dir/simulated_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/vqe_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/detection/CMakeFiles/vqe_detection.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/vqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
