file(REMOVE_RECURSE
  "CMakeFiles/vqe_models.dir/calibration.cc.o"
  "CMakeFiles/vqe_models.dir/calibration.cc.o.d"
  "CMakeFiles/vqe_models.dir/detector_profile.cc.o"
  "CMakeFiles/vqe_models.dir/detector_profile.cc.o.d"
  "CMakeFiles/vqe_models.dir/model_zoo.cc.o"
  "CMakeFiles/vqe_models.dir/model_zoo.cc.o.d"
  "CMakeFiles/vqe_models.dir/reference_detector.cc.o"
  "CMakeFiles/vqe_models.dir/reference_detector.cc.o.d"
  "CMakeFiles/vqe_models.dir/simulated_detector.cc.o"
  "CMakeFiles/vqe_models.dir/simulated_detector.cc.o.d"
  "libvqe_models.a"
  "libvqe_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
