# Empty compiler generated dependencies file for vqe_models.
# This may be replaced when dependencies are built.
