file(REMOVE_RECURSE
  "libvqe_models.a"
)
