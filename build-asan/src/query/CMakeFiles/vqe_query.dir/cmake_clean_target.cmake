file(REMOVE_RECURSE
  "libvqe_query.a"
)
