# Empty compiler generated dependencies file for vqe_query.
# This may be replaced when dependencies are built.
