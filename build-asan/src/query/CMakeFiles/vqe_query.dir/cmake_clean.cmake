file(REMOVE_RECURSE
  "CMakeFiles/vqe_query.dir/executor.cc.o"
  "CMakeFiles/vqe_query.dir/executor.cc.o.d"
  "CMakeFiles/vqe_query.dir/explain.cc.o"
  "CMakeFiles/vqe_query.dir/explain.cc.o.d"
  "CMakeFiles/vqe_query.dir/lexer.cc.o"
  "CMakeFiles/vqe_query.dir/lexer.cc.o.d"
  "CMakeFiles/vqe_query.dir/parser.cc.o"
  "CMakeFiles/vqe_query.dir/parser.cc.o.d"
  "CMakeFiles/vqe_query.dir/predicate.cc.o"
  "CMakeFiles/vqe_query.dir/predicate.cc.o.d"
  "libvqe_query.a"
  "libvqe_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
