file(REMOVE_RECURSE
  "libvqe_core.a"
)
