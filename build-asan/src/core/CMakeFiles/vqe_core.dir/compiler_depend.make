# Empty compiler generated dependencies file for vqe_core.
# This may be replaced when dependencies are built.
