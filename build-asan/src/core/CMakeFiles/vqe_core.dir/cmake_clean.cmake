file(REMOVE_RECURSE
  "CMakeFiles/vqe_core.dir/baselines.cc.o"
  "CMakeFiles/vqe_core.dir/baselines.cc.o.d"
  "CMakeFiles/vqe_core.dir/ducb.cc.o"
  "CMakeFiles/vqe_core.dir/ducb.cc.o.d"
  "CMakeFiles/vqe_core.dir/engine.cc.o"
  "CMakeFiles/vqe_core.dir/engine.cc.o.d"
  "CMakeFiles/vqe_core.dir/ensemble_id.cc.o"
  "CMakeFiles/vqe_core.dir/ensemble_id.cc.o.d"
  "CMakeFiles/vqe_core.dir/experiment.cc.o"
  "CMakeFiles/vqe_core.dir/experiment.cc.o.d"
  "CMakeFiles/vqe_core.dir/frame_matrix.cc.o"
  "CMakeFiles/vqe_core.dir/frame_matrix.cc.o.d"
  "CMakeFiles/vqe_core.dir/lrbp.cc.o"
  "CMakeFiles/vqe_core.dir/lrbp.cc.o.d"
  "CMakeFiles/vqe_core.dir/mes.cc.o"
  "CMakeFiles/vqe_core.dir/mes.cc.o.d"
  "CMakeFiles/vqe_core.dir/mes_b.cc.o"
  "CMakeFiles/vqe_core.dir/mes_b.cc.o.d"
  "CMakeFiles/vqe_core.dir/pareto.cc.o"
  "CMakeFiles/vqe_core.dir/pareto.cc.o.d"
  "libvqe_core.a"
  "libvqe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
