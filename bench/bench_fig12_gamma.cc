// Figure 12: the initialization hyper-parameter γ — too small misestimates
// arms, too large wastes budget on full-pool frames; the score curve rises
// then falls.

#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Initialization-length sweep (gamma)", "Figure 12", settings);

  for (const char* dataset : {"nusc-clear", "nusc-night", "nusc-rainy"}) {
    auto pool = std::move(BuildNuscenesPool(5)).value();
    ExperimentConfig config = MakeConfig(dataset, settings);

    std::vector<FrameMatrix> matrices;
    for (int trial = 0; trial < config.trials; ++trial) {
      matrices.push_back(
          std::move(BuildTrialMatrix(config, pool, trial)).value());
    }

    std::cout << "\nDataset " << dataset << ":\n";
    TablePrinter table({"gamma", "MES s_sum", "avg AP", "avg cost"});
    for (size_t gamma : {1, 3, 10, 30, 100, 300}) {
      EngineOptions engine;
      engine.sc = ScoringFunction{0.5, 0.5};
      double s_sum = 0, ap = 0, cost = 0;
      for (const auto& matrix : matrices) {
        MesOptions opt;
        opt.gamma = gamma;
        MesStrategy mes(opt);
        const auto run = RunStrategy(matrix, &mes, engine);
        s_sum += run->s_sum;
        ap += run->avg_true_ap;
        cost += run->avg_norm_cost;
      }
      const double n = static_cast<double>(matrices.size());
      table.AddRow({std::to_string(gamma), Fmt(s_sum / n, 1), Fmt(ap / n, 3),
                    Fmt(cost / n, 3)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): scores rise from gamma=1 to a "
               "moderate optimum, then fall as the expensive full-pool "
               "initialization eats into the video.\n";
  return 0;
}
