// Micro-benchmarks (google-benchmark): the hot primitives — IoU, matching,
// per-frame AP, each fusion algorithm, and a full MES engine step — to back
// the Figure 13 claim that selection overhead is negligible next to
// (even simulated) model inference.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/engine.h"
#include "core/mes.h"
#include "detection/ap.h"
#include "fusion/ensemble_method.h"
#include "models/model_zoo.h"
#include "sim/scene_generator.h"

namespace vqe {
namespace {

DetectionList RandomDetections(Rng& rng, int n) {
  DetectionList out;
  for (int i = 0; i < n; ++i) {
    Detection d;
    d.box = BBox::FromCenter(rng.Uniform(0, 1600), rng.Uniform(0, 900),
                             rng.Uniform(30, 200), rng.Uniform(20, 150));
    d.confidence = rng.Uniform(0.05, 1.0);
    d.label = static_cast<ClassId>(rng.UniformInt(8));
    d.box_variance = rng.Uniform(0.1, 20.0);
    out.push_back(d);
  }
  return out;
}

void BM_IoU(benchmark::State& state) {
  Rng rng(1);
  const auto a = RandomDetections(rng, 64);
  const auto b = RandomDetections(rng, 64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IoU(a[i & 63].box, b[(i + 7) & 63].box));
    ++i;
  }
}
BENCHMARK(BM_IoU);

void BM_MatchDetections(benchmark::State& state) {
  Rng rng(2);
  const auto dets = RandomDetections(rng, static_cast<int>(state.range(0)));
  GroundTruthList gts;
  for (const auto& d : RandomDetections(rng, static_cast<int>(state.range(0)))) {
    gts.push_back(GroundTruthBox{d.box, d.label, -1, false, 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchDetections(dets, gts, 0.5));
  }
}
BENCHMARK(BM_MatchDetections)->Arg(8)->Arg(32);

void BM_FrameMeanAp(benchmark::State& state) {
  Rng rng(3);
  const auto dets = RandomDetections(rng, static_cast<int>(state.range(0)));
  GroundTruthList gts;
  for (const auto& d : RandomDetections(rng, static_cast<int>(state.range(0)))) {
    gts.push_back(GroundTruthBox{d.box, d.label, -1, false, 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FrameMeanAp(dets, gts, {}));
  }
}
BENCHMARK(BM_FrameMeanAp)->Arg(8)->Arg(32);

void BM_Fusion(benchmark::State& state) {
  const FusionKind kind = static_cast<FusionKind>(state.range(0));
  auto method = std::move(CreateEnsembleMethod(kind)).value();
  Rng rng(4);
  std::vector<DetectionList> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(RandomDetections(rng, 12));
  for (auto _ : state) {
    benchmark::DoNotOptimize(method->Fuse(inputs));
  }
  state.SetLabel(FusionKindToString(kind));
}
BENCHMARK(BM_Fusion)
    ->DenseRange(0, 6)
    ->Unit(benchmark::kMicrosecond);

void BM_SimulatedDetect(benchmark::State& state) {
  SimulatedDetector det(*ParseDetectorName("yolov7-tiny@clear"));
  SceneGeneratorOptions gen;
  const Video v = GenerateScene(gen, SceneContext::kClear, 0, 1, 9);
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.Detect(v.frames[0], seed++));
  }
}
BENCHMARK(BM_SimulatedDetect);

void BM_MesSelectStep(benchmark::State& state) {
  // One UCB argmax over the 31 arms of an m=5 pool.
  MesStrategy mes;
  StrategyContext ctx;
  ctx.num_models = 5;
  mes.BeginVideo(ctx);
  std::vector<double> rewards(NumEnsembles(5) + 1, 0.5);
  FrameFeedback fb;
  fb.selected = FullEnsemble(5);
  fb.est_score = &rewards;
  for (size_t t = 0; t < 20; ++t) {
    fb.t = t;
    mes.Observe(fb);
  }
  size_t t = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mes.Select(t++));
  }
}
BENCHMARK(BM_MesSelectStep);

void BM_SwMesSelectStep(benchmark::State& state) {
  SwMesOptions opt;
  opt.window = 400;
  SwMesStrategy sw(opt);
  StrategyContext ctx;
  ctx.num_models = 5;
  sw.BeginVideo(ctx);
  std::vector<double> rewards(NumEnsembles(5) + 1, 0.5);
  FrameFeedback fb;
  fb.selected = FullEnsemble(5);
  fb.est_score = &rewards;
  for (size_t t = 0; t < 50; ++t) {
    fb.t = t;
    sw.Observe(fb);
  }
  size_t t = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.Select(t++));
  }
}
BENCHMARK(BM_SwMesSelectStep);

}  // namespace
}  // namespace vqe

BENCHMARK_MAIN();
