// Figure 4: TUVI scores (s_sum mean/sd/min/max over trials) of OPT, BF,
// SGL, RAND, EF and MES on V_nusc, V_nusc^clear, V_nusc^night,
// V_nusc^rainy and V_bdd.

#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("TUVI: sum of scores by algorithm", "Figure 4", settings);

  for (const char* dataset :
       {"nusc", "nusc-clear", "nusc-night", "nusc-rainy", "bdd"}) {
    auto pool = std::move(BuildPoolForDataset(dataset, 5)).value();
    ExperimentConfig config = MakeConfig(dataset, settings);
    const auto result =
        RunExperiment(config, pool, DefaultTuviStrategies(10, 2));
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\nDataset " << dataset << " (~"
              << Fmt(result->avg_video_frames, 0) << " frames/trial):\n";
    PrintOutcomeTable(*result, std::cout);

    const auto* opt = result->Find("OPT");
    const auto* mes = result->Find("MES");
    if (opt && mes && opt->s_sum.mean > 0) {
      std::cout << "MES/OPT = " << Fmt(100.0 * mes->s_sum.mean /
                                       opt->s_sum.mean, 1)
                << "%\n";
    }
  }
  std::cout << "\nExpected shape (paper): MES above SGL/BF/RAND/EF on every "
               "dataset, within ~85% of OPT at full scale, with a narrower "
               "min-max band than EF.\n";
  return 0;
}
