// Table 3: model structures — parameter counts and average inference time —
// measured from the simulated detectors, plus their in-domain accuracy
// ordering (paper: YOLOv7 > tiny > micro > Faster R-CNN).

#include <iostream>

#include "bench_util.h"
#include "detection/ap.h"
#include "sim/scene_generator.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Model structures", "Table 3", settings);

  struct Entry {
    DetectorStructure structure;
    const char* name;
  };
  const Entry entries[] = {
      {DetectorStructure::kYoloV7, "yolov7@clear"},
      {DetectorStructure::kYoloV7Tiny, "yolov7-tiny@clear"},
      {DetectorStructure::kYoloV7Micro, "yolov7-micro@clear"},
      {DetectorStructure::kFasterRcnn, "faster-rcnn@clear"},
  };

  SceneGeneratorOptions gen;
  const int kFrames = 400;

  TablePrinter table({"Structure", "# of Params", "Avg. Inference Time (ms)",
                      "In-domain avg AP"});
  for (const Entry& e : entries) {
    SimulatedDetector det(*ParseDetectorName(e.name));
    double cost = 0.0;
    double ap = 0.0;
    for (int s = 0; s < kFrames; ++s) {
      const Video v = GenerateScene(gen, SceneContext::kClear, s, 1, 77);
      const VideoFrame& frame = v.frames[0];
      cost += det.InferenceCostMs(frame, s);
      ap += FrameMeanAp(det.Detect(frame, s), frame.objects, {});
    }
    table.AddRow({det.structure_name(),
                  Fmt(det.param_count() / 1e6, 2) + "M",
                  Fmt(cost / kFrames, 1), Fmt(ap / kFrames, 3)});
  }
  table.Print(std::cout);

  std::cout << "\nReference model:\n";
  ReferenceDetector ref;
  double ref_cost = 0.0;
  for (int s = 0; s < kFrames; ++s) {
    const Video v = GenerateScene(gen, SceneContext::kClear, s, 1, 77);
    ref_cost += ref.InferenceCostMs(v.frames[0], s);
  }
  std::cout << "  " << ref.name() << " (" << ref.structure_name()
            << "): avg inference " << Fmt(ref_cost / kFrames, 2)
            << " ms (paper assumption: c_REF << c_M holds)\n";
  std::cout << "\nExpected shape: params and times match Table 3 by "
               "construction; accuracy ordering YOLOv7 > tiny > micro > "
               "Faster R-CNN.\n";
  return 0;
}
