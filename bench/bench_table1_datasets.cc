// Tables 1 & 2: dataset composition (scenes/sequences, samples, duration)
// of the nuScenes-like and BDD-like catalogs, plus a sampled-replica check.

#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Dataset catalogs", "Tables 1 and 2", settings);

  const auto& catalog = DatasetCatalog::Default();

  std::cout << "\nTable 1: nuScenes groups\n";
  TablePrinter t1({"Group", "# of Scenes", "# of Samples", "Duration (min)"});
  for (const char* name : {"nusc", "nusc-clear", "nusc-night", "nusc-rainy"}) {
    const DatasetSpec* spec = *catalog.Find(name);
    t1.AddRow({spec->name, std::to_string(spec->TotalScenes()),
               std::to_string(spec->TotalFrames()),
               Fmt(spec->DurationMinutes(), 0)});
  }
  t1.Print(std::cout);

  std::cout << "\nTable 2: BDD groups\n";
  TablePrinter t2({"Group", "# of Sequences", "# of Samples",
                   "Duration (min)"});
  for (const char* name : {"bdd", "bdd-rainy", "bdd-snow"}) {
    const DatasetSpec* spec = *catalog.Find(name);
    t2.AddRow({spec->name, std::to_string(spec->TotalScenes()),
               std::to_string(spec->TotalFrames()),
               Fmt(spec->DurationMinutes(), 0)});
  }
  t2.Print(std::cout);

  std::cout << "\nDrift compositions (§5.1): segment-shuffled datasets\n";
  TablePrinter t3({"Dataset", "Groups", "Segments/group", "Total frames"});
  for (const char* name : {"c&n", "n&r", "c&n&r"}) {
    const DatasetSpec* spec = *catalog.Find(name);
    std::string groups;
    for (const auto& g : spec->groups) {
      if (!groups.empty()) groups += "+";
      groups += g.name;
    }
    t3.AddRow({spec->name, groups, std::to_string(spec->shuffle_segments),
               std::to_string(spec->TotalFrames())});
  }
  t3.Print(std::cout);

  // Sampled-replica sanity: frames and GT objects materialize.
  const DatasetSpec* nusc = *catalog.Find("nusc");
  SampleOptions opts;
  opts.scene_scale = ScaleFor(*nusc, settings.target_frames);
  opts.seed = 1;
  const auto video = SampleVideo(*nusc, opts);
  if (!video.ok()) {
    std::cerr << video.status().ToString() << "\n";
    return 1;
  }
  size_t objects = 0;
  for (const auto& f : video->frames) objects += f.objects.size();
  std::cout << "\nSampled replica of nusc at scale " << Fmt(opts.scene_scale, 4)
            << ": " << video->size() << " frames, " << objects
            << " ground-truth object instances ("
            << Fmt(static_cast<double>(objects) / video->size(), 2)
            << " per frame).\n";
  return 0;
}
