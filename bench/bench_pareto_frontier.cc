// §6 extension: Pareto-optimal ensemble identification (the MOQO "second
// category" the paper names as future work) — the frontier of ⟨ā, ĉ⟩
// across datasets, and how often MES's selections land on it.

#include <iostream>

#include "bench_util.h"
#include "core/pareto.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Pareto-optimal ensembles (extension)",
              "§6 future-work direction", settings);

  for (const char* dataset : {"nusc", "nusc-night", "bdd"}) {
    auto pool = std::move(BuildPoolForDataset(dataset, 5)).value();
    ExperimentConfig config = MakeConfig(dataset, settings);
    const auto matrix = std::move(BuildTrialMatrix(config, pool, 0)).value();
    const auto frontier = ParetoFrontier(EnsembleObjectives(matrix));

    std::cout << "\nDataset " << dataset << " — frontier ("
              << frontier.size() << " of " << NumEnsembles(5)
              << " ensembles):\n";
    TablePrinter table({"ensemble", "|S|", "avg AP", "avg cost"});
    for (const auto& p : frontier) {
      table.AddRow({EnsembleName(p.id, matrix.model_names),
                    std::to_string(EnsembleSize(p.id)), Fmt(p.avg_ap, 3),
                    Fmt(p.avg_norm_cost, 3)});
    }
    table.Print(std::cout);

    // How much of MES's selection mass lands on Pareto-optimal arms?
    EngineOptions engine;
    engine.sc = ScoringFunction{0.5, 0.5};
    MesStrategy mes;
    const auto run = RunStrategy(matrix, &mes, engine);
    uint64_t on_frontier = 0;
    for (const auto& p : frontier) {
      on_frontier += run->selection_counts[p.id];
    }
    std::cout << "MES selects a Pareto-optimal ensemble on "
              << Fmt(100.0 * on_frontier / run->frames_processed, 1)
              << "% of frames.\n";
  }
  std::cout << "\nExpected shape: the frontier runs from a cheap singleton "
               "to the most accurate large ensemble; converged MES mass "
               "concentrates on (near-)frontier arms.\n";
  return 0;
}
