// Figure 13: where MES's time goes — detector inference dominates, the
// LiDAR reference follows, and ensembling plus the bandit bookkeeping are
// negligible.

#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("MES component time breakdown", "Figure 13", settings);

  auto pool = std::move(BuildNuscenesPool(5)).value();
  ExperimentConfig config = MakeConfig("nusc", settings);
  std::vector<StrategySpec> strategies{
      {"MES", [] { return std::make_unique<MesStrategy>(); }}};
  const auto result = RunExperiment(config, pool, strategies);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  TimeBreakdown total;
  for (const auto& run : result->outcomes[0].runs) {
    total.detector_ms += run.breakdown.detector_ms;
    total.reference_ms += run.breakdown.reference_ms;
    total.ensembling_ms += run.breakdown.ensembling_ms;
    total.algorithm_ms += run.breakdown.algorithm_ms;
  }
  const double sum = total.TotalMs();

  TablePrinter table({"Component", "time (ms)", "share %"});
  table.AddRow({"detector inference (simulated)", Fmt(total.detector_ms, 0),
                Fmt(100.0 * total.detector_ms / sum, 1)});
  table.AddRow({"LiDAR reference inference (simulated)",
                Fmt(total.reference_ms, 0),
                Fmt(100.0 * total.reference_ms / sum, 1)});
  table.AddRow({"ensembling / box fusion (simulated)",
                Fmt(total.ensembling_ms, 0),
                Fmt(100.0 * total.ensembling_ms / sum, 1)});
  table.AddRow({"MES selection + updates (measured wall clock)",
                Fmt(total.algorithm_ms, 2),
                Fmt(100.0 * total.algorithm_ms / sum, 2)});
  table.Print(std::cout);

  std::cout << "\nExpected shape (paper): ~90% detector inference, ~10% "
               "LiDAR, ~0.4% ensembling + optimization overhead. The "
               "algorithm row measures this implementation's real CPU time "
               "against the simulated GPU budget, which is conservative.\n";
  return 0;
}
