// Figure 3: the ⟨ā_S, 1−ĉ_S⟩ positions of all 31 ensembles of the m=5 pool
// on V_nusc and V_nusc^night. Each row is one scatter point.

#include <iostream>

#include "bench_util.h"
#include "core/frame_matrix.h"
#include "core/pareto.h"

using namespace vqe;
using namespace vqe::bench;

namespace {

void ScatterFor(const char* dataset, const BenchSettings& settings) {
  auto pool = std::move(BuildNuscenesPool(5)).value();
  ExperimentConfig config = MakeConfig(dataset, settings);
  const auto matrix = BuildTrialMatrix(config, pool, /*trial=*/0);
  if (!matrix.ok()) {
    std::cerr << matrix.status().ToString() << "\n";
    std::exit(1);
  }
  const auto points = EnsembleObjectives(*matrix);
  const auto frontier = ParetoFrontier(points);

  std::cout << "\nDataset " << dataset << " (" << matrix->size()
            << " frames):\n";
  TablePrinter table({"mask", "|S|", "ensemble", "avg AP", "1 - avg cost",
                      "pareto"});
  for (const auto& p : points) {
    const bool on_frontier =
        std::any_of(frontier.begin(), frontier.end(),
                    [&](const EnsemblePoint& f) { return f.id == p.id; });
    table.AddRow({std::to_string(p.id), std::to_string(EnsembleSize(p.id)),
                  EnsembleName(p.id, matrix->model_names),
                  Fmt(p.avg_ap, 3), Fmt(1.0 - p.avg_norm_cost, 3),
                  on_frontier ? "*" : ""});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Ensemble objective scatter", "Figure 3 (+ §6 Pareto extension)",
              settings);
  ScatterFor("nusc", settings);
  ScatterFor("nusc-night", settings);
  std::cout << "\nExpected shape: larger ensembles sit higher in AP and "
               "lower in 1-cost; on nusc-night the night-specialist arms "
               "dominate same-cost alternatives. '*' marks the Pareto "
               "frontier (the paper's proposed MOQO future work).\n";
  return 0;
}
