// Shared helpers for the benchmark harness. Every bench binary regenerates
// one table or figure of the paper on a scaled-down replica of its datasets
// (full Table 1/2 sizes are reachable by raising the env knobs below).
//
// Environment knobs:
//   VQE_BENCH_TRIALS  — independent trials per configuration (default 10;
//                       the paper uses 100)
//   VQE_BENCH_FRAMES  — target frames per sampled video (default 4000;
//                       datasets smaller than the target run at full size)
//   VQE_BENCH_FAST=1  — quick smoke mode (3 trials, 1200 frames)

#ifndef VQE_BENCH_BENCH_UTIL_H_
#define VQE_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/baselines.h"
#include "core/experiment.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "sim/dataset.h"

namespace vqe {
namespace bench {

/// Benchmark-wide settings resolved from the environment.
struct BenchSettings {
  int trials = 10;
  double target_frames = 4000.0;

  static BenchSettings FromEnv();
};

/// Scene scale that makes `spec` sample roughly `target_frames` frames
/// (capped at 1.0 — never upsample beyond the paper's dataset size).
double ScaleFor(const DatasetSpec& spec, double target_frames);

/// Standard experiment config: dataset by name, auto-scaled, default
/// scoring weights (0.5, 0.5).
ExperimentConfig MakeConfig(const std::string& dataset,
                            const BenchSettings& settings);

/// SW-MES with the repo's variance-tuned drift defaults (window 450,
/// exploration 0.05, 8 probes/window).
StrategySpec SwMesSpec(size_t window = 450);

/// Formats a double with the given precision.
std::string Fmt(double v, int precision = 2);

/// Prints the standard bench header.
void PrintHeader(const std::string& title, const std::string& paper_ref,
                 const BenchSettings& settings);

/// Prints mean/sd/min/max rows (the Figure 4/7 box-plot statistics) for
/// every outcome of an experiment.
void PrintOutcomeTable(const ExperimentResult& result, std::ostream& os);

}  // namespace bench
}  // namespace vqe

#endif  // VQE_BENCH_BENCH_UTIL_H_
