// Figure 6: TCVI s_sum–B curves — total score achieved within a time
// budget B, per algorithm, on the five evaluation datasets.

#include <iostream>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/mes_b.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("TCVI: score vs time budget", "Figure 6", settings);

  for (const char* dataset :
       {"nusc", "nusc-clear", "nusc-night", "nusc-rainy", "bdd"}) {
    auto pool = std::move(BuildPoolForDataset(dataset, 5)).value();
    ExperimentConfig config = MakeConfig(dataset, settings);
    config.trials = std::max(2, settings.trials / 2);  // matrices reused

    std::vector<FrameMatrix> matrices;
    for (int trial = 0; trial < config.trials; ++trial) {
      matrices.push_back(
          std::move(BuildTrialMatrix(config, pool, trial)).value());
    }
    const double frames = static_cast<double>(matrices[0].size());
    // Budget points: fractions of the cost of running the cheapest viable
    // configuration over the whole video (~12ms/frame) up to generous.
    const std::vector<double> budgets = {frames * 3.0, frames * 8.0,
                                         frames * 15.0, frames * 30.0,
                                         frames * 60.0};

    std::cout << "\nDataset " << dataset << " (" << Fmt(frames, 0)
              << " frames/trial):\n";
    TablePrinter table({"B (ms)", "algorithm", "s_sum", "frames processed"});
    for (double budget : budgets) {
      EngineOptions engine;
      engine.sc = ScoringFunction{0.5, 0.5};
      engine.budget_ms = budget;
      std::vector<std::pair<std::string,
                            std::function<std::unique_ptr<SelectionStrategy>()>>>
          algos = {
              {"BF", [] { return std::make_unique<BruteForceStrategy>(); }},
              {"SGL", [] { return std::make_unique<SingleBestStrategy>(); }},
              {"EF", [] { return std::make_unique<ExploreFirstStrategy>(2); }},
              {"MES-B", [] { return std::make_unique<MesBStrategy>(); }},
          };
      for (const auto& [label, make] : algos) {
        double s_sum = 0, processed = 0;
        for (const auto& matrix : matrices) {
          auto strategy = make();
          const auto run = RunStrategy(matrix, strategy.get(), engine);
          s_sum += run->s_sum;
          processed += static_cast<double>(run->frames_processed);
        }
        const double n = static_cast<double>(matrices.size());
        table.AddRow({Fmt(budget, 0), label, Fmt(s_sum / n, 1),
                      Fmt(processed / n, 0)});
      }
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): MES-B leads at every budget; BF "
               "processes the fewest frames per unit budget; curves flatten "
               "once B suffices for the whole video.\n";
  return 0;
}
