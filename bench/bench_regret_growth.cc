// Empirical check of the §4 analysis: MES's regret should grow
// logarithmically with the horizon (Theorem 4.1, O(|M| log |V|)), far
// slower than RAND's linear regret; SW-MES's regret under drift should
// grow sublinearly too (Theorem 4.4). We sweep the horizon and report
// per-frame regret, which should fall for MES and stay flat for RAND.

#include <cmath>
#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Regret growth vs horizon", "§4 (Theorems 4.1 / 4.4)",
              settings);

  auto pool = std::move(BuildNuscenesPool(5)).value();
  const int trials = std::max(2, settings.trials / 3);

  std::cout << "\nStationary (nusc-clear, Theorem 4.1):\n";
  TablePrinter table({"frames n", "MES regret", "MES regret/n",
                      "RAND regret/n", "regret / log n"});
  for (double frames : {500.0, 1500.0, 4000.0, 10000.0}) {
    ExperimentConfig config = MakeConfig("nusc-clear", settings);
    config.scene_scale = ScaleFor(*config.dataset, frames);
    config.trials = trials;
    std::vector<StrategySpec> strategies{
        {"MES", [] { return std::make_unique<MesStrategy>(); }},
        {"RAND", [] { return std::make_unique<RandomStrategy>(); }},
    };
    const auto result = RunExperiment(config, pool, strategies);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const double n = result->avg_video_frames;
    const double mes_regret = result->Find("MES")->regret.mean;
    const double rand_regret = result->Find("RAND")->regret.mean;
    table.AddRow({Fmt(n, 0), Fmt(mes_regret, 1), Fmt(mes_regret / n, 4),
                  Fmt(rand_regret / n, 4),
                  Fmt(mes_regret / std::log(n), 1)});
  }
  table.Print(std::cout);

  std::cout << "\nExpected shape: MES per-frame regret falls steadily with "
               "n while RAND's is horizon-independent (linear regret). The "
               "O(log n) asymptote of Theorem 4.1 (a flat regret/log-n "
               "column) needs horizons beyond these replicas; the sublinear "
               "trend is the reproducible signal here.\n";
  return 0;
}
