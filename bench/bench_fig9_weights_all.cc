// Figure 9: scores of all algorithms under different scoring-weight
// combinations ⟨w1, w2⟩ on V_nusc.

#include <iostream>

#include "bench_util.h"
#include "core/baselines.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Weight sweep: all algorithms", "Figure 9", settings);

  auto pool = std::move(BuildNuscenesPool(5)).value();
  ExperimentConfig config = MakeConfig("nusc", settings);

  std::vector<FrameMatrix> matrices;
  for (int trial = 0; trial < config.trials; ++trial) {
    matrices.push_back(std::move(BuildTrialMatrix(config, pool, trial)).value());
  }

  TablePrinter table({"w1/w2", "OPT", "BF", "SGL", "RAND", "EF", "MES"});
  for (double w1 : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EngineOptions engine;
    engine.sc = ScoringFunction{w1, 1.0 - w1};
    std::vector<std::string> row{Fmt(w1, 1) + "/" + Fmt(1.0 - w1, 1)};
    std::vector<std::pair<std::string,
                          std::function<std::unique_ptr<SelectionStrategy>()>>>
        algos = {
            {"OPT", [] { return std::make_unique<OptStrategy>(); }},
            {"BF", [] { return std::make_unique<BruteForceStrategy>(); }},
            {"SGL", [] { return std::make_unique<SingleBestStrategy>(); }},
            {"RAND", [] { return std::make_unique<RandomStrategy>(); }},
            {"EF", [] { return std::make_unique<ExploreFirstStrategy>(2); }},
            {"MES", [] { return std::make_unique<MesStrategy>(); }},
        };
    for (const auto& [label, make] : algos) {
      double s_sum = 0;
      for (size_t i = 0; i < matrices.size(); ++i) {
        auto strategy = make();
        EngineOptions trial_engine = engine;
        trial_engine.strategy_seed = i;
        s_sum += RunStrategy(matrices[i], strategy.get(), trial_engine)->s_sum;
      }
      row.push_back(Fmt(s_sum / static_cast<double>(matrices.size()), 1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): at cost-heavy weights (w1=0.1) BF "
               "and SGL trail MES badly; as w1 grows their gap narrows; MES "
               "stays above EF at every combination, with a shrinking edge "
               "at w1=0.9.\n";
  return 0;
}
