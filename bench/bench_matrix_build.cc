// Matrix-build and strategy-run throughput at m ∈ {4, 6, 8, 10}.
//
// Section 1 — construction pipelines: "legacy" (the pre-optimization inner
// loop: per-mask deep copies of the model outputs and a per-call
// ground-truth rescan), "serial" (the allocation-lean path, one worker)
// and "parallel" (the allocation-lean path on the shared thread pool).
// Verifies the serial and parallel matrices are bit-identical.
//
// Section 2 — end-to-end strategy runs, eager vs lazy: for MES (online,
// touches only its selections' subset lattices) and OPT (oracle,
// full-lattice by nature), time BuildFrameMatrix + RunStrategy against
// LazyFrameEvaluator::Create + RunStrategy, verify the runs are
// bit-identical, and report how many of the |V|·(2^m − 1) cells the lazy
// run actually materialized.
//
// Section 3 — kernel microbenches, detector simulation excluded: the
// pairwise-IoU tile build (pre-PR pointer-map scalar sweep vs the SoA
// label-block kernel) and single fusion calls (pre-PR map-pooling,
// copy-heavy Fuse replicas vs the arena-backed FuseInto), each verified
// bit-identical against its replica.
//
// Emits BENCH_matrix_build.json so later PRs can track the trajectory.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/frame_matrix.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "detection/ap.h"
#include "detection/frame_soa.h"
#include "fusion/ensemble_method.h"
#include "fusion/iou_cache.h"
#include "sim/dataset.h"

using namespace vqe;
using namespace vqe::bench;

namespace {

// The pre-optimization build loop, reproduced through public APIs: run the
// detectors per frame, then per mask deep-copy the participating model
// outputs, fuse, and evaluate both APs against raw ground-truth lists
// (re-deriving the per-class partition on every call). Timed end to end,
// exactly like BuildFrameMatrix, so the throughput ratio is like-for-like.
double LegacyBuildSeconds(const Video& video, const DetectorPool& pool,
                          uint64_t seed, const MatrixOptions& options) {
  const int m = static_cast<int>(pool.detectors.size());
  const uint32_t num_masks = NumEnsembles(m);
  auto fusion =
      std::move(CreateEnsembleMethod(options.fusion, options.fusion_options))
          .value();

  Stopwatch watch;
  double checksum = 0.0;
  for (const VideoFrame& frame : video.frames) {
    std::vector<DetectionList> model_out(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      model_out[static_cast<size_t>(i)] =
          pool.detectors[static_cast<size_t>(i)]->Detect(frame, seed);
      checksum += pool.detectors[static_cast<size_t>(i)]->InferenceCostMs(
          frame, seed);
    }
    const DetectionList ref_out = pool.reference->Detect(frame, seed);
    checksum += pool.reference->InferenceCostMs(frame, seed);
    const GroundTruthList ref_gt =
        DetectionsAsGroundTruth(ref_out, options.ref_confidence_threshold);

    for (EnsembleId mask = 1; mask <= num_masks; ++mask) {
      std::vector<DetectionList> inputs;
      for (int i = 0; i < m; ++i) {
        if (!ContainsModel(mask, i)) continue;
        inputs.push_back(model_out[static_cast<size_t>(i)]);
      }
      const DetectionList fused = fusion->Fuse(inputs);
      checksum += FrameMeanAp(fused, ref_gt, options.ap);
      checksum += FrameMeanAp(fused, frame.objects, options.ap);
    }
  }
  const double total = watch.ElapsedSeconds();
  if (checksum < -1.0) std::printf("unreachable\n");  // keep the loop live
  return total;
}

bool MatricesIdentical(const FrameMatrix& a, const FrameMatrix& b) {
  if (a.size() != b.size() || a.num_models != b.num_models) return false;
  for (size_t t = 0; t < a.size(); ++t) {
    const FrameEvaluation& fa = a.frames[t];
    const FrameEvaluation& fb = b.frames[t];
    if (fa.ref_cost_ms != fb.ref_cost_ms ||
        fa.max_cost_ms != fb.max_cost_ms ||
        fa.best_true_candidates != fb.best_true_candidates ||
        fa.model_cost_ms != fb.model_cost_ms || fa.est_ap != fb.est_ap ||
        fa.true_ap != fb.true_ap || fa.cost_ms != fb.cost_ms ||
        fa.fusion_overhead_ms != fb.fusion_overhead_ms) {
      return false;
    }
  }
  return true;
}

struct PoolSizeResult {
  int m = 0;
  size_t frames = 0;
  uint32_t masks = 0;
  double legacy_fps = 0.0;
  double serial_fps = 0.0;
  double parallel_fps = 0.0;
  bool identical = false;
  /// True when the parallel row reuses the serial measurement because the
  /// shared pool has a single worker (the "parallel" configuration then
  /// resolves to the identical serial code path; timing it separately
  /// would only measure noise).
  bool parallel_is_serial_alias = false;
};

struct StrategyRunResult {
  int m = 0;
  std::string strategy;
  size_t frames = 0;
  double eager_fps = 0.0;
  double lazy_fps = 0.0;
  uint64_t lattice_cells = 0;      // frames * (2^m - 1)
  uint64_t cells_materialized = 0; // what the lazy run actually fused
  bool identical = false;
};

bool SameRun(const RunResult& a, const RunResult& b) {
  return a.s_sum == b.s_sum && a.avg_true_ap == b.avg_true_ap &&
         a.avg_norm_cost == b.avg_norm_cost &&
         a.frames_processed == b.frames_processed &&
         a.charged_cost_ms == b.charged_cost_ms &&
         a.selection_counts == b.selection_counts;
}

// ------------------- Section 3: pre-PR kernel replicas -------------------
// Faithful reproductions of the pre-optimization kernels, kept bench-local
// so the comparison survives after the production code moved on.

/// The pre-PR tile build: an id → Detection* map over the AoS inputs,
/// then a scalar IoU(a.box, b.box) per same-label pair.
struct LegacyIouTile {
  int n = 0;
  std::vector<double> tile;

  LegacyIouTile(const std::vector<DetectionList>& per_model, int num_ids) {
    if (num_ids <= 0 || num_ids > PairwiseIouCache::kMaxCachedDetections) {
      return;
    }
    n = num_ids;
    const size_t size = static_cast<size_t>(n);
    tile.assign(size * size, -1.0);
    std::vector<const Detection*> by_id(size, nullptr);
    for (const auto& list : per_model) {
      for (const auto& d : list) {
        if (d.frame_det_id >= 0 && d.frame_det_id < n) {
          by_id[static_cast<size_t>(d.frame_det_id)] = &d;
        }
      }
    }
    for (size_t i = 0; i < size; ++i) {
      const Detection* a = by_id[i];
      if (a == nullptr) continue;
      for (size_t j = i; j < size; ++j) {
        const Detection* b = by_id[j];
        if (b == nullptr || b->label != a->label) continue;
        const double iou = IoU(a->box, b->box);
        tile[i * size + j] = iou;
        tile[j * size + i] = iou;
      }
    }
  }

  double Get(const Detection& a, const Detection& b) const {
    if (a.frame_det_id >= 0 && a.frame_det_id < n && b.frame_det_id >= 0 &&
        b.frame_det_id < n) {
      const double v = tile[static_cast<size_t>(a.frame_det_id) *
                                static_cast<size_t>(n) +
                            static_cast<size_t>(b.frame_det_id)];
      if (v >= 0.0) return v;
    }
    return IoU(a.box, b.box);
  }
};

/// Pre-PR class pooling: a std::map of per-class copies per call.
std::map<ClassId, DetectionList> LegacyPoolByClass(
    DetectionListSpan per_model) {
  std::map<ClassId, DetectionList> by_class;
  for (size_t i = 0; i < per_model.size(); ++i) {
    for (const auto& d : per_model[i]) by_class[d.label].push_back(d);
  }
  return by_class;
}

void LegacySortDesc(DetectionList* dets) {
  std::stable_sort(dets->begin(), dets->end(),
                   [](const Detection& a, const Detection& b) {
                     return a.confidence > b.confidence;
                   });
}

double LegacyCachedIoU(const PairwiseIouCache* iou, const Detection& a,
                       const Detection& b) {
  return iou != nullptr ? iou->Get(a, b) : IoU(a.box, b.box);
}

/// The pre-PR NMS inner loop: map pooling, a pooled copy per class, a
/// heap-allocating stable sort and a std::vector<bool> flag set per call.
DetectionList LegacyNmsFuse(DetectionListSpan per_model,
                            const PairwiseIouCache* iou,
                            const FusionOptions& options) {
  DetectionList out;
  for (auto& [cls, pooled] : LegacyPoolByClass(per_model)) {
    DetectionList dets = pooled;
    LegacySortDesc(&dets);
    std::vector<bool> suppressed(dets.size(), false);
    for (size_t i = 0; i < dets.size(); ++i) {
      if (suppressed[i]) continue;
      Detection kept = dets[i];
      kept.model_index = -1;
      kept.frame_det_id = -1;
      if (kept.confidence >= options.score_threshold) out.push_back(kept);
      for (size_t j = i + 1; j < dets.size(); ++j) {
        if (suppressed[j]) continue;
        if (LegacyCachedIoU(iou, dets[i], dets[j]) > options.iou_threshold) {
          suppressed[j] = true;
        }
      }
    }
  }
  return out;
}

/// The pre-PR WBF: weighted per-model input copies, map pooling, and
/// clusters that hold their member list and refold it front-to-back after
/// every insertion.
DetectionList LegacyWbfFuse(DetectionListSpan per_model,
                            const FusionOptions& options) {
  struct Cluster {
    DetectionList members;
    Detection fused;

    void Refresh() {
      double wsum = 0.0;
      double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
      double conf_sum = 0.0;
      double var_sum = 0.0;
      for (const auto& m : members) {
        const double w = m.confidence;
        x1 += w * m.box.x1;
        y1 += w * m.box.y1;
        x2 += w * m.box.x2;
        y2 += w * m.box.y2;
        wsum += w;
        conf_sum += m.confidence;
        var_sum += m.box_variance;
      }
      if (wsum > 0.0) {
        fused.box = BBox{x1 / wsum, y1 / wsum, x2 / wsum, y2 / wsum};
      }
      fused.confidence = conf_sum / static_cast<double>(members.size());
      fused.box_variance = var_sum / static_cast<double>(members.size());
      fused.label = members.front().label;
      fused.model_index = -1;
    }
  };

  const size_t num_models = per_model.size();
  DetectionList out;

  DetectionListSpan inputs = per_model;
  std::vector<DetectionList> weighted;
  if (options.model_weights.size() == num_models) {
    weighted.resize(num_models);
    for (size_t i = 0; i < num_models; ++i) {
      weighted[i] = per_model[i];
      for (auto& d : weighted[i]) {
        d.confidence = std::min(1.0, d.confidence * options.model_weights[i]);
      }
    }
    inputs = DetectionListSpan(weighted);
  }

  for (auto& [cls, pooled] : LegacyPoolByClass(inputs)) {
    DetectionList dets = pooled;
    LegacySortDesc(&dets);

    std::vector<Cluster> clusters;
    for (const auto& d : dets) {
      int best = -1;
      double best_iou = options.iou_threshold;
      for (size_t c = 0; c < clusters.size(); ++c) {
        const double iou = IoU(clusters[c].fused.box, d.box);
        if (iou > best_iou) {
          best_iou = iou;
          best = static_cast<int>(c);
        }
      }
      if (best >= 0) {
        clusters[static_cast<size_t>(best)].members.push_back(d);
        clusters[static_cast<size_t>(best)].Refresh();
      } else {
        Cluster c;
        c.members.push_back(d);
        c.Refresh();
        clusters.push_back(std::move(c));
      }
    }

    for (auto& c : clusters) {
      if (num_models > 0) {
        const double n = static_cast<double>(c.members.size());
        const double t = static_cast<double>(num_models);
        c.fused.confidence *= std::min(n, t) / t;
      }
      if (c.fused.confidence >= options.score_threshold) {
        out.push_back(c.fused);
      }
    }
  }
  LegacySortDesc(&out);
  return out;
}

bool SameDetections(const DetectionList& a, const DetectionList& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].confidence != b[i].confidence || a[i].label != b[i].label ||
        a[i].model_index != b[i].model_index ||
        a[i].box.x1 != b[i].box.x1 || a[i].box.y1 != b[i].box.y1 ||
        a[i].box.x2 != b[i].box.x2 || a[i].box.y2 != b[i].box.y2 ||
        a[i].box_variance != b[i].box_variance) {
      return false;
    }
  }
  return true;
}

struct KernelResult {
  std::string name;
  double legacy_per_sec = 0.0;
  double new_per_sec = 0.0;
  bool identical = false;
};

}  // namespace

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Frame-matrix construction throughput",
              "pipeline optimization (no paper figure)", settings);

  // Ten distinct structure@context detectors; pools take the first m.
  const std::vector<std::string> names = {
      "yolov7@clear",      "yolov7-tiny@clear",  "yolov7-tiny@night",
      "yolov7-tiny@rainy", "yolov7-micro@clear", "yolov7@night",
      "faster-rcnn@clear", "yolov7-micro@rainy", "faster-rcnn@night",
      "yolov7@rainy"};

  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc");
  const int hw_workers = SharedThreadPool().num_threads() + 1;
  std::printf("Shared pool: %d worker thread(s)\n\n", hw_workers);

  TablePrinter table({"m", "frames", "masks", "legacy f/s", "serial f/s",
                      "parallel f/s", "serial gain", "parallel gain",
                      "identical"});
  std::vector<PoolSizeResult> results;
  std::vector<StrategyRunResult> strategy_runs;

  for (const int m : {4, 6, 8, 10}) {
    std::vector<DetectorProfile> profiles;
    for (int i = 0; i < m; ++i) {
      profiles.push_back(
          std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
    }
    auto pool = std::move(BuildPool(profiles)).value();

    // Halve the frame budget per extra pool bit: the mask loop doubles.
    const double base = settings.target_frames / 10.0;
    const double target = std::max(40.0, base * 16.0 / (1 << (m - 4)));
    SampleOptions sample;
    sample.scene_scale = ScaleFor(*spec, target);
    sample.seed = 29;
    const Video video = std::move(SampleVideo(*spec, sample)).value();

    MatrixOptions options;
    const uint64_t seed = 29;

    PoolSizeResult r;
    r.m = m;
    r.frames = video.size();
    r.masks = NumEnsembles(m);

    const double legacy_s = LegacyBuildSeconds(video, pool, seed, options);
    r.legacy_fps = static_cast<double>(video.size()) / legacy_s;

    options.parallelism = 1;
    Stopwatch serial_watch;
    const auto serial = BuildFrameMatrix(video, pool, seed, options);
    const double serial_s = serial_watch.ElapsedSeconds();
    r.serial_fps = static_cast<double>(video.size()) / serial_s;

    options.parallelism = 0;
    if (hw_workers <= 1) {
      // With one worker the "parallel" configuration resolves to the
      // identical serial code path (ResolveWorkers returns 1): report the
      // serial measurement instead of re-timing the same code and calling
      // its noise a speedup.
      r.parallel_fps = r.serial_fps;
      r.parallel_is_serial_alias = true;
      r.identical = serial.ok();
    } else {
      Stopwatch parallel_watch;
      const auto parallel = BuildFrameMatrix(video, pool, seed, options);
      const double parallel_s = parallel_watch.ElapsedSeconds();
      r.parallel_fps = static_cast<double>(video.size()) / parallel_s;
      r.identical = serial.ok() && parallel.ok() &&
                    MatricesIdentical(*serial, *parallel);
    }
    results.push_back(r);

    table.AddRow({std::to_string(m), std::to_string(r.frames),
                  std::to_string(r.masks), Fmt(r.legacy_fps, 1),
                  Fmt(r.serial_fps, 1),
                  Fmt(r.parallel_fps, 1) +
                      (r.parallel_is_serial_alias ? "*" : ""),
                  Fmt(r.serial_fps / r.legacy_fps, 2) + "x",
                  Fmt(r.parallel_fps / r.serial_fps, 2) + "x",
                  r.identical ? "yes" : "NO"});

    // ---- Section 2: eager vs lazy strategy runs on the same video ----
    EngineOptions engine;
    engine.strategy_seed = 31;
    engine.compute_regret = false;  // regret scans the full lattice

    struct StrategyCase {
      const char* label;
      std::function<std::unique_ptr<SelectionStrategy>()> make;
    };
    const std::vector<StrategyCase> cases = {
        {"MES", [] { return std::make_unique<MesStrategy>(MesOptions{}); }},
        {"OPT", [] { return std::make_unique<OptStrategy>(); }},
    };
    for (const auto& c : cases) {
      StrategyRunResult sr;
      sr.m = m;
      sr.strategy = c.label;
      sr.frames = video.size();
      sr.lattice_cells =
          static_cast<uint64_t>(video.size()) * NumEnsembles(m);

      auto eager_strategy = c.make();
      Stopwatch eager_watch;
      const auto eager_matrix = BuildFrameMatrix(video, pool, seed, options);
      const auto eager_run =
          RunStrategy(*eager_matrix, eager_strategy.get(), engine);
      const double eager_s = eager_watch.ElapsedSeconds();
      sr.eager_fps = static_cast<double>(video.size()) / eager_s;

      auto lazy_strategy = c.make();
      Stopwatch lazy_watch;
      auto lazy = std::move(LazyFrameEvaluator::Create(video, pool, seed,
                                                       options))
                      .value();
      const auto lazy_run = RunStrategy(*lazy, lazy_strategy.get(), engine);
      const double lazy_s = lazy_watch.ElapsedSeconds();
      sr.lazy_fps = static_cast<double>(video.size()) / lazy_s;
      sr.cells_materialized = lazy->masks_materialized();
      sr.identical = eager_run.ok() && lazy_run.ok() &&
                     SameRun(*eager_run, *lazy_run);
      strategy_runs.push_back(sr);
    }
  }
  table.Print(std::cout);
  std::printf(
      "\n'serial gain' isolates the copy-free fusion inputs and per-frame\n"
      "ground-truth index (all timings include detector simulation);\n"
      "'parallel gain' adds frame-level workers on top.\n");
  if (hw_workers <= 1) {
    std::printf(
        "* single-worker pool: the parallel configuration runs the serial\n"
        "  code path, so its row reports the serial measurement.\n");
  }

  std::printf("\nStrategy runs, eager (build matrix + run) vs lazy"
              " (materialize on demand):\n");
  TablePrinter run_table({"m", "strategy", "frames", "eager f/s", "lazy f/s",
                          "lazy gain", "cells fused", "lattice", "identical"});
  for (const auto& sr : strategy_runs) {
    run_table.AddRow(
        {std::to_string(sr.m), sr.strategy, std::to_string(sr.frames),
         Fmt(sr.eager_fps, 1), Fmt(sr.lazy_fps, 1),
         Fmt(sr.lazy_fps / sr.eager_fps, 2) + "x",
         std::to_string(sr.cells_materialized),
         std::to_string(sr.lattice_cells), sr.identical ? "yes" : "NO"});
  }
  run_table.Print(std::cout);
  std::printf(
      "\nMES only touches its selections' subset lattices, so the lazy\n"
      "source fuses a fraction of the cells; OPT's oracle argmax scans\n"
      "every mask, so lazy buys it nothing (needs_full_lattice keeps such\n"
      "strategies on the eager backend in experiments).\n");

  // ---- Section 3: kernel microbenches (detector simulation excluded) ----
  std::vector<KernelResult> kernels;
  size_t kernel_frames = 0;
  size_t kernel_reps = 0;
  double kernel_boxes_per_frame = 0.0;
  {
    const int m = 6;
    std::vector<DetectorProfile> profiles;
    for (int i = 0; i < m; ++i) {
      profiles.push_back(
          std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
    }
    auto pool = std::move(BuildPool(profiles)).value();
    SampleOptions sample;
    sample.scene_scale = ScaleFor(*spec, 60.0);
    sample.seed = 37;
    const Video kvideo = std::move(SampleVideo(*spec, sample)).value();
    const uint64_t kseed = 37;

    // Materialize every frame's detector outputs (with frame ids) up
    // front: the kernels below are timed over fixed inputs.
    std::vector<std::vector<DetectionList>> frame_out;
    std::vector<int> frame_ids;
    size_t total_boxes = 0;
    for (const VideoFrame& frame : kvideo.frames) {
      std::vector<DetectionList> model_out(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) {
        model_out[static_cast<size_t>(i)] =
            pool.detectors[static_cast<size_t>(i)]->Detect(frame, kseed);
      }
      const int num_ids = AssignFrameDetIds(model_out);
      total_boxes += static_cast<size_t>(num_ids);
      frame_out.push_back(std::move(model_out));
      frame_ids.push_back(num_ids);
    }
    kernel_frames = frame_out.size();
    kernel_reps = std::max<size_t>(50, settings.trials * 20);
    kernel_boxes_per_frame = kernel_frames == 0
                                 ? 0.0
                                 : static_cast<double>(total_boxes) /
                                       static_cast<double>(kernel_frames);
    double sink = 0.0;

    // Tile build: legacy pointer-map sweep vs SoA label-block kernel (SoA
    // construction included — it is part of the per-frame cost).
    std::vector<PairwiseIouCache> tiles;  // reused by the fusion benches
    std::vector<FrameSoA> soas;           // reused by the fusion benches
    bool tile_identical = true;
    for (size_t f = 0; f < kernel_frames; ++f) {
      const LegacyIouTile legacy(frame_out[f], frame_ids[f]);
      soas.emplace_back(frame_out[f], frame_ids[f]);
      tiles.emplace_back(soas.back());
      for (const auto& list_a : frame_out[f]) {
        for (const auto& a : list_a) {
          for (const auto& list_b : frame_out[f]) {
            for (const auto& b : list_b) {
              if (tiles.back().Get(a, b) != legacy.Get(a, b)) {
                tile_identical = false;
              }
            }
          }
        }
      }
    }
    {
      KernelResult r;
      r.name = "iou_tile_build";
      r.identical = tile_identical;
      Stopwatch legacy_watch;
      for (size_t rep = 0; rep < kernel_reps; ++rep) {
        for (size_t f = 0; f < kernel_frames; ++f) {
          const LegacyIouTile tile(frame_out[f], frame_ids[f]);
          sink += static_cast<double>(tile.tile.size());
        }
      }
      const double legacy_s = legacy_watch.ElapsedSeconds();
      Stopwatch soa_watch;
      for (size_t rep = 0; rep < kernel_reps; ++rep) {
        for (size_t f = 0; f < kernel_frames; ++f) {
          const PairwiseIouCache tile(FrameSoA(frame_out[f], frame_ids[f]));
          sink += tile.enabled() ? 1.0 : 0.0;
        }
      }
      const double soa_s = soa_watch.ElapsedSeconds();
      const double ops = static_cast<double>(kernel_reps * kernel_frames);
      r.legacy_per_sec = ops / legacy_s;
      r.new_per_sec = ops / soa_s;
      kernels.push_back(r);
    }

    // Single fusion calls over the full-pool mask: pre-PR Fuse replicas vs
    // the arena-backed FuseInto with a reused output buffer.
    MatrixOptions kernel_options;
    const FusionOptions fopts = kernel_options.fusion_options;
    auto nms = std::move(CreateEnsembleMethod(FusionKind::kNms, fopts)).value();
    auto wbf = std::move(CreateEnsembleMethod(FusionKind::kWbf, fopts)).value();
    DetectionList fused;

    {
      KernelResult r;
      r.name = "nms_fuse";
      r.identical = true;
      for (size_t f = 0; f < kernel_frames; ++f) {
        const DetectionList legacy =
            LegacyNmsFuse(DetectionListSpan(frame_out[f]), &tiles[f], fopts);
        nms->FuseInto(DetectionListSpan(frame_out[f]), &tiles[f], &soas[f],
                        &fused);
        r.identical = r.identical && SameDetections(legacy, fused);
      }
      Stopwatch legacy_watch;
      for (size_t rep = 0; rep < kernel_reps; ++rep) {
        for (size_t f = 0; f < kernel_frames; ++f) {
          const DetectionList out =
              LegacyNmsFuse(DetectionListSpan(frame_out[f]), &tiles[f], fopts);
          sink += static_cast<double>(out.size());
        }
      }
      const double legacy_s = legacy_watch.ElapsedSeconds();
      Stopwatch new_watch;
      for (size_t rep = 0; rep < kernel_reps; ++rep) {
        for (size_t f = 0; f < kernel_frames; ++f) {
          nms->FuseInto(DetectionListSpan(frame_out[f]), &tiles[f], &soas[f],
                        &fused);
          sink += static_cast<double>(fused.size());
        }
      }
      const double new_s = new_watch.ElapsedSeconds();
      const double ops = static_cast<double>(kernel_reps * kernel_frames);
      r.legacy_per_sec = ops / legacy_s;
      r.new_per_sec = ops / new_s;
      kernels.push_back(r);
    }

    {
      KernelResult r;
      r.name = "wbf_fuse";
      r.identical = true;
      for (size_t f = 0; f < kernel_frames; ++f) {
        const DetectionList legacy =
            LegacyWbfFuse(DetectionListSpan(frame_out[f]), fopts);
        wbf->FuseInto(DetectionListSpan(frame_out[f]), nullptr, &soas[f],
                        &fused);
        r.identical = r.identical && SameDetections(legacy, fused);
      }
      Stopwatch legacy_watch;
      for (size_t rep = 0; rep < kernel_reps; ++rep) {
        for (size_t f = 0; f < kernel_frames; ++f) {
          const DetectionList out =
              LegacyWbfFuse(DetectionListSpan(frame_out[f]), fopts);
          sink += static_cast<double>(out.size());
        }
      }
      const double legacy_s = legacy_watch.ElapsedSeconds();
      Stopwatch new_watch;
      for (size_t rep = 0; rep < kernel_reps; ++rep) {
        for (size_t f = 0; f < kernel_frames; ++f) {
          wbf->FuseInto(DetectionListSpan(frame_out[f]), nullptr, &soas[f],
                        &fused);
          sink += static_cast<double>(fused.size());
        }
      }
      const double new_s = new_watch.ElapsedSeconds();
      const double ops = static_cast<double>(kernel_reps * kernel_frames);
      r.legacy_per_sec = ops / legacy_s;
      r.new_per_sec = ops / new_s;
      kernels.push_back(r);
    }
    if (sink < -1.0) std::printf("unreachable\n");  // keep the loops live
  }

  std::printf("\nKernel microbenches, m=6, %zu frames x %zu reps,"
              " %.1f boxes/frame (no detector simulation):\n",
              kernel_frames, kernel_reps, kernel_boxes_per_frame);
  TablePrinter kernel_table(
      {"kernel", "legacy ops/s", "new ops/s", "speedup", "identical"});
  for (const auto& k : kernels) {
    kernel_table.AddRow({k.name, Fmt(k.legacy_per_sec, 1),
                         Fmt(k.new_per_sec, 1),
                         Fmt(k.new_per_sec / k.legacy_per_sec, 2) + "x",
                         k.identical ? "yes" : "NO"});
  }
  kernel_table.Print(std::cout);
  std::printf(
      "\n'legacy' are bench-local replicas of the pre-optimization\n"
      "kernels (pointer-map tile sweep; map-pooling copy-heavy fusion);\n"
      "'identical' checks the new kernels reproduce them bit for bit.\n"
      "iou_tile_build times the full per-frame store construction, which\n"
      "deliberately does MORE work than the legacy tile (it also builds\n"
      "the presorted class pools the fuse kernels consume) — it is paid\n"
      "once per frame and amortized over up to 2^m - 1 mask fusions,\n"
      "where the per-mask kernels above win it back many times over.\n");

  FILE* json = std::fopen("BENCH_matrix_build.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_matrix_build.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"matrix_build\",\n  \"workers\": %d,\n"
               "  \"results\": [\n", hw_workers);
  for (size_t i = 0; i < results.size(); ++i) {
    const PoolSizeResult& r = results[i];
    std::fprintf(
        json,
        "    {\"m\": %d, \"frames\": %zu, \"masks\": %u,\n"
        "     \"legacy_frames_per_sec\": %.2f,\n"
        "     \"serial_frames_per_sec\": %.2f,\n"
        "     \"parallel_frames_per_sec\": %.2f,\n"
        "     \"serial_speedup_vs_legacy\": %.3f,\n"
        "     \"parallel_speedup_vs_serial\": %.3f,\n"
        "     \"parallel_is_serial_alias\": %s,\n"
        "     \"bit_identical\": %s}%s\n",
        r.m, r.frames, r.masks, r.legacy_fps, r.serial_fps, r.parallel_fps,
        r.serial_fps / r.legacy_fps, r.parallel_fps / r.serial_fps,
        r.parallel_is_serial_alias ? "true" : "false",
        r.identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"strategy_runs\": [\n");
  for (size_t i = 0; i < strategy_runs.size(); ++i) {
    const StrategyRunResult& sr = strategy_runs[i];
    std::fprintf(
        json,
        "    {\"m\": %d, \"strategy\": \"%s\", \"frames\": %zu,\n"
        "     \"eager_frames_per_sec\": %.2f,\n"
        "     \"lazy_frames_per_sec\": %.2f,\n"
        "     \"lazy_speedup_vs_eager\": %.3f,\n"
        "     \"cells_materialized\": %llu,\n"
        "     \"lattice_cells\": %llu,\n"
        "     \"bit_identical\": %s}%s\n",
        sr.m, sr.strategy.c_str(), sr.frames, sr.eager_fps, sr.lazy_fps,
        sr.lazy_fps / sr.eager_fps,
        static_cast<unsigned long long>(sr.cells_materialized),
        static_cast<unsigned long long>(sr.lattice_cells),
        sr.identical ? "true" : "false",
        i + 1 < strategy_runs.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"kernel_microbench\": {\n"
               "    \"m\": 6, \"frames\": %zu, \"reps\": %zu,\n"
               "    \"avg_boxes_per_frame\": %.2f,\n"
               "    \"kernels\": [\n",
               kernel_frames, kernel_reps, kernel_boxes_per_frame);
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelResult& k = kernels[i];
    std::fprintf(json,
                 "      {\"name\": \"%s\",\n"
                 "       \"legacy_ops_per_sec\": %.2f,\n"
                 "       \"new_ops_per_sec\": %.2f,\n"
                 "       \"speedup\": %.3f,\n"
                 "       \"bit_identical\": %s}%s\n",
                 k.name.c_str(), k.legacy_per_sec, k.new_per_sec,
                 k.new_per_sec / k.legacy_per_sec,
                 k.identical ? "true" : "false",
                 i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(json, "    ]\n  }\n}\n");
  std::fclose(json);
  std::printf("Wrote BENCH_matrix_build.json\n");

  bool ok = true;
  for (const auto& r : results) ok = ok && r.identical;
  for (const auto& sr : strategy_runs) ok = ok && sr.identical;
  for (const auto& k : kernels) ok = ok && k.identical;
  return ok ? 0 : 1;
}
