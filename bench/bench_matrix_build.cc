// Matrix-build and strategy-run throughput at m ∈ {4, 6, 8, 10}.
//
// Section 1 — construction pipelines: "legacy" (the pre-optimization inner
// loop: per-mask deep copies of the model outputs and a per-call
// ground-truth rescan), "serial" (the allocation-lean path, one worker)
// and "parallel" (the allocation-lean path on the shared thread pool).
// Verifies the serial and parallel matrices are bit-identical.
//
// Section 2 — end-to-end strategy runs, eager vs lazy: for MES (online,
// touches only its selections' subset lattices) and OPT (oracle,
// full-lattice by nature), time BuildFrameMatrix + RunStrategy against
// LazyFrameEvaluator::Create + RunStrategy, verify the runs are
// bit-identical, and report how many of the |V|·(2^m − 1) cells the lazy
// run actually materialized.
//
// Emits BENCH_matrix_build.json so later PRs can track the trajectory.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/frame_matrix.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "detection/ap.h"
#include "sim/dataset.h"

using namespace vqe;
using namespace vqe::bench;

namespace {

// The pre-optimization build loop, reproduced through public APIs: run the
// detectors per frame, then per mask deep-copy the participating model
// outputs, fuse, and evaluate both APs against raw ground-truth lists
// (re-deriving the per-class partition on every call). Timed end to end,
// exactly like BuildFrameMatrix, so the throughput ratio is like-for-like.
double LegacyBuildSeconds(const Video& video, const DetectorPool& pool,
                          uint64_t seed, const MatrixOptions& options) {
  const int m = static_cast<int>(pool.detectors.size());
  const uint32_t num_masks = NumEnsembles(m);
  auto fusion =
      std::move(CreateEnsembleMethod(options.fusion, options.fusion_options))
          .value();

  Stopwatch watch;
  double checksum = 0.0;
  for (const VideoFrame& frame : video.frames) {
    std::vector<DetectionList> model_out(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      model_out[static_cast<size_t>(i)] =
          pool.detectors[static_cast<size_t>(i)]->Detect(frame, seed);
      checksum += pool.detectors[static_cast<size_t>(i)]->InferenceCostMs(
          frame, seed);
    }
    const DetectionList ref_out = pool.reference->Detect(frame, seed);
    checksum += pool.reference->InferenceCostMs(frame, seed);
    const GroundTruthList ref_gt =
        DetectionsAsGroundTruth(ref_out, options.ref_confidence_threshold);

    for (EnsembleId mask = 1; mask <= num_masks; ++mask) {
      std::vector<DetectionList> inputs;
      for (int i = 0; i < m; ++i) {
        if (!ContainsModel(mask, i)) continue;
        inputs.push_back(model_out[static_cast<size_t>(i)]);
      }
      const DetectionList fused = fusion->Fuse(inputs);
      checksum += FrameMeanAp(fused, ref_gt, options.ap);
      checksum += FrameMeanAp(fused, frame.objects, options.ap);
    }
  }
  const double total = watch.ElapsedSeconds();
  if (checksum < -1.0) std::printf("unreachable\n");  // keep the loop live
  return total;
}

bool MatricesIdentical(const FrameMatrix& a, const FrameMatrix& b) {
  if (a.size() != b.size() || a.num_models != b.num_models) return false;
  for (size_t t = 0; t < a.size(); ++t) {
    const FrameEvaluation& fa = a.frames[t];
    const FrameEvaluation& fb = b.frames[t];
    if (fa.ref_cost_ms != fb.ref_cost_ms ||
        fa.max_cost_ms != fb.max_cost_ms ||
        fa.best_true_candidates != fb.best_true_candidates ||
        fa.model_cost_ms != fb.model_cost_ms || fa.est_ap != fb.est_ap ||
        fa.true_ap != fb.true_ap || fa.cost_ms != fb.cost_ms ||
        fa.fusion_overhead_ms != fb.fusion_overhead_ms) {
      return false;
    }
  }
  return true;
}

struct PoolSizeResult {
  int m = 0;
  size_t frames = 0;
  uint32_t masks = 0;
  double legacy_fps = 0.0;
  double serial_fps = 0.0;
  double parallel_fps = 0.0;
  bool identical = false;
  /// True when the parallel row reuses the serial measurement because the
  /// shared pool has a single worker (the "parallel" configuration then
  /// resolves to the identical serial code path; timing it separately
  /// would only measure noise).
  bool parallel_is_serial_alias = false;
};

struct StrategyRunResult {
  int m = 0;
  std::string strategy;
  size_t frames = 0;
  double eager_fps = 0.0;
  double lazy_fps = 0.0;
  uint64_t lattice_cells = 0;      // frames * (2^m - 1)
  uint64_t cells_materialized = 0; // what the lazy run actually fused
  bool identical = false;
};

bool SameRun(const RunResult& a, const RunResult& b) {
  return a.s_sum == b.s_sum && a.avg_true_ap == b.avg_true_ap &&
         a.avg_norm_cost == b.avg_norm_cost &&
         a.frames_processed == b.frames_processed &&
         a.charged_cost_ms == b.charged_cost_ms &&
         a.selection_counts == b.selection_counts;
}

}  // namespace

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Frame-matrix construction throughput",
              "pipeline optimization (no paper figure)", settings);

  // Ten distinct structure@context detectors; pools take the first m.
  const std::vector<std::string> names = {
      "yolov7@clear",      "yolov7-tiny@clear",  "yolov7-tiny@night",
      "yolov7-tiny@rainy", "yolov7-micro@clear", "yolov7@night",
      "faster-rcnn@clear", "yolov7-micro@rainy", "faster-rcnn@night",
      "yolov7@rainy"};

  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc");
  const int hw_workers = SharedThreadPool().num_threads() + 1;
  std::printf("Shared pool: %d worker thread(s)\n\n", hw_workers);

  TablePrinter table({"m", "frames", "masks", "legacy f/s", "serial f/s",
                      "parallel f/s", "serial gain", "parallel gain",
                      "identical"});
  std::vector<PoolSizeResult> results;
  std::vector<StrategyRunResult> strategy_runs;

  for (const int m : {4, 6, 8, 10}) {
    std::vector<DetectorProfile> profiles;
    for (int i = 0; i < m; ++i) {
      profiles.push_back(
          std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
    }
    auto pool = std::move(BuildPool(profiles)).value();

    // Halve the frame budget per extra pool bit: the mask loop doubles.
    const double base = settings.target_frames / 10.0;
    const double target = std::max(40.0, base * 16.0 / (1 << (m - 4)));
    SampleOptions sample;
    sample.scene_scale = ScaleFor(*spec, target);
    sample.seed = 29;
    const Video video = std::move(SampleVideo(*spec, sample)).value();

    MatrixOptions options;
    const uint64_t seed = 29;

    PoolSizeResult r;
    r.m = m;
    r.frames = video.size();
    r.masks = NumEnsembles(m);

    const double legacy_s = LegacyBuildSeconds(video, pool, seed, options);
    r.legacy_fps = static_cast<double>(video.size()) / legacy_s;

    options.parallelism = 1;
    Stopwatch serial_watch;
    const auto serial = BuildFrameMatrix(video, pool, seed, options);
    const double serial_s = serial_watch.ElapsedSeconds();
    r.serial_fps = static_cast<double>(video.size()) / serial_s;

    options.parallelism = 0;
    if (hw_workers <= 1) {
      // With one worker the "parallel" configuration resolves to the
      // identical serial code path (ResolveWorkers returns 1): report the
      // serial measurement instead of re-timing the same code and calling
      // its noise a speedup.
      r.parallel_fps = r.serial_fps;
      r.parallel_is_serial_alias = true;
      r.identical = serial.ok();
    } else {
      Stopwatch parallel_watch;
      const auto parallel = BuildFrameMatrix(video, pool, seed, options);
      const double parallel_s = parallel_watch.ElapsedSeconds();
      r.parallel_fps = static_cast<double>(video.size()) / parallel_s;
      r.identical = serial.ok() && parallel.ok() &&
                    MatricesIdentical(*serial, *parallel);
    }
    results.push_back(r);

    table.AddRow({std::to_string(m), std::to_string(r.frames),
                  std::to_string(r.masks), Fmt(r.legacy_fps, 1),
                  Fmt(r.serial_fps, 1),
                  Fmt(r.parallel_fps, 1) +
                      (r.parallel_is_serial_alias ? "*" : ""),
                  Fmt(r.serial_fps / r.legacy_fps, 2) + "x",
                  Fmt(r.parallel_fps / r.serial_fps, 2) + "x",
                  r.identical ? "yes" : "NO"});

    // ---- Section 2: eager vs lazy strategy runs on the same video ----
    EngineOptions engine;
    engine.strategy_seed = 31;
    engine.compute_regret = false;  // regret scans the full lattice

    struct StrategyCase {
      const char* label;
      std::function<std::unique_ptr<SelectionStrategy>()> make;
    };
    const std::vector<StrategyCase> cases = {
        {"MES", [] { return std::make_unique<MesStrategy>(MesOptions{}); }},
        {"OPT", [] { return std::make_unique<OptStrategy>(); }},
    };
    for (const auto& c : cases) {
      StrategyRunResult sr;
      sr.m = m;
      sr.strategy = c.label;
      sr.frames = video.size();
      sr.lattice_cells =
          static_cast<uint64_t>(video.size()) * NumEnsembles(m);

      auto eager_strategy = c.make();
      Stopwatch eager_watch;
      const auto eager_matrix = BuildFrameMatrix(video, pool, seed, options);
      const auto eager_run =
          RunStrategy(*eager_matrix, eager_strategy.get(), engine);
      const double eager_s = eager_watch.ElapsedSeconds();
      sr.eager_fps = static_cast<double>(video.size()) / eager_s;

      auto lazy_strategy = c.make();
      Stopwatch lazy_watch;
      auto lazy = std::move(LazyFrameEvaluator::Create(video, pool, seed,
                                                       options))
                      .value();
      const auto lazy_run = RunStrategy(*lazy, lazy_strategy.get(), engine);
      const double lazy_s = lazy_watch.ElapsedSeconds();
      sr.lazy_fps = static_cast<double>(video.size()) / lazy_s;
      sr.cells_materialized = lazy->masks_materialized();
      sr.identical = eager_run.ok() && lazy_run.ok() &&
                     SameRun(*eager_run, *lazy_run);
      strategy_runs.push_back(sr);
    }
  }
  table.Print(std::cout);
  std::printf(
      "\n'serial gain' isolates the copy-free fusion inputs and per-frame\n"
      "ground-truth index (all timings include detector simulation);\n"
      "'parallel gain' adds frame-level workers on top.\n");
  if (hw_workers <= 1) {
    std::printf(
        "* single-worker pool: the parallel configuration runs the serial\n"
        "  code path, so its row reports the serial measurement.\n");
  }

  std::printf("\nStrategy runs, eager (build matrix + run) vs lazy"
              " (materialize on demand):\n");
  TablePrinter run_table({"m", "strategy", "frames", "eager f/s", "lazy f/s",
                          "lazy gain", "cells fused", "lattice", "identical"});
  for (const auto& sr : strategy_runs) {
    run_table.AddRow(
        {std::to_string(sr.m), sr.strategy, std::to_string(sr.frames),
         Fmt(sr.eager_fps, 1), Fmt(sr.lazy_fps, 1),
         Fmt(sr.lazy_fps / sr.eager_fps, 2) + "x",
         std::to_string(sr.cells_materialized),
         std::to_string(sr.lattice_cells), sr.identical ? "yes" : "NO"});
  }
  run_table.Print(std::cout);
  std::printf(
      "\nMES only touches its selections' subset lattices, so the lazy\n"
      "source fuses a fraction of the cells; OPT's oracle argmax scans\n"
      "every mask, so lazy buys it nothing (needs_full_lattice keeps such\n"
      "strategies on the eager backend in experiments).\n");

  FILE* json = std::fopen("BENCH_matrix_build.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_matrix_build.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"matrix_build\",\n  \"workers\": %d,\n"
               "  \"results\": [\n", hw_workers);
  for (size_t i = 0; i < results.size(); ++i) {
    const PoolSizeResult& r = results[i];
    std::fprintf(
        json,
        "    {\"m\": %d, \"frames\": %zu, \"masks\": %u,\n"
        "     \"legacy_frames_per_sec\": %.2f,\n"
        "     \"serial_frames_per_sec\": %.2f,\n"
        "     \"parallel_frames_per_sec\": %.2f,\n"
        "     \"serial_speedup_vs_legacy\": %.3f,\n"
        "     \"parallel_speedup_vs_serial\": %.3f,\n"
        "     \"parallel_is_serial_alias\": %s,\n"
        "     \"bit_identical\": %s}%s\n",
        r.m, r.frames, r.masks, r.legacy_fps, r.serial_fps, r.parallel_fps,
        r.serial_fps / r.legacy_fps, r.parallel_fps / r.serial_fps,
        r.parallel_is_serial_alias ? "true" : "false",
        r.identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"strategy_runs\": [\n");
  for (size_t i = 0; i < strategy_runs.size(); ++i) {
    const StrategyRunResult& sr = strategy_runs[i];
    std::fprintf(
        json,
        "    {\"m\": %d, \"strategy\": \"%s\", \"frames\": %zu,\n"
        "     \"eager_frames_per_sec\": %.2f,\n"
        "     \"lazy_frames_per_sec\": %.2f,\n"
        "     \"lazy_speedup_vs_eager\": %.3f,\n"
        "     \"cells_materialized\": %llu,\n"
        "     \"lattice_cells\": %llu,\n"
        "     \"bit_identical\": %s}%s\n",
        sr.m, sr.strategy.c_str(), sr.frames, sr.eager_fps, sr.lazy_fps,
        sr.lazy_fps / sr.eager_fps,
        static_cast<unsigned long long>(sr.cells_materialized),
        static_cast<unsigned long long>(sr.lattice_cells),
        sr.identical ? "true" : "false",
        i + 1 < strategy_runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("Wrote BENCH_matrix_build.json\n");

  bool ok = true;
  for (const auto& r : results) ok = ok && r.identical;
  for (const auto& sr : strategy_runs) ok = ok && sr.identical;
  return ok ? 0 : 1;
}
