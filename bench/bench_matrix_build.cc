// Matrix-build throughput: frames/sec of BuildFrameMatrix at m ∈ {4, 6, 8}
// for three pipelines — "legacy" (the pre-optimization inner loop: per-mask
// deep copies of the model outputs and a per-call ground-truth rescan),
// "serial" (the allocation-lean path, one worker) and "parallel" (the
// allocation-lean path on the shared thread pool). Verifies the serial and
// parallel matrices are bit-identical and emits BENCH_matrix_build.json so
// later PRs can track the perf trajectory.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/frame_matrix.h"
#include "detection/ap.h"
#include "sim/dataset.h"

using namespace vqe;
using namespace vqe::bench;

namespace {

// The pre-optimization build loop, reproduced through public APIs: run the
// detectors per frame, then per mask deep-copy the participating model
// outputs, fuse, and evaluate both APs against raw ground-truth lists
// (re-deriving the per-class partition on every call). Timed end to end,
// exactly like BuildFrameMatrix, so the throughput ratio is like-for-like.
double LegacyBuildSeconds(const Video& video, const DetectorPool& pool,
                          uint64_t seed, const MatrixOptions& options) {
  const int m = static_cast<int>(pool.detectors.size());
  const uint32_t num_masks = NumEnsembles(m);
  auto fusion =
      std::move(CreateEnsembleMethod(options.fusion, options.fusion_options))
          .value();

  Stopwatch watch;
  double checksum = 0.0;
  for (const VideoFrame& frame : video.frames) {
    std::vector<DetectionList> model_out(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      model_out[static_cast<size_t>(i)] =
          pool.detectors[static_cast<size_t>(i)]->Detect(frame, seed);
      checksum += pool.detectors[static_cast<size_t>(i)]->InferenceCostMs(
          frame, seed);
    }
    const DetectionList ref_out = pool.reference->Detect(frame, seed);
    checksum += pool.reference->InferenceCostMs(frame, seed);
    const GroundTruthList ref_gt =
        DetectionsAsGroundTruth(ref_out, options.ref_confidence_threshold);

    for (EnsembleId mask = 1; mask <= num_masks; ++mask) {
      std::vector<DetectionList> inputs;
      for (int i = 0; i < m; ++i) {
        if (!ContainsModel(mask, i)) continue;
        inputs.push_back(model_out[static_cast<size_t>(i)]);
      }
      const DetectionList fused = fusion->Fuse(inputs);
      checksum += FrameMeanAp(fused, ref_gt, options.ap);
      checksum += FrameMeanAp(fused, frame.objects, options.ap);
    }
  }
  const double total = watch.ElapsedSeconds();
  if (checksum < -1.0) std::printf("unreachable\n");  // keep the loop live
  return total;
}

bool MatricesIdentical(const FrameMatrix& a, const FrameMatrix& b) {
  if (a.size() != b.size() || a.num_models != b.num_models) return false;
  for (size_t t = 0; t < a.size(); ++t) {
    const FrameEvaluation& fa = a.frames[t];
    const FrameEvaluation& fb = b.frames[t];
    if (fa.ref_cost_ms != fb.ref_cost_ms ||
        fa.max_cost_ms != fb.max_cost_ms ||
        fa.best_true_candidates != fb.best_true_candidates ||
        fa.model_cost_ms != fb.model_cost_ms || fa.est_ap != fb.est_ap ||
        fa.true_ap != fb.true_ap || fa.cost_ms != fb.cost_ms ||
        fa.fusion_overhead_ms != fb.fusion_overhead_ms) {
      return false;
    }
  }
  return true;
}

struct PoolSizeResult {
  int m = 0;
  size_t frames = 0;
  uint32_t masks = 0;
  double legacy_fps = 0.0;
  double serial_fps = 0.0;
  double parallel_fps = 0.0;
  bool identical = false;
};

}  // namespace

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Frame-matrix construction throughput",
              "pipeline optimization (no paper figure)", settings);

  // Eight distinct structure@context detectors; pools take the first m.
  const std::vector<std::string> names = {
      "yolov7@clear",      "yolov7-tiny@clear", "yolov7-tiny@night",
      "yolov7-tiny@rainy", "yolov7-micro@clear", "yolov7@night",
      "faster-rcnn@clear", "yolov7-micro@rainy"};

  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc");
  const int hw_workers = SharedThreadPool().num_threads() + 1;
  std::printf("Shared pool: %d worker thread(s)\n\n", hw_workers);

  TablePrinter table({"m", "frames", "masks", "legacy f/s", "serial f/s",
                      "parallel f/s", "serial gain", "parallel gain",
                      "identical"});
  std::vector<PoolSizeResult> results;

  for (const int m : {4, 6, 8}) {
    std::vector<DetectorProfile> profiles;
    for (int i = 0; i < m; ++i) {
      profiles.push_back(
          std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
    }
    auto pool = std::move(BuildPool(profiles)).value();

    // Halve the frame budget per extra pool bit: the mask loop doubles.
    const double base = settings.target_frames / 10.0;
    const double target = std::max(40.0, base * 16.0 / (1 << (m - 4)));
    SampleOptions sample;
    sample.scene_scale = ScaleFor(*spec, target);
    sample.seed = 29;
    const Video video = std::move(SampleVideo(*spec, sample)).value();

    MatrixOptions options;
    const uint64_t seed = 29;

    PoolSizeResult r;
    r.m = m;
    r.frames = video.size();
    r.masks = NumEnsembles(m);

    const double legacy_s = LegacyBuildSeconds(video, pool, seed, options);
    r.legacy_fps = static_cast<double>(video.size()) / legacy_s;

    options.parallelism = 1;
    Stopwatch serial_watch;
    const auto serial = BuildFrameMatrix(video, pool, seed, options);
    const double serial_s = serial_watch.ElapsedSeconds();
    r.serial_fps = static_cast<double>(video.size()) / serial_s;

    options.parallelism = 0;
    Stopwatch parallel_watch;
    const auto parallel = BuildFrameMatrix(video, pool, seed, options);
    const double parallel_s = parallel_watch.ElapsedSeconds();
    r.parallel_fps = static_cast<double>(video.size()) / parallel_s;

    r.identical = serial.ok() && parallel.ok() &&
                  MatricesIdentical(*serial, *parallel);
    results.push_back(r);

    table.AddRow({std::to_string(m), std::to_string(r.frames),
                  std::to_string(r.masks), Fmt(r.legacy_fps, 1),
                  Fmt(r.serial_fps, 1), Fmt(r.parallel_fps, 1),
                  Fmt(r.serial_fps / r.legacy_fps, 2) + "x",
                  Fmt(r.parallel_fps / r.serial_fps, 2) + "x",
                  r.identical ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::printf(
      "\n'serial gain' isolates the copy-free fusion inputs and per-frame\n"
      "ground-truth index (all timings include detector simulation);\n"
      "'parallel gain' adds frame-level workers on top.\n");

  FILE* json = std::fopen("BENCH_matrix_build.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_matrix_build.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"matrix_build\",\n  \"workers\": %d,\n"
               "  \"results\": [\n", hw_workers);
  for (size_t i = 0; i < results.size(); ++i) {
    const PoolSizeResult& r = results[i];
    std::fprintf(
        json,
        "    {\"m\": %d, \"frames\": %zu, \"masks\": %u,\n"
        "     \"legacy_frames_per_sec\": %.2f,\n"
        "     \"serial_frames_per_sec\": %.2f,\n"
        "     \"parallel_frames_per_sec\": %.2f,\n"
        "     \"serial_speedup_vs_legacy\": %.3f,\n"
        "     \"parallel_speedup_vs_serial\": %.3f,\n"
        "     \"bit_identical\": %s}%s\n",
        r.m, r.frames, r.masks, r.legacy_fps, r.serial_fps, r.parallel_fps,
        r.serial_fps / r.legacy_fps, r.parallel_fps / r.serial_fps,
        r.identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("Wrote BENCH_matrix_build.json\n");

  bool ok = true;
  for (const auto& r : results) ok = ok && r.identical;
  return ok ? 0 : 1;
}
