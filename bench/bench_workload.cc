// SLO-aware overload control under a trace-driven traffic and fault
// storm: the degradation ladder's end-to-end exercise.
//
// A small text workload trace (parsed by the real parser — this bench is
// also the parser's round-trip check) scripts bursty heavy-tailed session
// arrivals, a diurnal load curve, gradual concept drift, and an error-
// fault storm over a model subset. The bench then runs the plan three
// ways:
//
//   1. Overload control ON, serial stepping (parallelism 1).
//   2. Overload control ON, all cores.
//      -> the degradation ledgers and per-class deterministic stats of
//         the two runs must be IDENTICAL (the ladder senses only the
//         simulated clock, so worker count cannot move it), the ladder
//         must actually step (peak level >= 1) and fully recover (final
//         level 0), the interactive class must meet its p99 SLO and shed
//         budget while level-3 shedding lands on batch.
//   3. Overload control OFF.
//      -> every completing stream must be bit-identical to its solo
//         RunStrategy baseline: the controller's OFF state is free.
//
// A fourth section replays a multi-day diurnal trace (four day/night
// cycles, gradual drift ramp, no storms — see
// bench/traces/diurnal_multiday.vqework) to check arrival shaping, the
// drift ramp, and long-horizon scheduler determinism.
//
// Emits BENCH_workload.json (per-class percentiles, shed rates, the
// transition ledger, the diurnal summary, and the verdicts); the
// verdicts gate the exit code. `--trace-out <path>` instruments the
// serial overload run and writes validated Chrome trace JSON.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "models/model_zoo.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "serve/overload.h"
#include "serve/scheduler.h"
#include "workload/trace.h"
#include "workload/workload.h"

using namespace vqe;
using namespace vqe::bench;

namespace {

// The scripted workload. Interactive carries a real p99 SLO and a zero
// shed budget; batch tolerates unbounded shedding. The storm turns two
// of the five models into hard-error emitters for a third of the run,
// while the arrival burst (bounded pareto, diurnal peak at round 10)
// piles up the queue — queue pressure is what walks the ladder down, and
// the post-peak taper is what lets it climb back while sessions are
// still live (recovery only ticks on active rounds).
const char kTrace[] =
    "VQEWORK 1\n"
    "seed 1234\n"
    "rounds 40\n"
    "dataset nusc-night\n"
    "scale 0.05\n"
    "models 5\n"
    "arrivals rate 1.0 alpha 1.3 cap 5\n"
    "diurnal period 40 amplitude 0.6\n"
    "drift lambda0 0.05 lambda1 0.3\n"
    "class interactive share 0.45 frames 24 skip bandit 3\n"
    "class standard share 0.3 frames 32 skip gated 2\n"
    "class batch share 0.25 frames 48 skip off 0\n"
    "slo interactive p99 120 shed 0.0\n"
    "slo batch p99 0 shed 1.0\n"
    "storm rounds 8 20 models 3 kind error rate 1.0\n"
    "storm rounds 10 16 models 16 kind spike rate 0.3\n"
    "end\n";

// Multi-day diurnal workload: four day/night cycles with a gradual drift
// ramp and no storms. Mirrors bench/traces/diurnal_multiday.vqework
// (which `--trace <path>` loads instead, round-tripping the file through
// the real parser).
const char kDiurnalTrace[] =
    "VQEWORK 1\n"
    "seed 4242\n"
    "rounds 96\n"
    "dataset nusc-night\n"
    "scale 0.05\n"
    "models 5\n"
    "arrivals rate 0.5 alpha 1.3 cap 4\n"
    "diurnal period 24 amplitude 0.7\n"
    "drift lambda0 0.02 lambda1 0.35\n"
    "class interactive share 0.4 frames 24 skip bandit 3\n"
    "class standard share 0.35 frames 32 skip gated 2\n"
    "class batch share 0.25 frames 48 skip off 0\n"
    "slo interactive p99 120 shed 0.0\n"
    "slo batch p99 0 shed 1.0\n"
    "end\n";

bool SameRun(const RunResult& a, const RunResult& b) {
  return a.s_sum == b.s_sum && a.avg_true_ap == b.avg_true_ap &&
         a.frames_processed == b.frames_processed &&
         a.charged_cost_ms == b.charged_cost_ms &&
         a.selection_counts == b.selection_counts &&
         a.fallback_frames == b.fallback_frames &&
         a.failed_frames == b.failed_frames &&
         a.skip.skipped_frames == b.skip.skipped_frames &&
         a.skip.detect_frames == b.skip.detect_frames;
}

bool SamePlan(const WorkloadPlan& a, const WorkloadPlan& b) {
  if (a.sessions.size() != b.sessions.size()) return false;
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    const SessionPlan& x = a.sessions[i];
    const SessionPlan& y = b.sessions[i];
    if (x.arrival_round != y.arrival_round || x.name != y.name ||
        x.priority != y.priority || x.frames != y.frames ||
        x.trial_seed != y.trial_seed || x.strategy_seed != y.strategy_seed ||
        x.video_seed != y.video_seed || x.lambda0 != y.lambda0 ||
        x.lambda1 != y.lambda1 || x.scripts.size() != y.scripts.size()) {
      return false;
    }
  }
  return true;
}

bool SameLedger(const std::vector<DegradationTransition>& a,
                const std::vector<DegradationTransition>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Per-class deterministic stats agree between two runs.
bool SameClassStats(const ServeStats& a, const ServeStats& b) {
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const auto& x = a.classes[c];
    const auto& y = b.classes[c];
    if (x.submitted != y.submitted || x.admitted != y.admitted ||
        x.shed_submissions != y.shed_submissions || x.frames != y.frames ||
        x.sim_p50_ms != y.sim_p50_ms || x.sim_p99_ms != y.sim_p99_ms ||
        x.sim_p999_ms != y.sim_p999_ms) {
      return false;
    }
  }
  return true;
}

ServeOptions BaseServe() {
  ServeOptions o;
  o.max_sessions = 10;
  o.queue_depth = 128;  // deep enough that interactive is never queue-shed
  o.quantum_ms = 60.0;
  o.max_frames_per_round = 8;
  o.record_frame_latency = true;
  o.overload.window = 128;
  o.overload.min_samples = 16;
  o.overload.queue_trigger = 5;
  o.overload.dwell_rounds = 2;
  o.overload.recover_rounds = 3;
  o.overload.skip_boost = 4;
  o.overload.shrink_mask = 0x3;  // keep the two cheapest heads
  return o;
}

void PrintClassTable(const ServeStats& stats) {
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const auto& cs = stats.classes[c];
    if (cs.submitted == 0 && cs.frames == 0) continue;
    std::cout << "  " << PriorityClassToString(static_cast<PriorityClass>(c))
              << ": submitted " << cs.submitted << ", admitted "
              << cs.admitted << ", shed " << cs.shed_submissions
              << " (rate " << Fmt(cs.shed_rate, 3) << "), frames "
              << cs.frames << ", sim p50/p99/p999 " << Fmt(cs.sim_p50_ms, 3)
              << "/" << Fmt(cs.sim_p99_ms, 3) << "/"
              << Fmt(cs.sim_p999_ms, 3) << " ms\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --trace <path>     load the multi-day diurnal trace from a file
  //                    instead of the inline copy (round-trips
  //                    bench/traces/diurnal_multiday.vqework through the
  //                    real parser).
  // --trace-out <path> enable observability on the serial overload run
  //                    and write its Chrome trace JSON there (validated
  //                    before the bench exits). The parallel run stays
  //                    uninstrumented, so the ladder-determinism verdict
  //                    doubles as an obs-enabled-vs-disabled identity
  //                    check.
  std::string diurnal_text = kDiurnalTrace;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      std::ifstream in(argv[++i]);
      if (!in) {
        std::cerr << "cannot read trace file " << argv[i] << "\n";
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      diurnal_text = buf.str();
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::cerr << "usage: bench_workload [--trace <path>] "
                   "[--trace-out <path>]\n";
      return 1;
    }
  }

  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("SLO-aware overload control (trace-driven)",
              "workload engine + degradation ladder", settings);

  Observability obs;

  // ---- Parse, round-trip, and expand the trace -------------------------
  auto trace_or = ParseWorkloadTrace(kTrace);
  if (!trace_or.ok()) {
    std::cerr << "trace parse failed: " << trace_or.status().ToString()
              << "\n";
    return 1;
  }
  const WorkloadTrace trace = std::move(trace_or).value();
  auto reparsed = ParseWorkloadTrace(FormatWorkloadTrace(trace));
  if (!reparsed.ok()) {
    std::cerr << "trace round-trip failed: " << reparsed.status().ToString()
              << "\n";
    return 1;
  }
  const WorkloadPlan plan = BuildWorkloadPlan(trace);
  const bool plan_deterministic =
      SamePlan(plan, BuildWorkloadPlan(trace)) &&
      SamePlan(plan, BuildWorkloadPlan(std::move(reparsed).value()));
  uint64_t stormy = 0;
  for (const auto& s : plan.sessions) stormy += s.stormy() ? 1 : 0;
  std::cout << "plan: " << plan.sessions.size() << " sessions over "
            << trace.rounds << " rounds (" << stormy << " storm-afflicted, "
            << plan.capped_arrivals << " capped), deterministic="
            << (plan_deterministic ? "yes" : "NO") << "\n\n";

  auto pool_or = BuildPoolForDataset(trace.dataset, trace.models);
  if (!pool_or.ok()) {
    std::cerr << "pool build failed: " << pool_or.status().ToString() << "\n";
    return 1;
  }
  const DetectorPool pool = std::move(pool_or).value();

  // ---- Overload control ON, two worker counts --------------------------
  WorkloadRunReport on[2];
  for (int i = 0; i < 2; ++i) {
    ServeOptions serve = MakeServeOptions(trace, BaseServe(), true);
    serve.parallelism = i == 0 ? 1 : 0;  // serial, then all cores
    if (i == 0 && !trace_out.empty()) serve.obs = obs.handle();
    auto report = RunWorkloadOnScheduler(plan, pool, serve);
    if (!report.ok()) {
      std::cerr << "overload run failed: " << report.status().ToString()
                << "\n";
      return 1;
    }
    on[i] = std::move(report).value();
  }
  const ServeStats& stats = on[0].serve.stats;

  std::cout << "overload-controlled run (serial): rounds " << stats.rounds
            << ", frames " << stats.frames << " (" << stats.skipped_frames
            << " skipped), submitted " << on[0].submitted << ", shed "
            << on[0].shed << "\n";
  PrintClassTable(stats);
  std::cout << "  ladder: peak level " << stats.peak_degradation_level
            << ", degraded rounds " << stats.degraded_rounds << ", final "
            << stats.degradation_level << ", transitions "
            << stats.degradations.size() << "\n";
  for (const DegradationTransition& t : stats.degradations) {
    std::cout << "    round " << t.round << ": " << t.from << " -> " << t.to
              << (t.queue_triggered
                      ? " (queue depth " + std::to_string(t.queue_depth) + ")"
                  : t.trigger_class >= 0
                      ? std::string(" (") +
                            PriorityClassToString(
                                static_cast<PriorityClass>(t.trigger_class)) +
                            " p99 " + Fmt(t.observed_p99_ms, 3) + " ms)"
                      : " (recovery)")
              << "\n";
  }

  const bool ladder_deterministic =
      SameLedger(stats.degradations, on[1].serve.stats.degradations) &&
      SameClassStats(stats, on[1].serve.stats);
  const bool ladder_stepped = stats.peak_degradation_level >= 1;
  const bool ladder_recovered = stats.degradation_level == 0;
  const auto& islo = trace.slo[PriorityClassIndex(PriorityClass::kInteractive)];
  const auto& icls = stats.classes[PriorityClassIndex(
      PriorityClass::kInteractive)];
  const auto& bcls = stats.classes[PriorityClassIndex(PriorityClass::kBatch)];
  const bool interactive_slo_met =
      (islo.p99_ms <= 0.0 || icls.sim_p99_ms <= islo.p99_ms) &&
      icls.shed_rate <= islo.shed_budget;
  // Level-3 shedding must land on batch, never on interactive.
  const bool batch_absorbed =
      icls.shed_submissions == 0 &&
      (stats.peak_degradation_level < 3 || bcls.shed_submissions > 0);

  std::cout << "\nladder deterministic across worker counts: "
            << (ladder_deterministic ? "PASS" : "FAIL") << "\n"
            << "ladder stepped and recovered: "
            << (ladder_stepped && ladder_recovered ? "PASS" : "FAIL") << "\n"
            << "interactive SLO met (p99 + shed budget): "
            << (interactive_slo_met ? "PASS" : "FAIL") << "\n"
            << "batch absorbed the shedding: "
            << (batch_absorbed ? "PASS" : "FAIL") << "\n";

  // ---- Overload control OFF: bit-identity to solo baselines ------------
  ServeOptions off_serve = MakeServeOptions(trace, BaseServe(), false);
  off_serve.parallelism = 0;
  auto off_or = RunWorkloadOnScheduler(plan, pool, off_serve);
  if (!off_or.ok()) {
    std::cerr << "baseline run failed: " << off_or.status().ToString()
              << "\n";
    return 1;
  }
  const WorkloadRunReport off = std::move(off_or).value();
  bool bit_identical = true;
  size_t compared = 0;
  for (const StreamReport& sr : off.serve.streams) {
    if (!sr.status.ok()) continue;  // shed or retired-on-error: no baseline
    const SessionPlan* sp = nullptr;
    for (const SessionPlan& s : plan.sessions) {
      if (s.name == sr.name) {
        sp = &s;
        break;
      }
    }
    if (sp == nullptr) {
      bit_identical = false;
      continue;
    }
    auto solo = RunWorkloadSessionSolo(plan, *sp, pool);
    if (!solo.ok() || !SameRun(std::move(solo).value(), sr.result)) {
      bit_identical = false;
      std::cout << "  MISMATCH: " << sr.name << "\n";
    }
    ++compared;
  }
  std::cout << "controller-off bit-identity to solo baselines ("
            << compared << " streams): " << (bit_identical ? "PASS" : "FAIL")
            << "\n";

  // ---- Multi-day diurnal sweep -----------------------------------------
  //
  // Four day/night cycles with a gradual drift ramp: checks that the
  // planner actually shapes arrivals (day half of each cycle outdraws the
  // night half), that the drift ramp lands in the plan monotonically, and
  // that the scheduler stays deterministic across worker counts on a
  // horizon four times longer than the storm trace.
  auto diurnal_or = ParseWorkloadTrace(diurnal_text);
  if (!diurnal_or.ok()) {
    std::cerr << "diurnal trace parse failed: "
              << diurnal_or.status().ToString() << "\n";
    return 1;
  }
  const WorkloadTrace diurnal = std::move(diurnal_or).value();
  const double cycles =
      static_cast<double>(diurnal.rounds) / diurnal.diurnal_period;
  const WorkloadPlan dplan = BuildWorkloadPlan(diurnal);
  const bool dplan_deterministic = SamePlan(dplan, BuildWorkloadPlan(diurnal));

  uint64_t day_arrivals = 0, night_arrivals = 0;
  for (const SessionPlan& s : dplan.sessions) {
    const double phase = std::fmod(static_cast<double>(s.arrival_round),
                                   diurnal.diurnal_period) /
                         diurnal.diurnal_period;
    (phase < 0.5 ? day_arrivals : night_arrivals) += 1;  // sin > 0 = day
  }
  const bool diurnal_shaped =
      cycles >= 3.0 && day_arrivals > night_arrivals;
  const bool drift_ramped =
      !dplan.sessions.empty() &&
      dplan.sessions.front().lambda0 < dplan.sessions.back().lambda1;

  WorkloadRunReport don[2];
  for (int i = 0; i < 2; ++i) {
    ServeOptions serve = MakeServeOptions(diurnal, BaseServe(), true);
    serve.parallelism = i == 0 ? 1 : 0;
    auto report = RunWorkloadOnScheduler(dplan, pool, serve);
    if (!report.ok()) {
      std::cerr << "diurnal run failed: " << report.status().ToString()
                << "\n";
      return 1;
    }
    don[i] = std::move(report).value();
  }
  const ServeStats& dstats = don[0].serve.stats;
  const bool diurnal_deterministic =
      dplan_deterministic &&
      SameLedger(dstats.degradations, don[1].serve.stats.degradations) &&
      SameClassStats(dstats, don[1].serve.stats);

  std::cout << "\nmulti-day diurnal sweep: " << dplan.sessions.size()
            << " sessions over " << diurnal.rounds << " rounds ("
            << Fmt(cycles, 1) << " cycles), day/night arrivals "
            << day_arrivals << "/" << night_arrivals << ", drift "
            << Fmt(diurnal.drift_lambda0, 2) << " -> "
            << Fmt(diurnal.drift_lambda1, 2) << "\n";
  PrintClassTable(dstats);
  std::cout << "  ladder: peak level " << dstats.peak_degradation_level
            << ", degraded rounds " << dstats.degraded_rounds << ", final "
            << dstats.degradation_level << "\n"
            << "diurnal shaping (>= 3 cycles, day > night): "
            << (diurnal_shaped ? "PASS" : "FAIL") << "\n"
            << "drift ramp present in plan: "
            << (drift_ramped ? "PASS" : "FAIL") << "\n"
            << "diurnal run deterministic across worker counts: "
            << (diurnal_deterministic ? "PASS" : "FAIL") << "\n";

  // ---- JSON ------------------------------------------------------------
  FILE* json = std::fopen("BENCH_workload.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_workload.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"workload\",\n  \"sessions\": %zu,\n"
               "  \"storm_sessions\": %llu,\n  \"rounds\": %llu,\n"
               "  \"frames\": %llu,\n  \"skipped_frames\": %llu,\n"
               "  \"submitted\": %llu,\n  \"shed\": %llu,\n"
               "  \"classes\": [\n",
               plan.sessions.size(), static_cast<unsigned long long>(stormy),
               static_cast<unsigned long long>(stats.rounds),
               static_cast<unsigned long long>(stats.frames),
               static_cast<unsigned long long>(stats.skipped_frames),
               static_cast<unsigned long long>(on[0].submitted),
               static_cast<unsigned long long>(on[0].shed));
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const auto& cs = stats.classes[c];
    std::fprintf(
        json,
        "    {\"class\": \"%s\", \"submitted\": %llu, \"admitted\": %llu,\n"
        "     \"shed\": %llu, \"shed_rate\": %.4f, \"frames\": %llu,\n"
        "     \"sim_p50_ms\": %.4f, \"sim_p99_ms\": %.4f,"
        " \"sim_p999_ms\": %.4f}%s\n",
        PriorityClassToString(static_cast<PriorityClass>(c)),
        static_cast<unsigned long long>(cs.submitted),
        static_cast<unsigned long long>(cs.admitted),
        static_cast<unsigned long long>(cs.shed_submissions), cs.shed_rate,
        static_cast<unsigned long long>(cs.frames), cs.sim_p50_ms,
        cs.sim_p99_ms, cs.sim_p999_ms,
        c + 1 < kNumPriorityClasses ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"ladder\": {\"peak_level\": %d,"
               " \"final_level\": %d,\n"
               "    \"degraded_rounds\": %llu, \"transitions\": [\n",
               stats.peak_degradation_level, stats.degradation_level,
               static_cast<unsigned long long>(stats.degraded_rounds));
  for (size_t i = 0; i < stats.degradations.size(); ++i) {
    const DegradationTransition& t = stats.degradations[i];
    std::fprintf(json,
                 "      {\"round\": %llu, \"from\": %d, \"to\": %d,"
                 " \"trigger_class\": %d,\n"
                 "       \"queue_triggered\": %s, \"observed_p99_ms\": %.4f,"
                 " \"queue_depth\": %d}%s\n",
                 static_cast<unsigned long long>(t.round), t.from, t.to,
                 t.trigger_class, t.queue_triggered ? "true" : "false",
                 t.observed_p99_ms, t.queue_depth,
                 i + 1 < stats.degradations.size() ? "," : "");
  }
  std::fprintf(
      json,
      "    ]},\n  \"diurnal\": {\n"
      "    \"sessions\": %zu, \"rounds\": %llu, \"cycles\": %.2f,\n"
      "    \"day_arrivals\": %llu, \"night_arrivals\": %llu,\n"
      "    \"drift_lambda0\": %.3f, \"drift_lambda1\": %.3f,\n"
      "    \"frames\": %llu, \"peak_level\": %d\n  },\n",
      dplan.sessions.size(), static_cast<unsigned long long>(diurnal.rounds),
      cycles, static_cast<unsigned long long>(day_arrivals),
      static_cast<unsigned long long>(night_arrivals),
      diurnal.drift_lambda0, diurnal.drift_lambda1,
      static_cast<unsigned long long>(dstats.frames),
      dstats.peak_degradation_level);
  std::fprintf(
      json,
      "  \"verdicts\": {\n"
      "    \"plan_deterministic\": %s,\n"
      "    \"ladder_deterministic\": %s,\n"
      "    \"ladder_stepped\": %s,\n    \"ladder_recovered\": %s,\n"
      "    \"interactive_slo_met\": %s,\n    \"batch_absorbed\": %s,\n"
      "    \"bit_identical_when_disabled\": %s,\n"
      "    \"diurnal_shaped\": %s,\n    \"diurnal_drift_ramped\": %s,\n"
      "    \"diurnal_deterministic\": %s\n  }\n}\n",
      plan_deterministic ? "true" : "false",
      ladder_deterministic ? "true" : "false",
      ladder_stepped ? "true" : "false", ladder_recovered ? "true" : "false",
      interactive_slo_met ? "true" : "false",
      batch_absorbed ? "true" : "false", bit_identical ? "true" : "false",
      diurnal_shaped ? "true" : "false", drift_ramped ? "true" : "false",
      diurnal_deterministic ? "true" : "false");
  std::fclose(json);
  std::cout << "wrote BENCH_workload.json\n";

  // ---- Chrome trace export (--trace-out) -------------------------------
  bool trace_valid = true;
  if (!trace_out.empty()) {
    Status ws = WriteChromeTraceFile(obs.trace(), trace_out);
    if (!ws.ok()) {
      std::cerr << "trace write failed: " << ws.ToString() << "\n";
      trace_valid = false;
    } else {
      std::ifstream in(trace_out);
      std::ostringstream buf;
      buf << in.rdbuf();
      Status vs = ValidateChromeTrace(buf.str());
      trace_valid = vs.ok();
      std::cout << "wrote " << trace_out << " ("
                << obs.trace().event_count() << " events, "
                << obs.trace().dropped_events() << " dropped), validator: "
                << (trace_valid ? "PASS" : vs.ToString()) << "\n";
    }
  }

  const bool pass = plan_deterministic && ladder_deterministic &&
                    ladder_stepped && ladder_recovered &&
                    interactive_slo_met && batch_absorbed && bit_identical &&
                    diurnal_shaped && drift_ramped && diurnal_deterministic &&
                    trace_valid;
  return pass ? 0 : 1;
}
