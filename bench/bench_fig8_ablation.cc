// Figure 8: ablation — EF vs MES-A (no subset updates) vs MES, sum of
// scores normalized by MES, across all evaluation datasets.

#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Ablation: subset updates (MES-A)", "Figure 8", settings);

  TablePrinter table({"Dataset", "EF / MES", "MES-A / MES", "MES"});
  for (const char* dataset :
       {"nusc", "nusc-clear", "nusc-night", "nusc-rainy", "bdd"}) {
    auto pool = std::move(BuildPoolForDataset(dataset, 5)).value();
    ExperimentConfig config = MakeConfig(dataset, settings);
    std::vector<StrategySpec> strategies{
        {"EF", [] { return std::make_unique<ExploreFirstStrategy>(2); }},
        {"MES-A",
         [] {
           MesOptions o;
           o.subset_updates = false;
           return std::make_unique<MesStrategy>(o);
         }},
        {"MES", [] { return std::make_unique<MesStrategy>(); }},
    };
    const auto result = RunExperiment(config, pool, strategies);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const double mes = result->Find("MES")->s_sum.mean;
    table.AddRow({dataset, Fmt(result->Find("EF")->s_sum.mean / mes, 3),
                  Fmt(result->Find("MES-A")->s_sum.mean / mes, 3), "1.000"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): MES-A lands between EF and MES — "
               "removing the subset updates costs a significant share of "
               "MES's score on every dataset.\n";
  return 0;
}
