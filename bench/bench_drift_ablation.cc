// Extension bench: how the drift adapters' memory parameters matter —
// SW-MES across window sizes λ (the paper's §3.3 knob, including the
// Theorem 4.4 choice λ = sqrt(n log n / ξ)) against cumulative MES and the
// discounted-UCB variant D-MES at matched effective horizons.

#include <iostream>

#include "bench_util.h"
#include "core/ducb.h"
#include "sim/video.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  BenchSettings settings = BenchSettings::FromEnv();
  if (std::getenv("VQE_BENCH_FRAMES") == nullptr &&
      std::getenv("VQE_BENCH_FAST") == nullptr) {
    settings.target_frames = 14000.0;
    settings.trials = std::max(3, settings.trials / 2);
  }
  PrintHeader("Drift-adapter ablation: window/discount sweep",
              "extension of §3.3 / Theorem 4.4", settings);

  for (const char* dataset : {"c&n", "c&n&r"}) {
    auto pool = std::move(BuildNuscenesPool(5)).value();
    ExperimentConfig config = MakeConfig(dataset, settings);

    // Estimate the breakpoint count of a sampled instance for the
    // theoretical window choice.
    SampleOptions sample;
    sample.scene_scale = config.scene_scale;
    sample.seed = 1;
    const Video probe = std::move(SampleVideo(*config.dataset, sample)).value();
    const size_t xi = ContextBreakpoints(probe).size();
    const size_t theory_window = TheoreticalWindow(probe.size(), xi);

    std::vector<StrategySpec> strategies{
        {"MES", [] { return std::make_unique<MesStrategy>(); }}};
    for (size_t window : {150, 450, 1350}) {
      strategies.push_back(
          {"SW-MES(" + std::to_string(window) + ")", [window] {
             SwMesOptions o;
             o.window = window;
             o.exploration_scale = 0.05;
             return std::make_unique<SwMesStrategy>(o);
           }});
    }
    strategies.push_back({"SW-MES(theory:" + std::to_string(theory_window) +
                              ")",
                          [theory_window] {
                            SwMesOptions o;
                            o.window = std::max<size_t>(theory_window, 2);
                            o.exploration_scale = 0.05;
                            return std::make_unique<SwMesStrategy>(o);
                          }});
    for (double horizon : {450.0, 1350.0}) {
      strategies.push_back(
          {"D-MES(h=" + std::to_string(static_cast<int>(horizon)) + ")",
           [horizon] {
             DucbOptions o;
             o.discount = DucbOptions::DiscountForHorizon(horizon);
             return std::make_unique<DucbMesStrategy>(o);
           }});
    }

    const auto result = RunExperiment(config, pool, strategies);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\nDataset " << dataset << " (~"
              << Fmt(result->avg_video_frames, 0) << " frames, ξ ≈ " << xi
              << " breakpoints):\n";
    PrintOutcomeTable(*result, std::cout);
  }
  std::cout << "\nExpected shape: windows near the segment length beat both "
               "very short windows (noisy estimates, constant probing) and "
               "very long ones (stale estimates ≈ MES); D-MES at a matched "
               "horizon behaves like the corresponding SW-MES.\n";
  return 0;
}
