// Extension bench: how the drift adapters' memory parameters matter —
// SW-MES across window sizes λ (the paper's §3.3 knob, including the
// Theorem 4.4 choice λ = sqrt(n log n / ξ)) against cumulative MES and the
// discounted-UCB variant D-MES at matched effective horizons.
//
// Two drift regimes per dataset:
//   abrupt  — the dataset's native context breakpoints (scene changes),
//             the paper's §3.3 setting.
//   gradual — the workload engine's scene-block drift rewrite layered on
//             top (ApplyDriftRewrite, λ ramping 0.02 → 0.35 across the
//             video), the serving-path drift model. Running the same
//             window sweep under both shows whether the λ guidance from
//             the abrupt suite transfers to slow distribution shift.
//
// Emits BENCH_drift_ablation.json: every (dataset, regime, strategy) row
// plus a side-by-side table pairing each strategy's abrupt and gradual
// regret, so the two suites can be compared without re-deriving them.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/ducb.h"
#include "sim/video.h"
#include "workload/workload.h"

using namespace vqe;
using namespace vqe::bench;

namespace {

/// Gradual-drift intensities at the first and last frame of each trial's
/// video (the rewrite interpolates between them per scene block).
constexpr double kGradualLambda0 = 0.02;
constexpr double kGradualLambda1 = 0.35;

struct Row {
  std::string dataset;
  std::string regime;  // "abrupt" | "gradual"
  std::string strategy;
  double s_sum_mean = 0.0;
  double regret_mean = 0.0;
  double avg_true_ap = 0.0;
  double avg_norm_cost = 0.0;
};

}  // namespace

int main() {
  BenchSettings settings = BenchSettings::FromEnv();
  if (std::getenv("VQE_BENCH_FRAMES") == nullptr &&
      std::getenv("VQE_BENCH_FAST") == nullptr) {
    settings.target_frames = 14000.0;
    settings.trials = std::max(3, settings.trials / 2);
  }
  PrintHeader("Drift-adapter ablation: window/discount sweep",
              "extension of §3.3 / Theorem 4.4", settings);

  std::vector<Row> rows;
  for (const char* dataset : {"c&n", "c&n&r"}) {
    for (const char* regime : {"abrupt", "gradual"}) {
      const bool gradual = std::string(regime) == "gradual";
      auto pool = std::move(BuildNuscenesPool(5)).value();
      ExperimentConfig config = MakeConfig(dataset, settings);
      if (gradual) {
        config.video_transform = [](Video& video, uint64_t trial_seed) {
          ApplyDriftRewrite(video, trial_seed, kGradualLambda0,
                            kGradualLambda1);
        };
      }

      // Estimate the breakpoint count of a sampled instance for the
      // theoretical window choice — under the same rewrite the trials see.
      SampleOptions sample;
      sample.scene_scale = config.scene_scale;
      sample.seed = 1;
      Video probe = std::move(SampleVideo(*config.dataset, sample)).value();
      if (config.video_transform) config.video_transform(probe, 1);
      const size_t xi = ContextBreakpoints(probe).size();
      const size_t theory_window = TheoreticalWindow(probe.size(), xi);

      std::vector<StrategySpec> strategies{
          {"MES", [] { return std::make_unique<MesStrategy>(); }}};
      for (size_t window : {150, 450, 1350}) {
        strategies.push_back(
            {"SW-MES(" + std::to_string(window) + ")", [window] {
               SwMesOptions o;
               o.window = window;
               o.exploration_scale = 0.05;
               return std::make_unique<SwMesStrategy>(o);
             }});
      }
      strategies.push_back({"SW-MES(theory)", [theory_window] {
                              SwMesOptions o;
                              o.window = std::max<size_t>(theory_window, 2);
                              o.exploration_scale = 0.05;
                              return std::make_unique<SwMesStrategy>(o);
                            }});
      for (double horizon : {450.0, 1350.0}) {
        strategies.push_back(
            {"D-MES(h=" + std::to_string(static_cast<int>(horizon)) + ")",
             [horizon] {
               DucbOptions o;
               o.discount = DucbOptions::DiscountForHorizon(horizon);
               return std::make_unique<DucbMesStrategy>(o);
             }});
      }

      const auto result = RunExperiment(config, pool, strategies);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      std::cout << "\nDataset " << dataset << ", " << regime << " drift (~"
                << Fmt(result->avg_video_frames, 0) << " frames, ξ ≈ " << xi
                << " breakpoints, theory λ = " << theory_window << "):\n";
      PrintOutcomeTable(*result, std::cout);

      for (const StrategyOutcome& o : result->outcomes) {
        Row row;
        row.dataset = dataset;
        row.regime = regime;
        row.strategy = o.label;
        row.s_sum_mean = o.s_sum.mean;
        row.regret_mean = o.regret.mean;
        row.avg_true_ap = o.avg_true_ap.mean;
        row.avg_norm_cost = o.avg_norm_cost.mean;
        rows.push_back(row);
      }
    }
  }

  // ---- JSON: all rows, plus abrupt/gradual regret side by side ----------
  FILE* json = std::fopen("BENCH_drift_ablation.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_drift_ablation.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"drift_ablation\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"dataset\": \"%s\", \"regime\": \"%s\","
                 " \"strategy\": \"%s\",\n"
                 "     \"s_sum_mean\": %.6f, \"regret_mean\": %.6f,\n"
                 "     \"avg_true_ap\": %.6f, \"avg_norm_cost\": %.6f}%s\n",
                 r.dataset.c_str(), r.regime.c_str(), r.strategy.c_str(),
                 r.s_sum_mean, r.regret_mean, r.avg_true_ap, r.avg_norm_cost,
                 i + 1 < rows.size() ? "," : "");
  }
  // Pair each (dataset, strategy) across regimes.
  std::fprintf(json, "  ],\n  \"regret_side_by_side\": [\n");
  std::vector<std::string> pair_lines;
  for (const Row& a : rows) {
    if (a.regime != "abrupt") continue;
    for (const Row& g : rows) {
      if (g.regime != "gradual" || g.dataset != a.dataset ||
          g.strategy != a.strategy) {
        continue;
      }
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    {\"dataset\": \"%s\", \"strategy\": \"%s\","
                    " \"abrupt_regret\": %.6f, \"gradual_regret\": %.6f}",
                    a.dataset.c_str(), a.strategy.c_str(), a.regret_mean,
                    g.regret_mean);
      pair_lines.push_back(buf);
    }
  }
  for (size_t i = 0; i < pair_lines.size(); ++i) {
    std::fprintf(json, "%s%s\n", pair_lines[i].c_str(),
                 i + 1 < pair_lines.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::cout << "\nwrote BENCH_drift_ablation.json\n";

  std::cout << "\nExpected shape: windows near the segment length beat both "
               "very short windows (noisy estimates, constant probing) and "
               "very long ones (stale estimates ≈ MES); D-MES at a matched "
               "horizon behaves like the corresponding SW-MES. Under "
               "gradual drift the rewrite adds breakpoints, so the best "
               "window shifts shorter than in the abrupt suite.\n";
  return 0;
}
