// Table 4: LRBP extra-budget prediction — after exhausting budget B on a
// video, predict the extra budget needed to finish it and compare with the
// actual cost of finishing under the same strategy.

#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "core/lrbp.h"
#include "core/mes_b.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  BenchSettings settings = BenchSettings::FromEnv();
  // LRBP assumes the budgeted prefix reaches MES's steady state (Table 4's
  // |V_B| is 11k-48k frames), so this bench defaults to a larger replica.
  if (std::getenv("VQE_BENCH_FRAMES") == nullptr &&
      std::getenv("VQE_BENCH_FAST") == nullptr) {
    settings.target_frames = 16000.0;
  }
  PrintHeader("LRBP extra-budget prediction", "Table 4", settings);

  struct Row {
    const char* dataset;
    double budget_fraction;  // of the full-video MES cost
  };
  // Budgets mirror Table 4's regime: each processes a sizable share of the
  // video (the paper's |V_B| is 11k-48k frames), past MES's exploration
  // phase, where the cost curve is near-linear.
  const Row rows[] = {
      {"nusc", 0.25}, {"nusc", 0.40}, {"nusc", 0.60},
      {"nusc-clear", 0.40}, {"nusc-night", 0.40}, {"nusc-rainy", 0.40},
  };

  TablePrinter table({"Dataset", "|V|", "B (ms)", "|V_B|", "B_lrbp", "B_extra",
                      "error %"});
  for (const Row& row : rows) {
    auto pool = std::move(BuildPoolForDataset(row.dataset, 5)).value();
    ExperimentConfig config = MakeConfig(row.dataset, settings);
    const auto matrix = std::move(BuildTrialMatrix(config, pool, 0)).value();

    // Full-video run to learn the total cost (the "actual" reference).
    // TCVI processing uses the budget-aware strategy (MES-B) throughout.
    EngineOptions engine;
    engine.sc = ScoringFunction{0.5, 0.5};
    engine.record_cost_curve = true;
    MesBStrategy full_mes;
    const auto full = RunStrategy(matrix, &full_mes, engine);

    // Budgeted run.
    engine.budget_ms = row.budget_fraction * full->charged_cost_ms;
    MesBStrategy budget_mes;
    const auto budgeted = RunStrategy(matrix, &budget_mes, engine);

    const auto pred =
        PredictExtraBudget(budgeted->cost_curve, matrix.size(), 0.3);
    if (!pred.ok()) {
      std::cerr << pred.status().ToString() << "\n";
      return 1;
    }
    const double actual_extra =
        full->charged_cost_ms - budgeted->charged_cost_ms;
    const double err =
        actual_extra > 0
            ? 100.0 * std::fabs(pred->b_extra - actual_extra) / actual_extra
            : 0.0;
    table.AddRow({row.dataset, std::to_string(matrix.size()),
                  Fmt(engine.budget_ms, 0),
                  std::to_string(budgeted->frames_processed),
                  Fmt(pred->b_extra, 0), Fmt(actual_extra, 0), Fmt(err, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): errors within ~10%. MES-B's "
               "ratio rule converges to efficient arms quickly, so the "
               "cost curve is near-linear and LRBP extrapolates it "
               "accurately.\n";
  return 0;
}
