// Figure 10: how the scoring weights steer MES's ensemble selection — the
// distribution of the number of times each ensemble is selected on V_nusc,
// at accuracy-heavy vs cost-heavy weights.

#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("MES selection distribution vs weights", "Figure 10", settings);

  auto pool = std::move(BuildNuscenesPool(5)).value();
  ExperimentConfig config = MakeConfig("nusc", settings);

  std::vector<FrameMatrix> matrices;
  const int trials = std::max(2, settings.trials / 2);
  for (int trial = 0; trial < trials; ++trial) {
    matrices.push_back(std::move(BuildTrialMatrix(config, pool, trial)).value());
  }
  const auto& names = matrices[0].model_names;

  for (double w1 : {0.2, 0.5, 0.8}) {
    EngineOptions engine;
    engine.sc = ScoringFunction{w1, 1.0 - w1};
    std::vector<uint64_t> counts(NumEnsembles(5) + 1, 0);
    double ap_selected = 0.0;
    double cost_selected = 0.0;
    double total_frames = 0.0;
    for (const auto& matrix : matrices) {
      MesStrategy mes;
      const auto run = RunStrategy(matrix, &mes, engine);
      for (size_t s = 0; s < counts.size(); ++s) {
        counts[s] += run->selection_counts[s];
      }
      ap_selected += run->avg_true_ap * run->frames_processed;
      cost_selected += run->avg_norm_cost * run->frames_processed;
      total_frames += static_cast<double>(run->frames_processed);
    }

    std::cout << "\nWeights w1=" << Fmt(w1, 1) << " w2=" << Fmt(1.0 - w1, 1)
              << " — selected-ensemble profile: avg AP "
              << Fmt(ap_selected / total_frames, 3) << ", avg cost "
              << Fmt(cost_selected / total_frames, 3) << "\n";
    // Top 8 ensembles by selection count.
    TablePrinter table({"rank", "ensemble", "|S|", "selections", "share %"});
    std::vector<uint64_t> tmp = counts;
    for (int rank = 1; rank <= 8; ++rank) {
      size_t best = 0;
      for (size_t s = 1; s < tmp.size(); ++s) {
        if (tmp[s] > tmp[best]) best = s;
      }
      if (tmp[best] == 0) break;
      table.AddRow({std::to_string(rank),
                    EnsembleName(static_cast<EnsembleId>(best), names),
                    std::to_string(EnsembleSize(static_cast<EnsembleId>(best))),
                    std::to_string(tmp[best]),
                    Fmt(100.0 * tmp[best] / total_frames, 1)});
      tmp[best] = 0;
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): with w2 > w1 MES concentrates on "
               "cheap, small ensembles; with w1 >= w2 it shifts towards "
               "larger, more accurate ensembles.\n";
  return 0;
}
