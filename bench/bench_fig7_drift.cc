// Figure 7: TUVI-CD — scores under concept drift on the segment-shuffled
// datasets V_c&n, V_n&r and V_c&n&r, with SW-MES added to the line-up.

#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  BenchSettings settings = BenchSettings::FromEnv();
  // Drift tracking needs paper-scale segments; target most of the full
  // dataset unless the user overrides.
  if (std::getenv("VQE_BENCH_FRAMES") == nullptr &&
      std::getenv("VQE_BENCH_FAST") == nullptr) {
    settings.target_frames = 14000.0;
    settings.trials = std::max(3, settings.trials / 2);
  }
  PrintHeader("TUVI-CD: scores under concept drift", "Figure 7", settings);

  for (const char* dataset : {"c&n", "n&r", "c&n&r"}) {
    auto pool = std::move(BuildNuscenesPool(5)).value();
    ExperimentConfig config = MakeConfig(dataset, settings);
    auto strategies = DefaultTuviStrategies(10, 2);
    strategies.push_back(SwMesSpec());

    const auto result = RunExperiment(config, pool, strategies);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\nDataset " << dataset << " (~"
              << Fmt(result->avg_video_frames, 0) << " frames/trial):\n";
    PrintOutcomeTable(*result, std::cout);
    const auto* mes = result->Find("MES");
    const auto* sw = result->Find("SW-MES");
    if (mes && sw) {
      std::cout << "SW-MES vs MES: "
                << Fmt(100.0 * (sw->s_sum.mean / mes->s_sum.mean - 1.0), 1)
                << "%\n";
    }
  }
  std::cout << "\nExpected shape (paper): MES stays above SGL/BF/EF but "
               "degrades relative to TUVI; SW-MES consistently beats MES "
               "with a narrower spread.\n";
  return 0;
}
