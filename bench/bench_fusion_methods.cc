// §5.2 fusion-method comparison: average AP of each box-fusion algorithm
// when ensembling the m=3 specialist pool, on nuScenes. The paper selects
// WBF as "the most accurate".

#include <iostream>

#include "bench_util.h"
#include "detection/ap.h"
#include "sim/dataset.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Box-fusion method comparison", "§5.2 (ensemble approaches)",
              settings);

  auto pool = std::move(BuildNuscenesPool(3)).value();
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc");
  SampleOptions sample;
  sample.scene_scale = ScaleFor(*spec, settings.target_frames / 2);
  sample.seed = 11;
  const Video video = std::move(SampleVideo(*spec, sample)).value();

  TablePrinter table({"Method", "Avg AP (full trio)", "Avg boxes/frame"});
  double best_ap = -1.0;
  std::string best_name;
  for (FusionKind kind : AllFusionKinds()) {
    auto method = std::move(CreateEnsembleMethod(kind)).value();
    double ap = 0.0;
    double boxes = 0.0;
    for (const VideoFrame& frame : video.frames) {
      std::vector<DetectionList> outs;
      for (const auto& det : pool.detectors) {
        outs.push_back(det->Detect(frame, sample.seed));
      }
      const DetectionList fused = method->Fuse(outs);
      ap += FrameMeanAp(fused, frame.objects, {});
      boxes += static_cast<double>(fused.size());
    }
    ap /= static_cast<double>(video.size());
    boxes /= static_cast<double>(video.size());
    table.AddRow({method->name(), Fmt(ap, 4), Fmt(boxes, 1)});
    if (ap > best_ap) {
      best_ap = ap;
      best_name = method->name();
    }
  }
  table.Print(std::cout);
  std::cout << "\nMost accurate method here: " << best_name
            << " (paper: WBF). All subsequent experiments use WBF.\n";
  return 0;
}
