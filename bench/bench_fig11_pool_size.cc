// Figure 11: effect of the number of detectors m (and thus of 2^m − 1
// candidate ensembles) on the algorithms, on the specialized nuScenes
// datasets.

#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Pool-size sweep", "Figure 11", settings);

  for (const char* dataset : {"nusc-clear", "nusc-night", "nusc-rainy"}) {
    std::cout << "\nDataset " << dataset << ":\n";
    TablePrinter table({"m", "ensembles", "OPT", "BF", "EF", "MES",
                        "MES/OPT %"});
    for (int m : {2, 3, 5}) {
      auto pool = std::move(BuildNuscenesPool(m)).value();
      ExperimentConfig config = MakeConfig(dataset, settings);
      config.pool_size = m;
      std::vector<StrategySpec> strategies{
          {"OPT", [] { return std::make_unique<OptStrategy>(); }},
          {"BF", [] { return std::make_unique<BruteForceStrategy>(); }},
          {"EF", [] { return std::make_unique<ExploreFirstStrategy>(2); }},
          {"MES", [] { return std::make_unique<MesStrategy>(); }},
      };
      const auto result = RunExperiment(config, pool, strategies);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      const double opt = result->Find("OPT")->s_sum.mean;
      const double mes = result->Find("MES")->s_sum.mean;
      table.AddRow({std::to_string(m), std::to_string(NumEnsembles(m)),
                    Fmt(opt, 1), Fmt(result->Find("BF")->s_sum.mean, 1),
                    Fmt(result->Find("EF")->s_sum.mean, 1), Fmt(mes, 1),
                    Fmt(100.0 * mes / opt, 1)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): the BF/EF gap to MES shrinks as m "
               "drops; at m=2 (3 ensembles) EF matches MES because the "
               "selection problem is easy.\n";
  return 0;
}
