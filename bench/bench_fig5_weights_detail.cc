// Figure 5: s_sum, ā and 1−ĉ under varying scoring weights ⟨w1, w2⟩ for
// OPT, EF and MES on V_nusc^night and V_nusc^rainy.

#include <iostream>

#include "bench_util.h"
#include "core/baselines.h"

using namespace vqe;
using namespace vqe::bench;

namespace {

void RunDataset(const char* dataset, const BenchSettings& settings) {
  auto pool = std::move(BuildNuscenesPool(5)).value();
  ExperimentConfig config = MakeConfig(dataset, settings);

  // Matrices are weight-independent: build once per trial, score per weight.
  std::vector<FrameMatrix> matrices;
  for (int trial = 0; trial < config.trials; ++trial) {
    matrices.push_back(std::move(BuildTrialMatrix(config, pool, trial)).value());
  }

  std::cout << "\nDataset " << dataset << ":\n";
  TablePrinter table({"w1/w2", "algorithm", "s_sum", "avg AP (a)",
                      "1 - avg cost"});
  for (double w1 : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EngineOptions engine;
    engine.sc = ScoringFunction{w1, 1.0 - w1};
    std::vector<std::pair<std::string,
                          std::function<std::unique_ptr<SelectionStrategy>()>>>
        algos = {
            {"OPT", [] { return std::make_unique<OptStrategy>(); }},
            {"EF", [] { return std::make_unique<ExploreFirstStrategy>(2); }},
            {"MES", [] { return std::make_unique<MesStrategy>(); }},
        };
    for (const auto& [label, make] : algos) {
      double s_sum = 0, ap = 0, cost = 0;
      for (const auto& matrix : matrices) {
        auto strategy = make();
        const auto run =
            RunStrategy(matrix, strategy.get(), engine);
        s_sum += run->s_sum;
        ap += run->avg_true_ap;
        cost += run->avg_norm_cost;
      }
      const double n = static_cast<double>(matrices.size());
      table.AddRow({Fmt(w1, 1) + "/" + Fmt(1.0 - w1, 1), label,
                    Fmt(s_sum / n, 1), Fmt(ap / n, 3),
                    Fmt(1.0 - cost / n, 3)});
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Weight sweep: score, AP and cost detail", "Figure 5",
              settings);
  RunDataset("nusc-night", settings);
  RunDataset("nusc-rainy", settings);
  std::cout << "\nExpected shape (paper): as w1 grows, ā rises and 1−ĉ falls "
               "for OPT and MES in lock-step; MES tracks OPT's trade-off "
               "while EF does not adapt as well.\n";
  return 0;
}
