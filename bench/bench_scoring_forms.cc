// §2.2's genericity claim: the selection algorithms do not depend on the
// specific form of the scoring function, only on the criteria (monotone in
// AP, anti-monotone in cost, [0,1] range). This bench runs the TUVI line-up
// under the paper's logarithmic form (Eq. 30) and the simplest compliant
// linear form; the algorithm ordering must be invariant.

#include <iostream>

#include "bench_util.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Scoring-form invariance", "§2.2 genericity criteria",
              settings);

  auto pool = std::move(BuildNuscenesPool(5)).value();

  for (ScoreForm form : {ScoreForm::kLogarithmic, ScoreForm::kLinear}) {
    ExperimentConfig config = MakeConfig("nusc", settings);
    config.trials = std::max(2, settings.trials / 2);
    config.engine.sc.form = form;
    const auto result =
        RunExperiment(config, pool, DefaultTuviStrategies(10, 2));
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\nForm: "
              << (form == ScoreForm::kLogarithmic
                      ? "logarithmic (Eq. 30)"
                      : "linear (w1*a + w2*(1-c))")
              << "\n";
    PrintOutcomeTable(*result, std::cout);
  }
  std::cout << "\nExpected shape: absolute s_sum values differ between "
               "forms, but the ordering OPT > MES > {EF, SGL, RAND} > BF "
               "holds under both — the algorithms only consume the §2.2 "
               "criteria.\n";
  return 0;
}
