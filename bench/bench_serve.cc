// Multi-stream serving throughput: streams/sec and per-frame latency
// percentiles versus concurrent session count.
//
// For each session count n ∈ {1, 2, 4, 8} the bench submits n streams
// (mixed strategies, seeds and priority classes) to a StreamScheduler with
// cross-stream batching attached, drains them, and reports wall-clock
// throughput (frames/sec, streams/sec), the p50/p99 per-frame step
// latency, DRR round counts, and the batch coalescing factor. Every
// stream's RunResult is verified bit-identical to its solo RunStrategy
// baseline — the serving layer may only change WHEN work happens, never
// WHAT any stream computes.
//
// Emits BENCH_serve.json so later PRs can track the trajectory.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/baselines.h"
#include "core/ducb.h"
#include "core/engine.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "serve/batch_dispatcher.h"
#include "serve/scheduler.h"
#include "serve/stream_session.h"
#include "sim/dataset.h"

using namespace vqe;
using namespace vqe::bench;

namespace {

struct StreamSpec {
  std::string name;
  std::string strategy;
  PriorityClass priority = PriorityClass::kStandard;
  uint64_t trial_seed = 0;
  uint64_t strategy_seed = 0;
};

std::unique_ptr<SelectionStrategy> MakeStrategy(const std::string& kind) {
  if (kind == "MES") {
    MesOptions o;
    o.gamma = 2;
    return std::make_unique<MesStrategy>(o);
  }
  if (kind == "SW-MES") {
    SwMesOptions o;
    o.gamma = 2;
    o.window = 64;
    return std::make_unique<SwMesStrategy>(o);
  }
  if (kind == "D-MES") {
    DucbOptions o;
    o.gamma = 2;
    return std::make_unique<DucbMesStrategy>(o);
  }
  return std::make_unique<RandomStrategy>();
}

StreamSpec MakeSpec(size_t i) {
  static const char* kKinds[] = {"MES", "SW-MES", "D-MES", "RAND"};
  static const PriorityClass kClasses[] = {PriorityClass::kInteractive,
                                           PriorityClass::kStandard,
                                           PriorityClass::kStandard,
                                           PriorityClass::kBatch};
  StreamSpec spec;
  spec.strategy = kKinds[i % 4];
  spec.priority = kClasses[i % 4];
  spec.name = std::string("stream-") + std::to_string(i) + "-" +
              spec.strategy;
  spec.trial_seed = 100 + i;
  spec.strategy_seed = 200 + i;
  return spec;
}

EngineOptions MakeEngine(const StreamSpec& spec) {
  EngineOptions e;
  e.strategy_seed = spec.strategy_seed;
  e.compute_regret = false;
  return e;
}

std::unique_ptr<StreamSession> MakeSession(const Video& video,
                                           const DetectorPool& base,
                                           const StreamSpec& spec,
                                           BatchDispatcher* dispatcher,
                                           uint64_t stream_id) {
  std::vector<std::unique_ptr<DetectorPool>> owned;
  const DetectorPool* pool = &base;
  if (dispatcher != nullptr) {
    auto batching = std::make_unique<DetectorPool>(
        std::move(MakeBatchingPool(*pool, dispatcher, stream_id)).value());
    pool = batching.get();
    owned.push_back(std::move(batching));
  }
  auto source =
      std::move(LazyFrameEvaluator::Create(video, *pool, spec.trial_seed, {}))
          .value();
  StreamSessionConfig cfg;
  cfg.name = spec.name;
  cfg.priority = spec.priority;
  cfg.engine = MakeEngine(spec);
  for (const auto& det : pool->detectors) {
    cfg.model_names.push_back(det->name());
  }
  return std::move(StreamSession::Create(std::move(cfg), std::move(source),
                                         MakeStrategy(spec.strategy),
                                         std::move(owned)))
      .value();
}

/// Deterministic-field equality between a served stream and its solo run.
bool SameRun(const RunResult& a, const RunResult& b) {
  return a.s_sum == b.s_sum && a.avg_true_ap == b.avg_true_ap &&
         a.frames_processed == b.frames_processed &&
         a.charged_cost_ms == b.charged_cost_ms &&
         a.selection_counts == b.selection_counts &&
         a.fallback_frames == b.fallback_frames &&
         a.failed_frames == b.failed_frames;
}

struct ConfigRow {
  int sessions = 0;
  bool batched = false;
  double wall_ms = 0.0;
  uint64_t frames = 0;
  double frames_per_sec = 0.0;
  double streams_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t rounds = 0;
  double mean_batch = 0.0;
  uint64_t coalesced = 0;
  bool bit_identical = true;
};

}  // namespace

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Multi-stream serving throughput",
              "serving layer (sessions, DRR scheduling, batching)",
              settings);

  const DatasetSpec& spec = **DatasetCatalog::Default().Find("nusc-night");
  // (scaled down: eight solo baselines plus four serve configs per run)
  const double scale =
      ScaleFor(spec, std::min(settings.target_frames, 600.0));
  SampleOptions sample;
  sample.scene_scale = scale;
  sample.seed = 17;
  const Video video = std::move(SampleVideo(spec, sample)).value();
  const DetectorPool pool = std::move(BuildNuscenesPool(5)).value();
  std::cout << "video: " << video.size() << " frames, pool m="
            << pool.size() << "\n\n";

  // Solo baselines (and their wall time, the 1-stream-at-a-time reference).
  std::vector<RunResult> solo(8);
  Stopwatch solo_watch;
  for (size_t i = 0; i < solo.size(); ++i) {
    const StreamSpec sspec = MakeSpec(i);
    auto source = std::move(LazyFrameEvaluator::Create(
                                video, pool, sspec.trial_seed, {}))
                      .value();
    auto strategy = MakeStrategy(sspec.strategy);
    solo[i] =
        std::move(RunStrategy(*source, strategy.get(), MakeEngine(sspec)))
            .value();
  }
  const double solo_ms = solo_watch.ElapsedMillis();
  std::cout << "8 solo runs back-to-back: " << Fmt(solo_ms) << " ms\n\n";

  std::vector<ConfigRow> rows;
  for (const bool batched : {false, true}) {
    for (const int n : {1, 2, 4, 8}) {
      ServeOptions opt;
      opt.max_sessions = n;
      opt.queue_depth = 0;
      opt.quantum_ms = 150.0;
      opt.max_frames_per_round = 16;
      opt.parallelism = 0;  // all cores
      StreamScheduler scheduler(opt);
      BatchDispatcher dispatcher({/*batch_window=*/4});
      if (batched) scheduler.AttachBatchDispatcher(&dispatcher);
      for (int i = 0; i < n; ++i) {
        auto id = scheduler.Submit(
            MakeSession(video, pool, MakeSpec(i),
                        batched ? &dispatcher : nullptr,
                        static_cast<uint64_t>(i)));
        if (!id.ok()) {
          std::cerr << "submit failed: " << id.status().ToString() << "\n";
          return 1;
        }
      }
      const ServeReport report =
          std::move(scheduler.RunUntilDrained()).value();

      ConfigRow row;
      row.sessions = n;
      row.batched = batched;
      row.wall_ms = report.stats.wall_ms;
      row.frames = report.stats.frames;
      row.frames_per_sec =
          report.stats.wall_ms > 0.0
              ? 1e3 * static_cast<double>(report.stats.frames) /
                    report.stats.wall_ms
              : 0.0;
      row.streams_per_sec =
          report.stats.wall_ms > 0.0 ? 1e3 * n / report.stats.wall_ms : 0.0;
      row.p50_ms = report.stats.frame_p50_ms;
      row.p99_ms = report.stats.frame_p99_ms;
      row.rounds = report.stats.rounds;
      row.mean_batch = report.stats.batching.MeanBatch();
      row.coalesced = report.stats.batching.coalesced_requests;
      for (int i = 0; i < n; ++i) {
        if (!report.streams[static_cast<size_t>(i)].status.ok() ||
            !SameRun(solo[static_cast<size_t>(i)],
                     report.streams[static_cast<size_t>(i)].result)) {
          row.bit_identical = false;
        }
      }
      rows.push_back(row);

      std::cout << (batched ? "batched  " : "unbatched") << " sessions="
                << n << ": wall " << Fmt(row.wall_ms) << " ms, "
                << Fmt(row.frames_per_sec, 0) << " frames/s, "
                << Fmt(row.streams_per_sec) << " streams/s, p50 "
                << Fmt(row.p50_ms, 3) << " ms, p99 " << Fmt(row.p99_ms, 3)
                << " ms, rounds " << row.rounds << ", mean batch "
                << Fmt(row.mean_batch) << ", identical="
                << (row.bit_identical ? "yes" : "NO") << "\n";
    }
  }

  bool all_identical = true;
  for (const auto& row : rows) all_identical &= row.bit_identical;
  std::cout << "\nbit-identity across all configurations: "
            << (all_identical ? "PASS" : "FAIL") << "\n";

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"serve\",\n  \"frames_per_video\": %zu,\n"
               "  \"pool_m\": %zu,\n  \"hardware_threads\": %u,\n"
               "  \"solo_8_runs_ms\": %.3f,\n"
               "  \"bit_identical\": %s,\n  \"configs\": [\n",
               video.size(), pool.size(),
               std::thread::hardware_concurrency(), solo_ms,
               all_identical ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ConfigRow& r = rows[i];
    std::fprintf(
        json,
        "    {\"sessions\": %d, \"batched\": %s, \"wall_ms\": %.3f,\n"
        "     \"frames\": %llu,\n"
        "     \"frames_per_sec\": %.1f, \"streams_per_sec\": %.3f,\n"
        "     \"frame_p50_ms\": %.4f, \"frame_p99_ms\": %.4f,\n"
        "     \"rounds\": %llu, \"mean_batch\": %.3f,\n"
        "     \"coalesced_requests\": %llu, \"bit_identical\": %s}%s\n",
        r.sessions, r.batched ? "true" : "false", r.wall_ms,
        static_cast<unsigned long long>(r.frames),
        r.frames_per_sec, r.streams_per_sec, r.p50_ms, r.p99_ms,
        static_cast<unsigned long long>(r.rounds), r.mean_batch,
        static_cast<unsigned long long>(r.coalesced),
        r.bit_identical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::cout << "wrote BENCH_serve.json\n";
  return all_identical ? 0 : 1;
}
