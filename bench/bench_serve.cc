// Multi-stream serving throughput: streams/sec and per-frame latency
// percentiles versus concurrent session count.
//
// For each session count n ∈ {1, 2, 4, 8} the bench submits n streams
// (mixed strategies, seeds and priority classes) to a StreamScheduler with
// cross-stream batching attached, drains them, and reports wall-clock
// throughput (frames/sec, streams/sec), the p50/p99 per-frame step
// latency, DRR round counts, and the batch coalescing factor. Every
// stream's RunResult is verified bit-identical to its solo RunStrategy
// baseline — the serving layer may only change WHEN work happens, never
// WHAT any stream computes.
//
// Also sweeps the temporal skip gate (mode × budget × motion level): each
// configuration runs solo and through skip-enabled serving sessions, and
// the bench reports simulated/wall speedup over the budget-0 baseline plus
// the accuracy delta. Bit-identity gates the exit code: budget 0 must
// reproduce the no-skip run exactly, and served skip streams must match
// their solo baselines.
//
// Finally sweeps the sharded fleet: 16 streams served by 1/2/4/8 shard
// threads, clean and under a chaos script (one scripted migration plus a
// shard kill). Reports throughput-versus-shards, migration handoff
// latency percentiles, and failover counts. On a small machine the
// wall-clock scaling is whatever the core count allows — the exit code
// gates only bit-identity: every completing stream, migrated or
// restarted, must match its solo baseline.
//
// Emits BENCH_serve.json so later PRs can track the trajectory.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "fleet/sharded_server.h"
#include "core/baselines.h"
#include "core/ducb.h"
#include "core/engine.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "serve/batch_dispatcher.h"
#include "serve/scheduler.h"
#include "serve/stream_session.h"
#include "sim/dataset.h"

using namespace vqe;
using namespace vqe::bench;

namespace {

struct StreamSpec {
  std::string name;
  std::string strategy;
  PriorityClass priority = PriorityClass::kStandard;
  uint64_t trial_seed = 0;
  uint64_t strategy_seed = 0;
  SkipOptions skip;  // default: off
};

std::unique_ptr<SelectionStrategy> MakeStrategy(const std::string& kind) {
  if (kind == "MES") {
    MesOptions o;
    o.gamma = 2;
    return std::make_unique<MesStrategy>(o);
  }
  if (kind == "SW-MES") {
    SwMesOptions o;
    o.gamma = 2;
    o.window = 64;
    return std::make_unique<SwMesStrategy>(o);
  }
  if (kind == "D-MES") {
    DucbOptions o;
    o.gamma = 2;
    return std::make_unique<DucbMesStrategy>(o);
  }
  return std::make_unique<RandomStrategy>();
}

StreamSpec MakeSpec(size_t i) {
  static const char* kKinds[] = {"MES", "SW-MES", "D-MES", "RAND"};
  static const PriorityClass kClasses[] = {PriorityClass::kInteractive,
                                           PriorityClass::kStandard,
                                           PriorityClass::kStandard,
                                           PriorityClass::kBatch};
  StreamSpec spec;
  spec.strategy = kKinds[i % 4];
  spec.priority = kClasses[i % 4];
  spec.name = std::string("stream-") + std::to_string(i) + "-" +
              spec.strategy;
  spec.trial_seed = 100 + i;
  spec.strategy_seed = 200 + i;
  return spec;
}

EngineOptions MakeEngine(const StreamSpec& spec) {
  EngineOptions e;
  e.strategy_seed = spec.strategy_seed;
  e.compute_regret = false;
  e.skip = spec.skip;
  return e;
}

std::unique_ptr<StreamSession> MakeSession(const Video& video,
                                           const DetectorPool& base,
                                           const StreamSpec& spec,
                                           BatchDispatcher* dispatcher,
                                           uint64_t stream_id) {
  std::vector<std::unique_ptr<DetectorPool>> owned;
  const DetectorPool* pool = &base;
  if (dispatcher != nullptr) {
    auto batching = std::make_unique<DetectorPool>(
        std::move(MakeBatchingPool(*pool, dispatcher, stream_id)).value());
    pool = batching.get();
    owned.push_back(std::move(batching));
  }
  auto source =
      std::move(LazyFrameEvaluator::Create(video, *pool, spec.trial_seed, {}))
          .value();
  StreamSessionConfig cfg;
  cfg.name = spec.name;
  cfg.priority = spec.priority;
  cfg.engine = MakeEngine(spec);
  for (const auto& det : pool->detectors) {
    cfg.model_names.push_back(det->name());
  }
  return std::move(StreamSession::Create(std::move(cfg), std::move(source),
                                         MakeStrategy(spec.strategy),
                                         std::move(owned)))
      .value();
}

/// Deterministic-field equality between a served stream and its solo run.
bool SameRun(const RunResult& a, const RunResult& b) {
  return a.s_sum == b.s_sum && a.avg_true_ap == b.avg_true_ap &&
         a.frames_processed == b.frames_processed &&
         a.charged_cost_ms == b.charged_cost_ms &&
         a.selection_counts == b.selection_counts &&
         a.fallback_frames == b.fallback_frames &&
         a.failed_frames == b.failed_frames &&
         a.skip.skipped_frames == b.skip.skipped_frames &&
         a.skip.detect_frames == b.skip.detect_frames;
}

struct ConfigRow {
  int sessions = 0;
  bool batched = false;
  double wall_ms = 0.0;
  uint64_t frames = 0;
  double frames_per_sec = 0.0;
  double streams_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t rounds = 0;
  double mean_batch = 0.0;
  uint64_t coalesced = 0;
  bool bit_identical = true;
};

/// One cell of the skip-knob sweep (solo run of one configuration).
struct SkipRow {
  std::string dataset;
  std::string mode;  // "gated" | "bandit"
  int budget = 0;
  uint64_t frames = 0;
  uint64_t skipped = 0;
  uint64_t forced = 0;
  double wall_ms = 0.0;
  double wall_fps = 0.0;
  double sim_ms = 0.0;
  /// Simulated-time speedup over this dataset's budget-0 baseline (the
  /// ledger ratio — what frame skipping actually buys).
  double sim_speedup = 1.0;
  double wall_speedup = 1.0;
  double avg_true_ap = 0.0;
  /// avg_true_ap minus the budget-0 baseline's (negative = accuracy lost).
  double ap_delta = 0.0;
  /// budget-0 rows only: bit-identical to the engine with no skip options?
  bool baseline_identical = true;
};

/// One cell of the shard sweep (one fleet run).
struct FleetRow {
  int shards = 0;
  bool chaos = false;
  double wall_ms = 0.0;
  uint64_t frames = 0;
  double frames_per_sec = 0.0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  int shards_killed = 0;
  uint64_t failover_streams = 0;
  uint64_t migrations_attempted = 0;
  uint64_t migrations_completed = 0;
  double migration_p50_ms = 0.0;
  double migration_p99_ms = 0.0;
  bool bit_identical = true;
};

SkipOptions MakeSkip(const std::string& mode, int budget) {
  SkipOptions s;
  s.mode = mode == "bandit"  ? SkipMode::kBandit
           : mode == "fixed" ? SkipMode::kFixedInterval
                             : SkipMode::kDifficultyGated;
  s.skip_budget = budget;
  return s;
}

/// Fleet streams rebuild their session from scratch on failover, so the
/// factory must be repeatable and thread-safe (pool and video are only
/// read).
Result<std::unique_ptr<StreamSession>> BuildFleetSession(
    const Video& video, const DetectorPool& pool, const StreamSpec& spec) {
  VQE_ASSIGN_OR_RETURN(auto source, LazyFrameEvaluator::Create(
                                        video, pool, spec.trial_seed, {}));
  StreamSessionConfig cfg;
  cfg.name = spec.name;
  cfg.priority = spec.priority;
  cfg.engine = MakeEngine(spec);
  for (const auto& det : pool.detectors) {
    cfg.model_names.push_back(det->name());
  }
  return StreamSession::Create(std::move(cfg), std::move(source),
                               MakeStrategy(spec.strategy), {});
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-out <path>: instrument the widest unbatched serving config
  // (sessions=8) with the observability layer and write its Chrome trace
  // JSON there, validated before exit. The bit-identity verdict for that
  // config then doubles as the obs-enabled identity check: instrumented
  // streams must still match their solo baselines exactly.
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--trace-out <path>]\n";
      return 1;
    }
  }
  Observability obs;

  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Multi-stream serving throughput",
              "serving layer (sessions, DRR scheduling, batching)",
              settings);

  const DatasetSpec& spec = **DatasetCatalog::Default().Find("nusc-night");
  // (scaled down: eight solo baselines plus four serve configs per run)
  const double scale =
      ScaleFor(spec, std::min(settings.target_frames, 600.0));
  SampleOptions sample;
  sample.scene_scale = scale;
  sample.seed = 17;
  const Video video = std::move(SampleVideo(spec, sample)).value();
  const DetectorPool pool = std::move(BuildNuscenesPool(5)).value();
  std::cout << "video: " << video.size() << " frames, pool m="
            << pool.size() << "\n\n";

  // Solo baselines (and their wall time, the 1-stream-at-a-time reference).
  std::vector<RunResult> solo(8);
  Stopwatch solo_watch;
  for (size_t i = 0; i < solo.size(); ++i) {
    const StreamSpec sspec = MakeSpec(i);
    auto source = std::move(LazyFrameEvaluator::Create(
                                video, pool, sspec.trial_seed, {}))
                      .value();
    auto strategy = MakeStrategy(sspec.strategy);
    solo[i] =
        std::move(RunStrategy(*source, strategy.get(), MakeEngine(sspec)))
            .value();
  }
  const double solo_ms = solo_watch.ElapsedMillis();
  std::cout << "8 solo runs back-to-back: " << Fmt(solo_ms) << " ms\n\n";

  std::vector<ConfigRow> rows;
  for (const bool batched : {false, true}) {
    for (const int n : {1, 2, 4, 8}) {
      ServeOptions opt;
      opt.max_sessions = n;
      opt.queue_depth = 0;
      opt.quantum_ms = 150.0;
      opt.max_frames_per_round = 16;
      opt.parallelism = 0;  // all cores
      if (!batched && n == 8 && !trace_out.empty()) opt.obs = obs.handle();
      StreamScheduler scheduler(opt);
      BatchDispatcher dispatcher({/*batch_window=*/4});
      if (batched) scheduler.AttachBatchDispatcher(&dispatcher);
      for (int i = 0; i < n; ++i) {
        auto id = scheduler.Submit(
            MakeSession(video, pool, MakeSpec(i),
                        batched ? &dispatcher : nullptr,
                        static_cast<uint64_t>(i)));
        if (!id.ok()) {
          std::cerr << "submit failed: " << id.status().ToString() << "\n";
          return 1;
        }
      }
      const ServeReport report =
          std::move(scheduler.RunUntilDrained()).value();

      ConfigRow row;
      row.sessions = n;
      row.batched = batched;
      row.wall_ms = report.stats.wall_ms;
      row.frames = report.stats.frames;
      row.frames_per_sec =
          report.stats.wall_ms > 0.0
              ? 1e3 * static_cast<double>(report.stats.frames) /
                    report.stats.wall_ms
              : 0.0;
      row.streams_per_sec =
          report.stats.wall_ms > 0.0 ? 1e3 * n / report.stats.wall_ms : 0.0;
      row.p50_ms = report.stats.frame_p50_ms;
      row.p99_ms = report.stats.frame_p99_ms;
      row.rounds = report.stats.rounds;
      row.mean_batch = report.stats.batching.MeanBatch();
      row.coalesced = report.stats.batching.coalesced_requests;
      for (int i = 0; i < n; ++i) {
        if (!report.streams[static_cast<size_t>(i)].status.ok() ||
            !SameRun(solo[static_cast<size_t>(i)],
                     report.streams[static_cast<size_t>(i)].result)) {
          row.bit_identical = false;
        }
      }
      rows.push_back(row);

      // The widest unbatched config carries the full priority mix — show
      // its per-class breakdown (simulated frame clock, so the numbers
      // are machine-independent).
      if (!batched && n == 8) {
        std::cout << "per-class breakdown (sessions=8, sim clock):\n";
        for (int c = 0; c < kNumPriorityClasses; ++c) {
          const auto& cs = report.stats.classes[c];
          if (cs.submitted == 0 && cs.frames == 0) continue;
          std::cout << "  " << std::setw(11) << std::left
                    << PriorityClassToString(static_cast<PriorityClass>(c))
                    << std::right << " submitted " << cs.submitted
                    << ", frames " << cs.frames << ", sim p50/p99/p999 "
                    << Fmt(cs.sim_p50_ms, 3) << "/" << Fmt(cs.sim_p99_ms, 3)
                    << "/" << Fmt(cs.sim_p999_ms, 3) << " ms\n";
        }
      }

      std::cout << (batched ? "batched  " : "unbatched") << " sessions="
                << n << ": wall " << Fmt(row.wall_ms) << " ms, "
                << Fmt(row.frames_per_sec, 0) << " frames/s, "
                << Fmt(row.streams_per_sec) << " streams/s, p50 "
                << Fmt(row.p50_ms, 3) << " ms, p99 " << Fmt(row.p99_ms, 3)
                << " ms, rounds " << row.rounds << ", mean batch "
                << Fmt(row.mean_batch) << ", identical="
                << (row.bit_identical ? "yes" : "NO") << "\n";
    }
  }

  bool all_identical = true;
  for (const auto& row : rows) all_identical &= row.bit_identical;
  std::cout << "\nbit-identity across all configurations: "
            << (all_identical ? "PASS" : "FAIL") << "\n";

  // ---- Temporal skip-knob sweep: mode × budget × motion level ----
  //
  // Solo MES runs; the interesting ledger is simulated time (detector
  // inference the gate avoided), wall clock rides along because the lazy
  // backend never materializes a skipped frame. budget 0 must reproduce
  // the no-skip engine bit-for-bit — that identity gates the exit code,
  // the speedups are informational.
  std::cout << "\nskip sweep (solo MES runs, vs budget-0 baseline):\n";
  std::vector<SkipRow> skip_rows;
  bool skip_identity = true;
  std::vector<std::pair<std::string, Video>> sweep_videos;
  for (const char* ds : {"nusc-lowmotion", "nusc-night"}) {
    const DatasetSpec& sweep_spec = **DatasetCatalog::Default().Find(ds);
    const double sweep_scale =
        ScaleFor(sweep_spec, std::min(settings.target_frames, 600.0));
    SampleOptions sweep_sample;
    sweep_sample.scene_scale = sweep_scale;
    sweep_sample.seed = 29;
    sweep_videos.emplace_back(
        ds, std::move(SampleVideo(sweep_spec, sweep_sample)).value());
  }
  for (const auto& [ds, svideo] : sweep_videos) {
    StreamSpec base_spec;
    base_spec.strategy = "MES";
    base_spec.name = "sweep-base";
    base_spec.trial_seed = 300;
    base_spec.strategy_seed = 400;
    auto base_source = std::move(LazyFrameEvaluator::Create(
                                     svideo, pool, base_spec.trial_seed, {}))
                           .value();
    auto base_strategy = MakeStrategy(base_spec.strategy);
    Stopwatch base_watch;
    const RunResult base =
        std::move(RunStrategy(*base_source, base_strategy.get(),
                              MakeEngine(base_spec)))
            .value();
    const double base_wall = base_watch.ElapsedMillis();
    const double base_sim = base.breakdown.SimulatedMs();

    for (const char* mode : {"fixed", "gated", "bandit"}) {
      for (const int budget : {0, 2, 4, 8}) {
        StreamSpec spec = base_spec;
        spec.skip = MakeSkip(mode, budget);
        auto source = std::move(LazyFrameEvaluator::Create(
                                    svideo, pool, spec.trial_seed, {}))
                          .value();
        auto strategy = MakeStrategy(spec.strategy);
        Stopwatch watch;
        const RunResult run =
            std::move(RunStrategy(*source, strategy.get(), MakeEngine(spec)))
                .value();
        SkipRow row;
        row.dataset = ds;
        row.mode = mode;
        row.budget = budget;
        row.wall_ms = watch.ElapsedMillis();
        row.frames = run.frames_processed;
        row.skipped = run.skip.skipped_frames;
        row.forced = run.skip.forced_detects;
        row.wall_fps = row.wall_ms > 0.0
                           ? 1e3 * static_cast<double>(row.frames) / row.wall_ms
                           : 0.0;
        row.sim_ms = run.breakdown.SimulatedMs();
        row.sim_speedup = row.sim_ms > 0.0 ? base_sim / row.sim_ms : 0.0;
        row.wall_speedup = row.wall_ms > 0.0 ? base_wall / row.wall_ms : 0.0;
        row.avg_true_ap = run.avg_true_ap;
        row.ap_delta = run.avg_true_ap - base.avg_true_ap;
        if (budget == 0) {
          row.baseline_identical = SameRun(run, base);
          skip_identity &= row.baseline_identical;
        }
        skip_rows.push_back(row);
        std::cout << "  " << ds << " " << mode << " budget=" << budget
                  << ": skipped " << row.skipped << "/" << row.frames
                  << " (forced " << row.forced << "), sim "
                  << Fmt(row.sim_ms) << " ms (x" << Fmt(row.sim_speedup)
                  << "), wall x" << Fmt(row.wall_speedup) << ", AP "
                  << Fmt(row.avg_true_ap, 4) << " (delta "
                  << Fmt(row.ap_delta, 4) << ")"
                  << (budget == 0 ? (row.baseline_identical
                                         ? ", identical=yes"
                                         : ", identical=NO")
                                  : "")
                  << "\n";
      }
    }
  }
  std::cout << "budget-0 bit-identity to the no-skip engine: "
            << (skip_identity ? "PASS" : "FAIL") << "\n";

  // ---- Skip-enabled serving: the gate rides through sessions ----
  //
  // Four mixed-strategy skip-enabled streams on the low-motion video,
  // scheduled together; every stream must still match its solo baseline
  // (serving changes WHEN work happens, never WHAT a stream computes —
  // skip state included).
  const Video& lowmotion = sweep_videos[0].second;
  std::vector<StreamSpec> skip_specs;
  std::vector<RunResult> skip_solo;
  for (size_t i = 0; i < 4; ++i) {
    StreamSpec spec = MakeSpec(i);
    spec.name = "skip-" + spec.name;
    spec.skip = MakeSkip(i % 2 == 0 ? "gated" : "bandit", 4);
    auto source = std::move(LazyFrameEvaluator::Create(lowmotion, pool,
                                                       spec.trial_seed, {}))
                      .value();
    auto strategy = MakeStrategy(spec.strategy);
    skip_solo.push_back(
        std::move(RunStrategy(*source, strategy.get(), MakeEngine(spec)))
            .value());
    skip_specs.push_back(std::move(spec));
  }
  ServeOptions skip_opt;
  skip_opt.max_sessions = 4;
  skip_opt.queue_depth = 0;
  skip_opt.quantum_ms = 150.0;
  skip_opt.max_frames_per_round = 16;
  skip_opt.parallelism = 0;
  StreamScheduler skip_scheduler(skip_opt);
  for (size_t i = 0; i < skip_specs.size(); ++i) {
    auto id = skip_scheduler.Submit(MakeSession(lowmotion, pool,
                                                skip_specs[i], nullptr,
                                                static_cast<uint64_t>(i)));
    if (!id.ok()) {
      std::cerr << "skip-serve submit failed: " << id.status().ToString()
                << "\n";
      return 1;
    }
  }
  const ServeReport skip_report =
      std::move(skip_scheduler.RunUntilDrained()).value();
  bool serve_skip_identical = true;
  for (size_t i = 0; i < skip_specs.size(); ++i) {
    if (!skip_report.streams[i].status.ok() ||
        !SameRun(skip_solo[i], skip_report.streams[i].result)) {
      serve_skip_identical = false;
    }
  }
  std::cout << "\nskip-enabled serving: " << skip_report.stats.frames
            << " frames (" << skip_report.stats.skipped_frames
            << " skipped) across 4 streams, identical to solo: "
            << (serve_skip_identical ? "PASS" : "FAIL") << "\n";

  // ---- Sharded fleet sweep: shard count × {clean, chaos} ----
  //
  // 16 streams (sharing seeds with the 8 solo baselines, unique names so
  // routing spreads them) served by 1/2/4/8 shard threads. The chaos
  // variant migrates one live stream onto the last shard at round 2 and
  // kills that shard at its round 10, so the migrated stream and the
  // shard's other sessions all fail over to survivors. Wall-clock scaling
  // is whatever hardware_threads allows; the exit code gates only
  // bit-identity of every completing stream.
  std::cout << "\nsharded fleet sweep (16 streams):\n";
  std::vector<StreamSpec> fleet_specs;
  for (size_t j = 0; j < 16; ++j) {
    StreamSpec s = MakeSpec(j % 8);
    s.name = "fleet-" + std::to_string(j) + "-" + s.strategy;
    fleet_specs.push_back(std::move(s));
  }
  std::vector<FleetRow> fleet_rows;
  bool fleet_identical = true;
  for (const bool chaos : {false, true}) {
    for (const int n : {1, 2, 4, 8}) {
      if (chaos && n < 2) continue;  // kill + migrate need a survivor
      FleetOptions fopt;
      fopt.num_shards = n;
      fopt.max_sessions = 16;
      fopt.max_restarts = 2;
      fopt.shard.max_sessions = 16;  // any survivor can absorb the fleet
      fopt.shard.queue_depth = 0;
      fopt.shard.quantum_ms = 150.0;
      fopt.shard.max_frames_per_round = 8;
      fopt.shard.parallelism = 1;  // shard threads are the parallelism

      std::vector<FleetStreamSpec> specs;
      for (const auto& s : fleet_specs) {
        specs.push_back(
            {s.name, [&video, &pool, s] {
               return BuildFleetSession(video, pool, s);
             }});
      }
      ChaosScript script;
      if (chaos) {
        ChaosEvent mig;
        mig.kind = ChaosEvent::Kind::kMigrate;
        mig.at_round = 2;
        mig.shard = 0;
        mig.target_shard = n - 1;
        for (const auto& s : fleet_specs) {
          if (FleetRouteHash(s.name) % static_cast<uint64_t>(n) == 0) {
            mig.stream = s.name;
            break;
          }
        }
        if (!mig.stream.empty()) script.events.push_back(mig);
        // Killed well after the migrate fires so the payload usually
        // lands first (an undeliverable payload just restarts the stream
        // — still correct, but then there is no handoff to time).
        ChaosEvent kill;
        kill.kind = ChaosEvent::Kind::kKillShard;
        kill.at_round = 10;
        kill.shard = n - 1;
        script.events.push_back(kill);
      }

      ShardedServer server(fopt);
      auto freport_or = server.Run(std::move(specs), script);
      if (!freport_or.ok()) {
        std::cerr << "fleet run failed: "
                  << freport_or.status().ToString() << "\n";
        return 1;
      }
      const FleetReport freport = std::move(freport_or).value();

      FleetRow row;
      row.shards = n;
      row.chaos = chaos;
      row.wall_ms = freport.stats.wall_ms;
      for (size_t j = 0; j < freport.streams.size(); ++j) {
        const FleetStreamReport& fsr = freport.streams[j];
        // Restart budget and survivor capacity are sized so every stream
        // completes even under the chaos script; anything else is a
        // correctness failure, not noise.
        if (!fsr.report.status.ok() ||
            !SameRun(solo[j % 8], fsr.report.result)) {
          row.bit_identical = false;
        }
        if (fsr.report.status.ok()) {
          row.frames += fsr.report.result.frames_processed;
        }
      }
      row.frames_per_sec =
          row.wall_ms > 0.0
              ? 1e3 * static_cast<double>(row.frames) / row.wall_ms
              : 0.0;
      row.completed = freport.stats.completed_streams;
      row.failed = freport.stats.failed_streams;
      row.shards_killed = freport.stats.shards_killed;
      row.failover_streams = freport.stats.failover_streams;
      row.migrations_attempted = freport.stats.migration.attempted;
      row.migrations_completed = freport.stats.migration.completed;
      row.migration_p50_ms = freport.stats.migration.latency_p50_ms;
      row.migration_p99_ms = freport.stats.migration.latency_p99_ms;
      fleet_identical &= row.bit_identical;
      fleet_rows.push_back(row);

      std::cout << "  shards=" << n << (chaos ? " chaos" : " clean ")
                << ": wall " << Fmt(row.wall_ms) << " ms, "
                << Fmt(row.frames_per_sec, 0) << " frames/s, completed "
                << row.completed << "/" << fleet_specs.size();
      if (chaos) {
        std::cout << ", killed " << row.shards_killed << ", failover "
                  << row.failover_streams << ", migrations "
                  << row.migrations_completed << "/"
                  << row.migrations_attempted << " (p50 "
                  << Fmt(row.migration_p50_ms, 3) << " ms, p99 "
                  << Fmt(row.migration_p99_ms, 3) << " ms)";
      }
      std::cout << ", identical=" << (row.bit_identical ? "yes" : "NO")
                << "\n";
    }
  }
  std::cout << "fleet bit-identity across all shard configurations: "
            << (fleet_identical ? "PASS" : "FAIL") << "\n";

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"serve\",\n  \"frames_per_video\": %zu,\n"
               "  \"pool_m\": %zu,\n  \"hardware_threads\": %u,\n"
               "  \"solo_8_runs_ms\": %.3f,\n"
               "  \"bit_identical\": %s,\n  \"configs\": [\n",
               video.size(), pool.size(),
               std::thread::hardware_concurrency(), solo_ms,
               all_identical ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ConfigRow& r = rows[i];
    std::fprintf(
        json,
        "    {\"sessions\": %d, \"batched\": %s, \"wall_ms\": %.3f,\n"
        "     \"frames\": %llu,\n"
        "     \"frames_per_sec\": %.1f, \"streams_per_sec\": %.3f,\n"
        "     \"frame_p50_ms\": %.4f, \"frame_p99_ms\": %.4f,\n"
        "     \"rounds\": %llu, \"mean_batch\": %.3f,\n"
        "     \"coalesced_requests\": %llu, \"bit_identical\": %s}%s\n",
        r.sessions, r.batched ? "true" : "false", r.wall_ms,
        static_cast<unsigned long long>(r.frames),
        r.frames_per_sec, r.streams_per_sec, r.p50_ms, r.p99_ms,
        static_cast<unsigned long long>(r.rounds), r.mean_batch,
        static_cast<unsigned long long>(r.coalesced),
        r.bit_identical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"skip_sweep\": [\n");
  for (size_t i = 0; i < skip_rows.size(); ++i) {
    const SkipRow& r = skip_rows[i];
    std::fprintf(
        json,
        "    {\"dataset\": \"%s\", \"mode\": \"%s\", \"budget\": %d,\n"
        "     \"frames\": %llu, \"skipped\": %llu, \"forced_detects\": %llu,\n"
        "     \"wall_ms\": %.3f, \"wall_fps\": %.1f, \"sim_ms\": %.3f,\n"
        "     \"sim_speedup\": %.3f, \"wall_speedup\": %.3f,\n"
        "     \"avg_true_ap\": %.6f, \"ap_delta\": %.6f,\n"
        "     \"baseline_identical\": %s}%s\n",
        r.dataset.c_str(), r.mode.c_str(), r.budget,
        static_cast<unsigned long long>(r.frames),
        static_cast<unsigned long long>(r.skipped),
        static_cast<unsigned long long>(r.forced), r.wall_ms, r.wall_fps,
        r.sim_ms, r.sim_speedup, r.wall_speedup, r.avg_true_ap, r.ap_delta,
        r.baseline_identical ? "true" : "false",
        i + 1 < skip_rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"skip_serve\": {\"streams\": 4, \"frames\": %llu,\n"
               "    \"skipped_frames\": %llu, \"identical\": %s},\n"
               "  \"shards\": [\n",
               static_cast<unsigned long long>(skip_report.stats.frames),
               static_cast<unsigned long long>(
                   skip_report.stats.skipped_frames),
               serve_skip_identical ? "true" : "false");
  for (size_t i = 0; i < fleet_rows.size(); ++i) {
    const FleetRow& r = fleet_rows[i];
    std::fprintf(
        json,
        "    {\"shards\": %d, \"chaos\": %s, \"wall_ms\": %.3f,\n"
        "     \"frames\": %llu, \"frames_per_sec\": %.1f,\n"
        "     \"completed_streams\": %llu, \"failed_streams\": %llu,\n"
        "     \"shards_killed\": %d, \"failover_streams\": %llu,\n"
        "     \"migrations_attempted\": %llu,"
        " \"migrations_completed\": %llu,\n"
        "     \"migration_p50_ms\": %.4f, \"migration_p99_ms\": %.4f,\n"
        "     \"bit_identical\": %s}%s\n",
        r.shards, r.chaos ? "true" : "false", r.wall_ms,
        static_cast<unsigned long long>(r.frames), r.frames_per_sec,
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed), r.shards_killed,
        static_cast<unsigned long long>(r.failover_streams),
        static_cast<unsigned long long>(r.migrations_attempted),
        static_cast<unsigned long long>(r.migrations_completed),
        r.migration_p50_ms, r.migration_p99_ms,
        r.bit_identical ? "true" : "false",
        i + 1 < fleet_rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"fleet_bit_identical\": %s,\n"
               "  \"skip_budget0_identical\": %s\n}\n",
               fleet_identical ? "true" : "false",
               skip_identity ? "true" : "false");
  std::fclose(json);
  std::cout << "wrote BENCH_serve.json\n";

  bool trace_valid = true;
  if (!trace_out.empty()) {
    Status ws = WriteChromeTraceFile(obs.trace(), trace_out);
    if (!ws.ok()) {
      std::cerr << "trace write failed: " << ws.ToString() << "\n";
      trace_valid = false;
    } else {
      std::ifstream in(trace_out);
      std::ostringstream buf;
      buf << in.rdbuf();
      Status vs = ValidateChromeTrace(buf.str());
      trace_valid = vs.ok();
      std::cout << "wrote " << trace_out << " ("
                << obs.trace().event_count() << " events, "
                << obs.trace().dropped_events() << " dropped), validator: "
                << (trace_valid ? "PASS" : vs.ToString()) << "\n";
    }
  }
  return (all_identical && skip_identity && serve_skip_identical &&
          fleet_identical && trace_valid)
             ? 0
             : 1;
}
