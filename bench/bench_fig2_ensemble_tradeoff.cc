// Figure 2: inference time and AP of the three YOLOv7-tiny specialists
// (Yolo-R / Yolo-C / Yolo-N) and all their ensembles on nuScenes — the
// accuracy/latency trade-off that motivates ensemble *selection*.

#include <iostream>

#include "bench_util.h"
#include "core/frame_matrix.h"

using namespace vqe;
using namespace vqe::bench;

int main() {
  const BenchSettings settings = BenchSettings::FromEnv();
  PrintHeader("Ensemble accuracy/latency trade-off", "Figure 2", settings);

  // The Figure 2 trio: tiny models trained on clear (C), night (N), rainy
  // (R); pool order in BuildNuscenesPool(3) is C, N, R.
  auto pool = std::move(BuildNuscenesPool(3)).value();
  ExperimentConfig config = MakeConfig("nusc", settings);
  config.pool_size = 3;

  const auto matrix = BuildTrialMatrix(config, pool, /*trial=*/0);
  if (!matrix.ok()) {
    std::cerr << matrix.status().ToString() << "\n";
    return 1;
  }

  const auto avg_ap = AverageTrueApPerEnsemble(*matrix);
  // Average absolute (un-normalized) ensemble cost.
  std::vector<double> avg_cost(8, 0.0);
  for (const auto& fe : matrix->frames) {
    for (EnsembleId s = 1; s <= 7; ++s) avg_cost[s] += fe.cost_ms[s];
  }
  for (auto& c : avg_cost) c /= static_cast<double>(matrix->size());

  const char* kLabels[8] = {"",           "Yolo-C",     "Yolo-N",
                            "Yolo-C&N",   "Yolo-R",     "Yolo-R&C",
                            "Yolo-R&N",   "Yolo-R&C&N"};
  TablePrinter table({"Ensemble", "Avg inference time (ms)", "Avg AP"});
  for (EnsembleId s = 1; s <= 7; ++s) {
    table.AddRow({kLabels[s], Fmt(avg_cost[s], 1), Fmt(avg_ap[s], 3)});
  }
  table.Print(std::cout);

  const double gain = avg_ap[7] / avg_ap[1] - 1.0;
  const double slow = avg_cost[7] / avg_cost[1];
  std::cout << "\nYolo-R&C&N vs Yolo-C: +" << Fmt(gain * 100, 1)
            << "% AP at " << Fmt(slow, 1)
            << "x the inference time (paper: ~+15% AP at ~3x).\n"
            << "Expected shape: every ensemble adds AP over its members but "
               "costs the sum of their inference times.\n";
  return 0;
}
