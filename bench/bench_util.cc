#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace vqe {
namespace bench {

BenchSettings BenchSettings::FromEnv() {
  BenchSettings s;
  if (const char* fast = std::getenv("VQE_BENCH_FAST");
      fast != nullptr && fast[0] == '1') {
    s.trials = 3;
    s.target_frames = 1200.0;
  }
  if (const char* trials = std::getenv("VQE_BENCH_TRIALS")) {
    const int t = std::atoi(trials);
    if (t > 0) s.trials = t;
  }
  if (const char* frames = std::getenv("VQE_BENCH_FRAMES")) {
    const double f = std::atof(frames);
    if (f > 0) s.target_frames = f;
  }
  return s;
}

double ScaleFor(const DatasetSpec& spec, double target_frames) {
  const double total = static_cast<double>(spec.TotalFrames());
  if (total <= target_frames) return 1.0;
  return target_frames / total;
}

ExperimentConfig MakeConfig(const std::string& dataset,
                            const BenchSettings& settings) {
  ExperimentConfig config;
  auto spec = DatasetCatalog::Default().Find(dataset);
  if (!spec.ok()) {
    std::cerr << "fatal: " << spec.status().ToString() << "\n";
    std::exit(1);
  }
  config.dataset = *spec;
  config.scene_scale = ScaleFor(**spec, settings.target_frames);
  config.trials = settings.trials;
  config.engine.sc = ScoringFunction{0.5, 0.5};
  return config;
}

StrategySpec SwMesSpec(size_t window) {
  return {"SW-MES", [window] {
            SwMesOptions o;
            o.window = window;
            o.exploration_scale = 0.05;
            o.min_probes = 8;
            return std::make_unique<SwMesStrategy>(o);
          }};
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void PrintHeader(const std::string& title, const std::string& paper_ref,
                 const BenchSettings& settings) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Settings: %d trials, ~%.0f frames/video "
              "(override via VQE_BENCH_TRIALS / VQE_BENCH_FRAMES)\n",
              settings.trials, settings.target_frames);
  std::printf("==============================================================\n");
}

void PrintOutcomeTable(const ExperimentResult& result, std::ostream& os) {
  TablePrinter table({"algorithm", "s_sum mean", "sd", "min", "max",
                      "avg AP", "avg cost", "regret"});
  for (const auto& o : result.outcomes) {
    table.AddRow({o.label, Fmt(o.s_sum.mean, 1), Fmt(o.s_sum.stddev, 1),
                  Fmt(o.s_sum.min, 1), Fmt(o.s_sum.max, 1),
                  Fmt(o.avg_true_ap.mean, 3), Fmt(o.avg_norm_cost.mean, 3),
                  Fmt(o.regret.mean, 1)});
  }
  table.Print(os);
}

}  // namespace bench
}  // namespace vqe
