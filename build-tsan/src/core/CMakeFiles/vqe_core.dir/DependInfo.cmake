
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/vqe_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/ducb.cc" "src/core/CMakeFiles/vqe_core.dir/ducb.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/ducb.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/vqe_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/engine.cc.o.d"
  "/root/repo/src/core/ensemble_id.cc" "src/core/CMakeFiles/vqe_core.dir/ensemble_id.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/ensemble_id.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/vqe_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/frame_matrix.cc" "src/core/CMakeFiles/vqe_core.dir/frame_matrix.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/frame_matrix.cc.o.d"
  "/root/repo/src/core/lrbp.cc" "src/core/CMakeFiles/vqe_core.dir/lrbp.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/lrbp.cc.o.d"
  "/root/repo/src/core/mes.cc" "src/core/CMakeFiles/vqe_core.dir/mes.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/mes.cc.o.d"
  "/root/repo/src/core/mes_b.cc" "src/core/CMakeFiles/vqe_core.dir/mes_b.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/mes_b.cc.o.d"
  "/root/repo/src/core/pareto.cc" "src/core/CMakeFiles/vqe_core.dir/pareto.cc.o" "gcc" "src/core/CMakeFiles/vqe_core.dir/pareto.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/models/CMakeFiles/vqe_models.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fusion/CMakeFiles/vqe_fusion.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/vqe_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/detection/CMakeFiles/vqe_detection.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
