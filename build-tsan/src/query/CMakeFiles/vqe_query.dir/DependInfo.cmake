
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/executor.cc" "src/query/CMakeFiles/vqe_query.dir/executor.cc.o" "gcc" "src/query/CMakeFiles/vqe_query.dir/executor.cc.o.d"
  "/root/repo/src/query/explain.cc" "src/query/CMakeFiles/vqe_query.dir/explain.cc.o" "gcc" "src/query/CMakeFiles/vqe_query.dir/explain.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/query/CMakeFiles/vqe_query.dir/lexer.cc.o" "gcc" "src/query/CMakeFiles/vqe_query.dir/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/vqe_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/vqe_query.dir/parser.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/query/CMakeFiles/vqe_query.dir/predicate.cc.o" "gcc" "src/query/CMakeFiles/vqe_query.dir/predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/vqe_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/track/CMakeFiles/vqe_track.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/models/CMakeFiles/vqe_models.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fusion/CMakeFiles/vqe_fusion.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/vqe_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/detection/CMakeFiles/vqe_detection.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
