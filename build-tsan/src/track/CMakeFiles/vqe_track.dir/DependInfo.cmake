
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/track/mot_metrics.cc" "src/track/CMakeFiles/vqe_track.dir/mot_metrics.cc.o" "gcc" "src/track/CMakeFiles/vqe_track.dir/mot_metrics.cc.o.d"
  "/root/repo/src/track/tracker.cc" "src/track/CMakeFiles/vqe_track.dir/tracker.cc.o" "gcc" "src/track/CMakeFiles/vqe_track.dir/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/detection/CMakeFiles/vqe_detection.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
