
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fusion/consensus.cc" "src/fusion/CMakeFiles/vqe_fusion.dir/consensus.cc.o" "gcc" "src/fusion/CMakeFiles/vqe_fusion.dir/consensus.cc.o.d"
  "/root/repo/src/fusion/fusion_internal.cc" "src/fusion/CMakeFiles/vqe_fusion.dir/fusion_internal.cc.o" "gcc" "src/fusion/CMakeFiles/vqe_fusion.dir/fusion_internal.cc.o.d"
  "/root/repo/src/fusion/nms.cc" "src/fusion/CMakeFiles/vqe_fusion.dir/nms.cc.o" "gcc" "src/fusion/CMakeFiles/vqe_fusion.dir/nms.cc.o.d"
  "/root/repo/src/fusion/nmw.cc" "src/fusion/CMakeFiles/vqe_fusion.dir/nmw.cc.o" "gcc" "src/fusion/CMakeFiles/vqe_fusion.dir/nmw.cc.o.d"
  "/root/repo/src/fusion/registry.cc" "src/fusion/CMakeFiles/vqe_fusion.dir/registry.cc.o" "gcc" "src/fusion/CMakeFiles/vqe_fusion.dir/registry.cc.o.d"
  "/root/repo/src/fusion/wbf.cc" "src/fusion/CMakeFiles/vqe_fusion.dir/wbf.cc.o" "gcc" "src/fusion/CMakeFiles/vqe_fusion.dir/wbf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/detection/CMakeFiles/vqe_detection.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
