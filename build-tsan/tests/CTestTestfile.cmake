# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/common_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/bbox_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/matching_ap_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/fusion_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/models_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ensemble_id_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/strategy_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/query_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/tracker_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mot_calibration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/protocol_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/determinism_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/serialization_test[1]_include.cmake")
